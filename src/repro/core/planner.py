"""Query-optimizer strategy selection (paper Section 6.3).

The empirical study ends with guidance for a query analyzer, which this
module encodes as an inspectable decision procedure:

* **sorted** (or declared retroactively bounded, which is k-ordered for
  the corresponding ``k``) → the k-ordered aggregation tree, k = 1 (or
  the declared ``k``), no sort needed;
* **nearly sorted** (small measured k) → the k-ordered tree with the
  measured ``k``;
* **unsorted and large, invertible aggregate** → the columnar event
  sweep, time-sharded across cores when the machine has them (a
  post-paper extension; see :mod:`repro.core.parallel`);
* **unsorted, memory cheaper than the disk I/O a sort would cost** →
  the plain aggregation tree;
* **unsorted, memory tight** → the paper's "simplest strategy": sort,
  then the k-ordered tree with k = 1;
* **very few constant intervals expected** (few unique timestamps) →
  the linked list is adequate and smallest.

The estimators quantify "memory" under the Section 6.2 node model so a
budget in bytes can be compared against the structures directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relation.relation import RelationStatistics

from repro.core.aggregates import Aggregate, CountAggregate
from repro.core.partition import available_workers
from repro.exec.faults import current_fault_plan
from repro.metrics.space import NODE_OVERHEAD_BYTES

__all__ = [
    "PlannerDecision",
    "choose_strategy",
    "choose_strategy_cost_based",
    "estimate_tree_bytes",
    "estimate_list_bytes",
    "estimate_ktree_bytes",
]

#: Relations whose unique-timestamp count is below this fraction of the
#: tuple count are "few constant intervals" cases where the linked list
#: is adequate (Section 6.3's single-year / coarse-granularity example).
FEW_INTERVALS_FRACTION = 0.01

#: Measured k above this fraction of n no longer counts as "nearly
#: sorted" — the window would retain most of the relation anyway.
NEARLY_SORTED_FRACTION = 0.05

#: Unsorted relations at least this large are worth the columnar /
#: sharded sweep; below it the per-node evaluators win on constants.
PARALLEL_MIN_TUPLES = 32_768

#: Repeatedly queried relations at least this large are worth routing
#: through the shard-result cache: below it even a full sweep is cheap
#: enough that caching only adds bookkeeping.
CACHE_MIN_TUPLES = 4_096

#: Modeled bytes per sweep event (one flat int column entry); the
#: sweep's working set is its two event columns, not tree nodes.
EVENT_BYTES = 8


@dataclass(frozen=True)
class PlannerDecision:
    """The chosen evaluation plan plus the reasoning behind it."""

    strategy: str  # evaluator registry name
    k: Optional[int] = None  # window parameter for the k-ordered tree
    sort_first: bool = False  # sort the relation before evaluating
    reason: str = ""
    estimated_bytes: int = 0
    shards: Optional[int] = None  # fan-out for the parallel sweep

    def describe(self) -> str:
        plan = self.strategy
        if self.k is not None:
            plan += f"(k={self.k})"
        if self.shards is not None:
            plan += f"(shards={self.shards})"
        if self.sort_first:
            plan = "sort + " + plan
        return f"{plan} — {self.reason}"


def _node_bytes(aggregate: Optional[Aggregate]) -> int:
    state = aggregate.state_bytes if aggregate is not None else CountAggregate.state_bytes
    return NODE_OVERHEAD_BYTES + state


def _budget_inflation() -> float:
    """Byte-inflation factor from the fault-injection hook (1.0 normally).

    The planner consults the active :class:`~repro.exec.faults.FaultPlan`
    so tests can deterministically force budget-constrained plans (and
    runtime degradation) on small relations.
    """
    plan = current_fault_plan()
    return plan.inflate_bytes if plan is not None else 1.0


def estimate_tree_bytes(
    unique_timestamps: int, aggregate: Optional[Aggregate] = None
) -> int:
    """Worst-case aggregation-tree size: each unique timestamp adds two
    nodes (Section 7), plus the initial root."""
    return (2 * unique_timestamps + 1) * _node_bytes(aggregate)


def estimate_list_bytes(
    unique_timestamps: int, aggregate: Optional[Aggregate] = None
) -> int:
    """Linked-list size: each unique timestamp adds at most one cell
    (Section 7), plus the initial cell."""
    return (unique_timestamps + 1) * _node_bytes(aggregate)


def estimate_ktree_bytes(
    k: int,
    long_lived_fraction: float,
    tuple_count: int,
    aggregate: Optional[Aggregate] = None,
) -> int:
    """Rough k-ordered-tree peak: nodes for the ``2k+1`` window plus
    the end-time nodes long-lived tuples leave uncollected (Section 6.2
    attributes the k-tree's memory blow-up to exactly those)."""
    window_nodes = 2 * (2 * k + 1) + 1
    long_lived_nodes = int(2 * long_lived_fraction * tuple_count)
    return (window_nodes + long_lived_nodes) * _node_bytes(aggregate)


def choose_strategy(
    statistics: "RelationStatistics",
    *,
    aggregate: Optional[Aggregate] = None,
    memory_budget_bytes: Optional[int] = None,
    memory_cheaper_than_io: bool = True,
    declared_k: Optional[int] = None,
    repeat_observed: bool = False,
) -> PlannerDecision:
    """Pick an evaluation plan from relation statistics.

    ``statistics`` is a
    :class:`~repro.relation.relation.RelationStatistics`;
    ``declared_k`` models the DBA declaring the relation retroactively
    bounded (Section 6.3), which licenses the k-ordered tree without
    measuring anything.  ``repeat_observed`` marks a query signature the
    engine has seen before (same relation, aggregate and attribute) — a
    repeated workload, which licenses the shard-result cache
    (:mod:`repro.cache`, a post-paper extension) on large relations.
    """
    n = statistics.tuple_count
    unique = statistics.unique_timestamps
    tree_bytes = estimate_tree_bytes(unique, aggregate)
    list_bytes = estimate_list_bytes(unique, aggregate)

    if declared_k is not None:
        k = max(1, declared_k)
        return PlannerDecision(
            strategy="kordered_tree",
            k=k,
            reason="relation declared retroactively bounded; the k-ordered "
            "tree applies directly with no sort",
            estimated_bytes=estimate_ktree_bytes(
                k, statistics.long_lived_fraction, n, aggregate
            ),
        )

    if repeat_observed and n >= CACHE_MIN_TUPLES:
        return PlannerDecision(
            strategy="cached_sweep",
            shards=available_workers(),
            reason="repeated query signature over a large relation: the "
            "shard-result cache serves unchanged relations from stitched "
            "rows and appends by re-sweeping only dirty shards",
            estimated_bytes=2 * n * EVENT_BYTES,
        )

    if n and unique <= max(2, FEW_INTERVALS_FRACTION * n):
        return PlannerDecision(
            strategy="linked_list",
            reason="very few constant intervals expected (few unique "
            "timestamps); the linked list is adequate and smallest",
            estimated_bytes=list_bytes,
        )

    if statistics.is_totally_ordered:
        return PlannerDecision(
            strategy="kordered_tree",
            k=1,
            reason="relation already sorted; k-ordered tree with k=1 is "
            "fastest with minimal memory",
            estimated_bytes=estimate_ktree_bytes(
                1, statistics.long_lived_fraction, n, aggregate
            ),
        )

    if n and statistics.k <= max(1, NEARLY_SORTED_FRACTION * n):
        k = max(1, statistics.k)
        return PlannerDecision(
            strategy="kordered_tree",
            k=k,
            reason=f"relation is {k}-ordered (nearly sorted); garbage "
            "collection keeps the tree small",
            estimated_bytes=estimate_ktree_bytes(
                k, statistics.long_lived_fraction, n, aggregate
            ),
        )

    # Unsorted and genuinely large: the columnar event sweep beats the
    # per-node structures on constants, and its time-domain shards
    # spread across cores when the machine has them.  Needs an
    # invertible aggregate (MIN/MAX would drag a lazy heap through
    # every shard; the tree strategies handle them as well per event).
    invertible = aggregate.invertible if aggregate is not None else True
    inflation = _budget_inflation()
    event_bytes = 2 * n * EVENT_BYTES
    sweep_fits = (
        memory_budget_bytes is None
        or event_bytes * inflation <= memory_budget_bytes
    )
    if n >= PARALLEL_MIN_TUPLES and invertible and sweep_fits:
        workers = available_workers()
        if workers > 1:
            return PlannerDecision(
                strategy="parallel_sweep",
                shards=workers,
                reason=f"large unordered input and {workers} cores: "
                "time-domain shards over the columnar sweep",
                estimated_bytes=event_bytes,
            )
        return PlannerDecision(
            strategy="columnar_sweep",
            reason="large unordered input on one core: the columnar "
            "event sweep has the smallest constants",
            estimated_bytes=event_bytes,
        )

    within_budget = (
        memory_budget_bytes is None
        or tree_bytes * inflation <= memory_budget_bytes
    )
    if memory_cheaper_than_io and within_budget:
        return PlannerDecision(
            strategy="aggregation_tree",
            reason="unordered input and memory is cheap: the aggregation "
            "tree is fastest",
            estimated_bytes=tree_bytes,
        )

    return PlannerDecision(
        strategy="kordered_tree",
        k=1,
        sort_first=True,
        reason="unordered input under a memory constraint: sort first, "
        "then k-ordered tree with k=1 (the paper's simplest strategy)",
        estimated_bytes=estimate_ktree_bytes(
            1, statistics.long_lived_fraction, n, aggregate
        ),
    )


def choose_strategy_cost_based(
    statistics: "RelationStatistics",
    *,
    aggregate: Optional[Aggregate] = None,
    memory_budget_bytes: Optional[int] = None,
    candidates: "tuple[str, ...]" = ("linked_list", "aggregation_tree", "kordered_tree"),
) -> PlannerDecision:
    """Pick the cheapest plan by the analytic cost model.

    Where :func:`choose_strategy` encodes Section 6.3's *rules*, this
    variant prices the candidate strategies with
    :mod:`repro.core.cost_model` and takes the cheapest whose estimated
    structure fits the memory budget — a conventional cost-based
    optimizer over the same statistics.  Falls back to the rule-based
    sort-then-ktree plan when nothing fits the budget.
    """
    from repro.core.cost_model import estimate_peak_nodes, estimate_work

    node_bytes = _node_bytes(aggregate)
    inflation = _budget_inflation()
    k = max(1, statistics.k)
    priced = []
    for strategy in candidates:
        work = estimate_work(strategy, statistics, k=k)
        structure_bytes = int(
            estimate_peak_nodes(strategy, statistics, k=k) * node_bytes
        )
        if (
            memory_budget_bytes is not None
            and structure_bytes * inflation > memory_budget_bytes
        ):
            continue
        priced.append((work, strategy, structure_bytes))
    if not priced:
        decision = choose_strategy(
            statistics,
            aggregate=aggregate,
            memory_budget_bytes=memory_budget_bytes,
            memory_cheaper_than_io=False,
        )
        return PlannerDecision(
            strategy=decision.strategy,
            k=decision.k,
            sort_first=decision.sort_first,
            reason="no candidate fits the memory budget; " + decision.reason,
            estimated_bytes=decision.estimated_bytes,
        )
    work, strategy, structure_bytes = min(priced)
    return PlannerDecision(
        strategy=strategy,
        k=k if strategy == "kordered_tree" else None,
        reason=f"cost-based: cheapest estimated work ({work:,.0f} ops) "
        f"within the memory budget",
        estimated_bytes=structure_bytes,
    )
