"""Moving-window temporal aggregates.

TSQL2's aggregate proposal (Kline, Snodgrass & Leung 1994, which the
paper cites for its language design) includes *moving window*
aggregates: the value at instant ``t`` aggregates the tuples valid at
any point of the trailing window ``[t - w + 1, t]``.  With ``w = 1``
this is exactly the paper's instant grouping.

The implementation rides entirely on the paper's machinery via a
reduction: a tuple ``[s, e]`` intersects the window of instant ``t``
iff ``t ∈ [s, e + w - 1]``.  So the moving aggregate over the original
relation equals the *instant* aggregate over the relation with every
valid-time end extended by ``w - 1`` — one generator away from any of
the core evaluators, inheriting their complexity and memory behaviour
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate

from repro.core.base import Triple
from repro.core.engine import evaluate_triples
from repro.core.interval import FOREVER
from repro.core.result import TemporalAggregateResult

__all__ = ["extend_for_window", "moving_window_aggregate"]


def extend_for_window(triples: Iterable[Triple], window: int) -> Iterator[Triple]:
    """Extend each tuple's end by ``window - 1`` instants (saturating).

    This is the reduction making a trailing-window aggregate an
    instant aggregate; it preserves relative order, so k-ordered
    inputs stay k-ordered and the k-ordered tree remains applicable.
    """
    if window < 1:
        raise ValueError("window must cover at least one instant")
    extension = window - 1
    for start, end, value in triples:
        extended = end if end >= FOREVER else min(FOREVER, end + extension)
        yield (start, extended, value)


def moving_window_aggregate(
    triples: Iterable[Triple],
    aggregate: "Aggregate | str",
    window: int,
    strategy: str = "aggregation_tree",
    *,
    k: Optional[int] = None,
) -> TemporalAggregateResult:
    """Trailing-window aggregate grouped by instant.

    The value of row ``r`` holds, for every instant ``t`` in ``r``'s
    interval, the aggregate over all tuples valid at some instant of
    ``[t - window + 1, t]``.  ``window=1`` degenerates to the ordinary
    instant grouping.

    Note the multiset semantics: a tuple contributes once per window it
    intersects (so a COUNT is "tuples recently valid", and an AVG
    weights each recently-valid tuple equally — the standard TSQL2
    moving-window reading).
    """
    return evaluate_triples(
        list(extend_for_window(triples, window)),
        aggregate,
        strategy,
        k=k,
    )
