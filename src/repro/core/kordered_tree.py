"""The k-ordered aggregation tree (paper Section 5.3).

A variation of the aggregation tree for *k-ordered* input — relations
where every tuple sits at most ``k`` positions from its place in the
start-time-sorted order (Section 5.2).  Retroactively bounded
relations, common in practice, are k-ordered for the corresponding
``k``; a fully sorted relation is 0-ordered and the paper's recommended
strategy is "sort, then k-ordered tree with k = 1".

The observation that enables garbage collection: when processing tuple
number ``j``, the tuple ``2k+1`` positions back could have been at most
``k`` positions late, and tuple ``j`` at most ``k`` positions early, so
*every* future tuple starts at or after that old tuple's start time.
Constant intervals ending before it are therefore final: they can be
**emitted immediately, in time order, and their nodes freed**.

Mechanically the evaluator keeps:

* a sliding window of the last ``2k+1`` tuple start times; when a
  start time falls out of the window it becomes (the running maximum
  of) the *gc-threshold*;
* the aggregation tree itself, whose leftmost leaves are repeatedly
  emitted and spliced out while they end before the threshold —
  removing a leaf also removes its parent, exactly the paper's
  "replace the parent with the remaining leaf" step, and collapsing
  the root when its whole left subtree is gone.

The evaluator **streams**: results come out incrementally during the
scan and the remaining tree is flushed at the end.  Peak memory is
bounded by the window rather than the relation — the Figure 9 effect —
at the cost of being *wrong* if the input is not actually k-ordered.
A strict frontier check turns that silent wrongness into a
:class:`KOrderViolationError`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Iterable, List, Optional

from repro.core.aggregation_tree import AggregationTreeEvaluator
from repro.core.base import Triple
from repro.core.interval import ORIGIN
from repro.core.result import ConstantInterval, TemporalAggregateResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.invariants import GCShadow
    from repro.core.aggregates import Aggregate
    from repro.metrics.counters import OperationCounters
    from repro.metrics.space import SpaceTracker

__all__ = ["KOrderedTreeEvaluator", "KOrderViolationError"]


class KOrderViolationError(ValueError):
    """The input broke its k-ordering promise.

    Raised when a tuple starts inside a region whose constant intervals
    were already emitted and garbage collected — which can only happen
    if some tuple was more than ``k`` positions out of order.
    """


class KOrderedTreeEvaluator(AggregationTreeEvaluator):
    """Aggregation tree with window-driven garbage collection."""

    name = "kordered_tree"

    def __init__(
        self,
        aggregate: "Aggregate | str",
        k: int = 1,
        *,
        counters: "Optional[OperationCounters]" = None,
        space: "Optional[SpaceTracker]" = None,
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(aggregate, counters=counters, space=space)
        self.k = k
        self._window: Deque[int] = deque()
        self._threshold = ORIGIN  # running max of expired window starts
        self._frontier = ORIGIN  # first instant not yet emitted
        self._emitted: List[ConstantInterval] = []
        self._consumed = 0  # triples folded in since begin()
        #: Shadow gc-threshold recomputation, attached only while the
        #: runtime invariant verifier is enabled.
        self._gc_shadow: "Optional[GCShadow]" = None

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Emit and free the leading constant intervals that are final.

        Walks the leftmost path, and while the leftmost leaf ends
        before the gc-threshold: emits it (folding the states on its
        path), splices out its parent, and pushes the parent's partial
        state into the surviving sibling.
        """
        aggregate = self.aggregate
        counters = self.counters
        threshold = self._threshold
        collected_any = False
        while self.root is not None:
            node = self.root
            inherited = aggregate.identity()
            path: List[Any] = []
            while node.left is not None:
                counters.node_visits += 1
                inherited = aggregate.merge(inherited, node.state)
                path.append(node)
                node = node.left
            if node.end >= threshold:
                break
            collected_any = True
            if self._gc_shadow is not None:
                # Invariant verifier: the shadow recomputes the safe
                # threshold independently, so a corrupted _threshold is
                # caught here instead of trusted.
                self._gc_shadow.check_free(node)
            value = aggregate.finalize(aggregate.merge(inherited, node.state))
            self._emitted.append(ConstantInterval(node.start, node.end, value))
            counters.emitted += 1
            self._frontier = node.end + 1
            if not path:
                # A lone root leaf always extends to FOREVER, so this
                # cannot happen while the threshold is finite; guard
                # anyway to keep the loop total.
                break
            parent = path[-1]
            sibling = parent.right
            sibling.state = aggregate.merge(parent.state, sibling.state)
            if len(path) >= 2:
                path[-2].left = sibling
            else:
                self.root = sibling
            self.space.free(2)  # the emitted leaf and its spliced parent
            counters.nodes_collected += 2
        if collected_any:
            counters.gc_passes += 1

    # ------------------------------------------------------------------
    # Evaluation — split into begin/step/finish so a checkpointing
    # driver (:mod:`repro.storage.checkpoint`) can interleave state
    # capture with consumption; plain evaluate() composes the three.
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Reset all streaming state ahead of a fresh evaluation."""
        self.root = None
        self.space.reset()
        self._window.clear()
        self._threshold = ORIGIN
        self._frontier = ORIGIN
        self._emitted = []
        self._consumed = 0
        self._gc_shadow = None
        from repro.analysis import invariants  # deferred: avoid import cycle

        if invariants.invariants_enabled():
            self._gc_shadow = invariants.GCShadow(self.window_capacity)

    def step(self, start: int, end: int, value: Any) -> None:
        """Consume one ``(start, end, value)`` triple."""
        self._check_triple(start, end)
        self.counters.tuples += 1
        self._consumed += 1
        if start < self._frontier:
            raise KOrderViolationError(
                f"tuple starting at {start} arrived after instants up to "
                f"{self._frontier - 1} were already emitted; the input "
                f"is not {self.k}-ordered"
            )
        self.insert(start, end, value)
        if self._gc_shadow is not None:
            self._gc_shadow.observe(start)
        window = self._window
        window.append(start)
        if len(window) > self.window_capacity:
            expired = window.popleft()
            if expired > self._threshold:
                self._threshold = expired
            self._collect()

    def finish(self) -> TemporalAggregateResult:
        """Flush the remaining tree and assemble the full result."""
        trailing = self.traverse()
        rows = self._emitted + trailing.rows
        self._emitted = []
        return TemporalAggregateResult(rows, check=False)

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        self.begin()
        for start, end, value in triples:
            self.step(start, end, value)
        return self.finish()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        """A picklable snapshot of the mid-stream evaluator state.

        Everything :meth:`restore_state` needs to resume consumption at
        triple ``consumed``: the live tree (preorder-encoded, the same
        codec the paged tree spills with), the k-window, the
        gc-threshold, the emission frontier, and the rows already
        emitted by garbage collection.
        """
        from repro.core.paged_tree import encode_subtree

        return {
            "evaluator": self.name,
            "k": self.k,
            "consumed": self._consumed,
            "window": list(self._window),
            "threshold": self._threshold,
            "frontier": self._frontier,
            "emitted": [(r.start, r.end, r.value) for r in self._emitted],
            "tree": encode_subtree(self.root) if self.root is not None else None,
        }

    def restore_state(self, state: dict) -> int:
        """Rebuild mid-stream state from :meth:`capture_state` output.

        Returns the number of triples already consumed — the caller
        must skip exactly that many before feeding :meth:`step` again.
        """
        from repro.core.paged_tree import decode_subtree, subtree_size

        if state.get("k") != self.k:
            raise ValueError(
                f"checkpoint was taken with k={state.get('k')}, "
                f"this evaluator has k={self.k}"
            )
        self.begin()
        if state["tree"] is not None:
            self.root = decode_subtree(state["tree"])
            self.space.allocate(subtree_size(self.root))
        self._window = deque(state["window"])
        self._threshold = state["threshold"]
        self._frontier = state["frontier"]
        self._emitted = [
            ConstantInterval(start, end, value)
            for start, end, value in state["emitted"]
        ]
        self._consumed = int(state["consumed"])
        if self._gc_shadow is not None:
            # The shadow re-derives future thresholds independently from
            # the restored window; seed it with the same history.
            self._gc_shadow.window = deque(self._window)
            self._gc_shadow.threshold = self._threshold
        return self._consumed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def window_capacity(self) -> int:
        """Tuples of history retained: ``2k + 1`` (paper Section 5.3)."""
        return 2 * self.k + 1

    @property
    def gc_threshold(self) -> int:
        """Current gc-threshold (running max of expired window starts)."""
        return self._threshold
