"""Temporal grouping by span (paper Sections 2 and 7).

Besides grouping by instant, TSQL2 partitions the timeline by a *span*
— a calendar-defined length of time such as a year.  Each span is one
bucket; the aggregate over a bucket folds in every tuple whose valid
time overlaps that span.  The paper leaves span grouping as future
work, noting that when the number of spans is much smaller than the
number of constant intervals, far fewer "buckets" need maintaining and
even the slow linked-list strategy becomes adequate
(``benchmarks/test_ablation_span_grouping.py`` measures exactly that
effect).

Unlike instant grouping the bucket boundaries are *fixed up front*, so
the natural evaluator is a flat bucket array: O(1) bucket location per
tuple boundary plus one state update per overlapped bucket.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate

from repro.core.base import Triple, coerce_aggregate
from repro.core.interval import FOREVER, Interval, InvalidIntervalError
from repro.core.result import ConstantInterval, TemporalAggregateResult
from repro.metrics.counters import OperationCounters
from repro.metrics.space import SpaceTracker

__all__ = ["span_aggregate", "span_boundaries"]


def span_boundaries(window: Interval, span: int) -> List[int]:
    """Start instants of the spans partitioning ``window``.

    Spans are aligned to the window start; the final span may be
    shorter.  ``window`` must be bounded (FOREVER has no calendar).
    """
    if span <= 0:
        raise ValueError("span length must be positive")
    if window.end >= FOREVER:
        raise InvalidIntervalError("span grouping needs a bounded window")
    return list(range(window.start, window.end + 1, span))


def span_aggregate(
    triples: Iterable[Triple],
    aggregate: "Aggregate | str",
    window: Interval,
    span: int,
    *,
    counters: Optional[OperationCounters] = None,
    space: Optional[SpaceTracker] = None,
) -> TemporalAggregateResult:
    """Aggregate per fixed-length span over ``window``.

    Returns one row per span ``[b, min(b+span-1, window.end)]`` whose
    value folds every input tuple overlapping that span.  Tuples
    entirely outside the window are ignored.
    """
    aggregate = coerce_aggregate(aggregate)
    counters = counters if counters is not None else OperationCounters()
    space = space if space is not None else SpaceTracker(aggregate)

    starts = span_boundaries(window, span)
    states: List[Any] = [aggregate.identity() for _ in starts]
    space.allocate(len(starts))

    for start, end, value in triples:
        if start < 0 or end < start:
            raise InvalidIntervalError(f"invalid tuple valid time [{start}, {end}]")
        counters.tuples += 1
        if end < window.start or start > window.end:
            continue
        clipped_start = max(start, window.start)
        clipped_end = min(end, window.end)
        first = (clipped_start - window.start) // span
        last = (clipped_end - window.start) // span
        for index in range(first, last + 1):
            counters.node_visits += 1
            states[index] = aggregate.absorb(states[index], value)
            counters.aggregate_updates += 1

    rows = []
    for index, bucket_start in enumerate(starts):
        bucket_end = min(bucket_start + span - 1, window.end)
        rows.append(
            ConstantInterval(
                bucket_start, bucket_end, aggregate.finalize(states[index])
            )
        )
        counters.emitted += 1
    return TemporalAggregateResult(rows, check=False)
