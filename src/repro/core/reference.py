"""Brute-force oracle for temporal aggregation.

This evaluator exists for *trust*, not speed: it computes constant
intervals by first materialising every tuple, deriving the elementary
intervals directly from the sorted boundary instants, and then — for
each elementary interval — scanning **all** tuples to fold in the ones
that overlap it.  O(n·m) time, no shared code with the real algorithms
(no incremental splitting, no trees), which makes agreement between the
two a meaningful check.  The whole property-based test suite compares
the linked list, both trees, and the two-pass baseline against this
oracle on randomly generated relations.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.core.base import Evaluator, Triple
from repro.core.interval import FOREVER, ORIGIN
from repro.core.result import ConstantInterval, TemporalAggregateResult

__all__ = ["ReferenceEvaluator", "constant_interval_boundaries"]


def constant_interval_boundaries(triples: List[Triple]) -> List[int]:
    """The sorted start instants of the elementary (constant) intervals.

    A tuple ``[s, e]`` changes the overlapping set at instant ``s``
    (it enters) and at instant ``e + 1`` (it has left).  Together with
    the origin these instants begin the constant intervals; each
    interval ends one instant before the next boundary, and the last
    runs to FOREVER.
    """
    boundaries = {ORIGIN}
    for start, end, _value in triples:
        boundaries.add(start)
        if end < FOREVER:
            boundaries.add(end + 1)
    return sorted(boundaries)


class ReferenceEvaluator(Evaluator):
    """O(n·m) per-constant-interval rescan; the test oracle."""

    name = "reference"

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        aggregate = self.aggregate
        rows = list(triples)
        for start, end, _value in rows:
            self._check_triple(start, end)
        self.counters.tuples += len(rows)

        boundaries = constant_interval_boundaries(rows)
        result: List[ConstantInterval] = []
        for index, interval_start in enumerate(boundaries):
            if index + 1 < len(boundaries):
                interval_end = boundaries[index + 1] - 1
            else:
                interval_end = FOREVER
            state: Any = aggregate.identity()
            for start, end, value in rows:
                self.counters.node_visits += 1
                if start <= interval_start and interval_end <= end:
                    state = aggregate.absorb(state, value)
                    self.counters.aggregate_updates += 1
            result.append(
                ConstantInterval(
                    interval_start, interval_end, aggregate.finalize(state)
                )
            )
            self.counters.emitted += 1
        return TemporalAggregateResult(result, check=False)
