"""Granularity conversion for temporal data.

The paper's timestamp model comes from Dyreson & Snodgrass (cited in
Section 6): TSQL2 lets "the range and granularity of the timestamps …
affect the allocated size of timestamps", and Section 6.3 observes
that coarse granularities (days instead of seconds) collapse unique
timestamps and shrink every algorithm's state.  This module implements
the conversion:

* :func:`coarsen` maps an interval to a coarser granularity with
  *covering* semantics — the result spans every coarse instant the
  original touches (start floor-divided, end floor-divided: a closed
  interval of seconds maps to the closed interval of the minutes it
  intersects);
* :func:`refine` maps to a finer granularity, again covering: a day
  becomes all of its seconds;
* :func:`coarsen_triples` / :func:`refine_triples` lift the conversion
  to evaluator feeds, so "the same query at day granularity" is one
  generator away.

Coarsening is information-losing (two tuples distinct at second
granularity may coincide at day granularity); the round trip
``refine(coarsen(x))`` therefore *covers* x rather than equalling it —
a property the tests pin down.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.core.calendar import GRANULARITY_SECONDS
from repro.core.interval import FOREVER, Interval

__all__ = [
    "GranularityError",
    "conversion_factor",
    "coarsen",
    "refine",
    "coarsen_triples",
    "refine_triples",
]


class GranularityError(ValueError):
    """Raised for unknown granularities or non-integral conversions."""


def conversion_factor(fine: str, coarse: str) -> int:
    """How many ``fine`` instants one ``coarse`` instant contains.

    Both names must come from the calendar's fixed-length granularities
    (second, minute, hour, day) and ``coarse`` must be a whole multiple
    of ``fine``.
    """
    try:
        fine_seconds = GRANULARITY_SECONDS[fine]
        coarse_seconds = GRANULARITY_SECONDS[coarse]
    except KeyError as exc:
        known = ", ".join(sorted(GRANULARITY_SECONDS))
        raise GranularityError(
            f"unknown granularity {exc.args[0]!r}; known: {known}"
        ) from None
    if coarse_seconds < fine_seconds:
        raise GranularityError(
            f"{coarse!r} is finer than {fine!r}; swap the arguments"
        )
    if coarse_seconds % fine_seconds:
        raise GranularityError(
            f"one {coarse} is not a whole number of {fine}s"
        )
    return coarse_seconds // fine_seconds


def coarsen(interval: Interval, fine: str, coarse: str) -> Interval:
    """The coarse-granularity interval covering ``interval``."""
    factor = conversion_factor(fine, coarse)
    if interval.end >= FOREVER:
        return Interval(interval.start // factor, FOREVER)
    return Interval(interval.start // factor, interval.end // factor)


def refine(interval: Interval, coarse: str, fine: str) -> Interval:
    """The fine-granularity interval covering ``interval``."""
    factor = conversion_factor(fine, coarse)
    if interval.end >= FOREVER:
        return Interval(interval.start * factor, FOREVER)
    return Interval(
        interval.start * factor, interval.end * factor + factor - 1
    )


def coarsen_triples(
    triples: Iterable[Tuple[int, int, object]], fine: str, coarse: str
) -> Iterator[Tuple[int, int, object]]:
    """Lift :func:`coarsen` to an evaluator feed (order preserved, so
    k-ordered inputs stay k-ordered)."""
    factor = conversion_factor(fine, coarse)
    for start, end, value in triples:
        coarse_end = FOREVER if end >= FOREVER else end // factor
        yield (start // factor, coarse_end, value)


def refine_triples(
    triples: Iterable[Tuple[int, int, object]], coarse: str, fine: str
) -> Iterator[Tuple[int, int, object]]:
    """Lift :func:`refine` to an evaluator feed."""
    factor = conversion_factor(fine, coarse)
    for start, end, value in triples:
        if end >= FOREVER:
            yield (start * factor, FOREVER, value)
        else:
            yield (start * factor, end * factor + factor - 1, value)
