"""Aggregation over event relations (paper Section 2).

"We assume that the temporal dimensions are intervals; aggregates may
also be evaluated over event relations."  An *event* relation stamps
each tuple with a single instant rather than an interval.  Events
embed into the interval machinery as degenerate intervals ``[t, t]``,
so every core evaluator applies unchanged; this module provides the
embedding plus the aggregations that are natural for events:

* :func:`event_triples` — lift ``(instant, value)`` events to triples;
* :func:`event_instant_aggregate` — the aggregate at each instant
  (non-event instants report the empty value);
* :func:`event_span_aggregate` / window helpers — events bucketed per
  span or trailing window, the usual event-series queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate

from repro.core.base import Triple
from repro.core.engine import evaluate_triples
from repro.core.interval import Interval
from repro.core.moving import moving_window_aggregate
from repro.core.result import TemporalAggregateResult
from repro.core.span_grouping import span_aggregate

__all__ = [
    "event_triples",
    "event_instant_aggregate",
    "event_span_aggregate",
    "event_window_aggregate",
]

Event = Tuple[int, Any]


def event_triples(events: Iterable[Event]) -> Iterator[Triple]:
    """Lift ``(instant, value)`` events to degenerate-interval triples."""
    for instant, value in events:
        if instant < 0:
            raise ValueError(f"event instant {instant} precedes the origin")
        yield (instant, instant, value)


def event_instant_aggregate(
    events: Iterable[Event],
    aggregate: "Aggregate | str",
    strategy: str = "aggregation_tree",
    *,
    k: Optional[int] = None,
) -> TemporalAggregateResult:
    """The aggregate of the events at each instant.

    Instants without events carry the aggregate's empty value (0 for
    COUNT, None for the value aggregates), and simultaneous events
    fold together — e.g. COUNT gives the multiplicity profile of the
    event stream.
    """
    return evaluate_triples(
        list(event_triples(events)), aggregate, strategy, k=k
    )


def event_span_aggregate(
    events: Iterable[Event],
    aggregate: "Aggregate | str",
    window: Interval,
    span: int,
) -> TemporalAggregateResult:
    """Events bucketed per fixed-length span (e.g. alarms per hour)."""
    return span_aggregate(list(event_triples(events)), aggregate, window, span)


def event_window_aggregate(
    events: Iterable[Event],
    aggregate: "Aggregate | str",
    window: int,
    strategy: str = "aggregation_tree",
) -> TemporalAggregateResult:
    """Trailing-window aggregate of an event stream.

    The value at instant ``t`` aggregates the events of
    ``[t - window + 1, t]`` — events-per-last-hour style queries —
    via the moving-window reduction of :mod:`repro.core.moving`.
    """
    return moving_window_aggregate(
        event_triples(events), aggregate, window, strategy
    )
