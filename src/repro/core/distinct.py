"""Duplicate elimination for temporal aggregation (paper Section 7).

"We did not consider duplicate elimination.  …  Probably the best
single approach for this problem involves removing the duplicates
before the relation is processed, perhaps by sorting."  This module
implements exactly that preprocessing, giving DISTINCT semantics to
any of the core evaluators:

* :func:`distinct_triples` — sort-based removal of *identical*
  ``(start, end, value)`` triples (SQL's COUNT(DISTINCT …) over the
  full row);
* :func:`value_coalesced_triples` — the stronger temporal reading:
  per value, overlapping/adjacent periods are merged first (valid-time
  coalescing), so a value that is continuously present counts once at
  every instant no matter how its presence was chopped into tuples;
* :func:`distinct_temporal_aggregate` — convenience wrapper running a
  core evaluator after either preprocessing step.

Both preprocessors sort — the cost the paper predicts — and both
return plain triple lists, so the "sort first, then ktree k=1"
strategy composes naturally (the output of either is totally ordered).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate

from repro.core.base import Triple
from repro.core.engine import evaluate_triples
from repro.core.result import TemporalAggregateResult

__all__ = [
    "distinct_triples",
    "value_coalesced_triples",
    "distinct_temporal_aggregate",
]


def distinct_triples(triples: Iterable[Triple]) -> List[Triple]:
    """Remove exact duplicate (start, end, value) triples by sorting.

    Output is totally ordered by time (start, end) — ready for the
    k-ordered tree with k = 1.
    """
    ordered = sorted(triples, key=lambda t: (t[0], t[1], repr(t[2])))
    unique: List[Triple] = []
    for triple in ordered:
        if not unique or unique[-1] != triple:
            unique.append(triple)
    return unique


def value_coalesced_triples(triples: Iterable[Triple]) -> List[Triple]:
    """Merge per-value overlapping/adjacent periods (temporal DISTINCT).

    For each distinct value, the union of its valid time is re-cut into
    maximal disjoint intervals, so the value contributes exactly once
    to every instant it covers.  Output is totally ordered by time.
    """
    by_value = {}
    for start, end, value in triples:
        by_value.setdefault(value, []).append((start, end))

    result: List[Triple] = []
    for value, periods in by_value.items():
        periods.sort()
        current_start, current_end = periods[0]
        for start, end in periods[1:]:
            if start <= current_end + 1:
                current_end = max(current_end, end)
            else:
                result.append((current_start, current_end, value))
                current_start, current_end = start, end
        result.append((current_start, current_end, value))
    result.sort(key=lambda t: (t[0], t[1], repr(t[2])))
    return result


def distinct_temporal_aggregate(
    triples: Iterable[Triple],
    aggregate: "Aggregate | str",
    *,
    mode: str = "exact",
    strategy: str = "kordered_tree",
    k: Optional[int] = None,
) -> TemporalAggregateResult:
    """DISTINCT temporal aggregate: dedupe (by sorting), then evaluate.

    ``mode="exact"`` removes identical triples; ``mode="coalesce"``
    merges per-value periods first.  The default strategy exploits the
    sort the deduplication already paid for: the k-ordered tree with
    k = 1 (the paper's recommended pipeline).
    """
    if mode == "exact":
        prepared = distinct_triples(triples)
    elif mode == "coalesce":
        prepared = value_coalesced_triples(triples)
    else:
        raise ValueError(f"unknown distinct mode {mode!r}; use exact|coalesce")
    if strategy == "kordered_tree" and k is None:
        k = 1
    return evaluate_triples(prepared, aggregate, strategy, k=k)
