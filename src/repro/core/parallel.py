"""Partitioned evaluation and result merging.

The paper's bibliography leans on Bitton et al.'s *Parallel Algorithms
for the Execution of Relational Database Operations* for how snapshot
aggregates parallelise: partition the input, aggregate each partition
independently, merge the partial results.  Temporal aggregates admit
the same plan because constant-interval results over *disjoint tuple
sets* merge cleanly: align the two partitions' boundaries (the union of
both boundary sets) and combine the aligned values with the
aggregate's merge operation.

Two public pieces:

* :func:`merge_results` — combine two
  :class:`~repro.core.result.TemporalAggregateResult` objects computed
  over disjoint tuple subsets;
* :func:`partitioned_aggregate` — split a triple stream round-robin
  into ``partitions`` chunks, evaluate each independently (optionally
  on a thread pool — the evaluators are pure Python so the GIL caps
  real speedup, but the code path is the parallel plan), and fold the
  partial results together.

Merging needs the finalized value domain to itself be mergeable, which
holds for COUNT, SUM, MIN and MAX (their finalized values are their
states, with 0/None as identities) but not AVG (a finalized mean loses
its weight).  AVG is therefore rejected with a pointed error; compute
SUM and COUNT partitions and divide instead — exactly what
``SELECT SUM(x) / COUNT(x)`` does in the TSQL2-lite front end.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.core.base import Triple, coerce_aggregate
from repro.core.engine import make_evaluator
from repro.core.result import ConstantInterval, TemporalAggregateResult

__all__ = ["MERGEABLE_AGGREGATES", "merge_results", "partitioned_aggregate"]

#: Aggregates whose finalized values merge like states.
MERGEABLE_AGGREGATES = {"count", "sum", "min", "max"}

_VALUE_MERGERS: dict = {
    "count": lambda a, b: a + b,
    "sum": lambda a, b: b if a is None else (a if b is None else a + b),
    "min": lambda a, b: b if a is None else (a if b is None else min(a, b)),
    "max": lambda a, b: b if a is None else (a if b is None else max(a, b)),
}


def _value_merger(aggregate_name: str) -> Callable[[Any, Any], Any]:
    try:
        return _VALUE_MERGERS[aggregate_name]
    except KeyError:
        raise ValueError(
            f"aggregate {aggregate_name!r} does not merge on finalized "
            f"values (mergeable: {sorted(MERGEABLE_AGGREGATES)}); for AVG "
            "merge SUM and COUNT partitions and divide"
        ) from None


def merge_results(
    left: TemporalAggregateResult,
    right: TemporalAggregateResult,
    aggregate,
) -> TemporalAggregateResult:
    """Combine results computed over disjoint tuple subsets.

    Both inputs must partition the same timeline (which every core
    evaluator guarantees).  Output rows are cut at the union of both
    boundary sets and merged per aligned piece; adjacent rows are *not*
    value-coalesced (callers can apply
    :meth:`TemporalAggregateResult.coalesce_values`).
    """
    aggregate = coerce_aggregate(aggregate)
    merge = _value_merger(aggregate.name)
    left.verify_partition(full_cover=True)
    right.verify_partition(full_cover=True)

    rows: List[ConstantInterval] = []
    i = j = 0
    cursor = left.rows[0].start  # == ORIGIN for full covers
    while i < len(left.rows) and j < len(right.rows):
        a = left.rows[i]
        b = right.rows[j]
        end = min(a.end, b.end)
        rows.append(ConstantInterval(cursor, end, merge(a.value, b.value)))
        cursor = end + 1
        if a.end == end:
            i += 1
        if b.end == end:
            j += 1
    return TemporalAggregateResult(rows, check=False)


def partitioned_aggregate(
    triples: Iterable[Triple],
    aggregate,
    partitions: int = 4,
    strategy: str = "aggregation_tree",
    *,
    k: Optional[int] = None,
    threads: bool = False,
) -> TemporalAggregateResult:
    """Evaluate per round-robin partition, then merge.

    ``threads=True`` runs the per-partition evaluations on a thread
    pool (the parallel plan's shape; CPU-bound pure Python won't scale
    past the GIL, but the plan and merge logic are what's modeled).
    """
    aggregate = coerce_aggregate(aggregate)
    _value_merger(aggregate.name)  # validate up front
    if partitions < 1:
        raise ValueError("need at least one partition")

    chunks: List[List[Triple]] = [[] for _ in range(partitions)]
    for index, triple in enumerate(triples):
        chunks[index % partitions].append(triple)

    def evaluate(chunk: Sequence[Triple]) -> TemporalAggregateResult:
        evaluator = make_evaluator(strategy, aggregate, k=k)
        return evaluator.evaluate(list(chunk))

    if threads and partitions > 1:
        with ThreadPoolExecutor(max_workers=partitions) as pool:
            partials = list(pool.map(evaluate, chunks))
    else:
        partials = [evaluate(chunk) for chunk in chunks]

    merged = partials[0]
    for partial in partials[1:]:
        merged = merge_results(merged, partial, aggregate)
    return merged
