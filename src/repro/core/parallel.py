"""Partitioned evaluation: time-sharded processes and tuple-set merging.

Two parallel plans live here, one per partitioning axis:

* **Time-domain sharding** (:class:`ParallelSweepEvaluator`, strategy
  ``"parallel_sweep"``) — split ``[ORIGIN, FOREVER]`` into windows,
  clip tuples into the windows they overlap
  (:mod:`repro.core.partition`), run the columnar sweep kernel
  (:mod:`repro.core.columnar_sweep`) per window on a
  ``ProcessPoolExecutor``, and stitch the per-window rows back
  together.  Exact for *every* decomposable aggregate (clipping
  preserves the per-instant valid multiset), including AVG and the
  non-invertible MIN/MAX.  Falls back to the same in-process shard
  functions for small inputs, a single shard, unregistered custom
  aggregates, or platforms without ``fork``, so results are identical
  either way.

* **Tuple-set partitioning** (:func:`partitioned_aggregate`) — the
  historical plan after Bitton et al.'s *Parallel Algorithms for the
  Execution of Relational Database Operations* (in the paper's
  bibliography): split the tuples round-robin, evaluate each chunk
  independently, merge the finalized values with
  :func:`merge_results`.  Merging needs the finalized value domain to
  itself be mergeable, which holds for COUNT, SUM, MIN and MAX but not
  AVG (a finalized mean loses its weight) — exactly the limitation the
  time-domain plan removes.

The process pool is created per evaluation with the ``fork`` start
method *after* the parent publishes the input columns in module
globals, so workers inherit the data copy-on-write and nothing but the
tiny window descriptors and the flat result rows crosses the pipe.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from itertools import repeat
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.aggregates import AGGREGATES, Aggregate, get_aggregate
from repro.core.base import Evaluator, Triple, coerce_aggregate
from repro.core.columnar_sweep import (
    ColumnarSweepEvaluator,
    validate_columns,
    window_rows,
)
from repro.core.partition import (
    available_workers,
    shard_bounds,
    stitch_rows,
)
from repro.core.result import ConstantInterval, TemporalAggregateResult
from repro.exec.errors import InvalidInput

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.columns import ColumnSet
    from repro.metrics.counters import OperationCounters
    from repro.metrics.space import SpaceTracker
from repro.exec.faults import current_fault_plan
from repro.exec.supervision import RetryPolicy, ShardSupervisor, SupervisionReport
from repro.exec.validation import validate_shards

__all__ = [
    "MERGEABLE_AGGREGATES",
    "ParallelSweepEvaluator",
    "merge_results",
    "partitioned_aggregate",
    "registered_instance",
]

#: Below this many tuples the fork + pickle overhead of a process pool
#: dwarfs the sweep itself; shards run in-process instead.  This is
#: the *default*: the live threshold is the ``REPRO_POOL_MIN_TUPLES``
#: env knob, read per evaluation through
#: :func:`repro.exec.pool.pool_min_tuples`.
POOL_MIN_TUPLES = 32_768

#: Aggregates whose finalized values merge like states.
MERGEABLE_AGGREGATES = {"count", "sum", "min", "max"}

_VALUE_MERGERS: dict = {
    "count": lambda a, b: a + b,
    "sum": lambda a, b: b if a is None else (a if b is None else a + b),
    "min": lambda a, b: b if a is None else (a if b is None else min(a, b)),
    "max": lambda a, b: b if a is None else (a if b is None else max(a, b)),
}


def _value_merger(aggregate_name: str) -> Callable[[Any, Any], Any]:
    try:
        return _VALUE_MERGERS[aggregate_name]
    except KeyError as exc:
        raise InvalidInput(
            f"no finalized-value merger registered under key "
            f"{aggregate_name!r}: the aggregate does not merge on "
            f"finalized values (mergeable: {sorted(MERGEABLE_AGGREGATES)}); "
            "for AVG merge SUM and COUNT partitions and divide"
        ) from exc


def merge_results(
    left: TemporalAggregateResult,
    right: TemporalAggregateResult,
    aggregate: "Aggregate | str",
) -> TemporalAggregateResult:
    """Combine results computed over disjoint tuple subsets.

    Both inputs must partition the same timeline (which every core
    evaluator guarantees).  Output rows are cut at the union of both
    boundary sets and merged per aligned piece; adjacent rows are *not*
    value-coalesced (callers can apply
    :meth:`TemporalAggregateResult.coalesce_values`).
    """
    aggregate = coerce_aggregate(aggregate)
    merge = _value_merger(aggregate.name)
    left.verify_partition(full_cover=True)
    right.verify_partition(full_cover=True)

    rows: List[ConstantInterval] = []
    i = j = 0
    cursor = left.rows[0].start  # == ORIGIN for full covers
    while i < len(left.rows) and j < len(right.rows):
        a = left.rows[i]
        b = right.rows[j]
        end = min(a.end, b.end)
        rows.append(ConstantInterval(cursor, end, merge(a.value, b.value)))
        cursor = end + 1
        if a.end == end:
            i += 1
        if b.end == end:
            j += 1
    return TemporalAggregateResult(rows, check=False)


# ---------------------------------------------------------------------------
# Time-domain sharding
# ---------------------------------------------------------------------------

#: Input columns published by the parent just before forking so pool
#: workers inherit them copy-on-write; holds the aggregate *name* when
#: crossing processes (the instance for in-process shards).
_SHARD_STATE: dict = {}

#: Serializes sharded evaluations across threads: the shard state is a
#: module global (so fork can inherit it copy-on-write), which means
#: two concurrent ParallelSweepEvaluator runs — e.g. two server
#: sessions on worker threads — would publish over each other.  Held
#: for the whole publish/fan-out/clear window.
_SHARD_STATE_LOCK = threading.RLock()


def _resolve_shard_aggregate() -> Aggregate:
    spec = _SHARD_STATE["aggregate"]
    return get_aggregate(spec) if isinstance(spec, str) else spec


def _shard_worker(window: Tuple[int, int]) -> Tuple[List[tuple], int]:
    """Evaluate one time window against the inherited columns.

    Returns the window's plain-tuple rows plus the number of events the
    shard processed (for the parent's counter aggregation).
    """
    lo, hi = window
    state = _SHARD_STATE
    aggregate = _resolve_shard_aggregate()
    return window_rows(
        state["starts"], state["ends"], state["values"], aggregate, lo, hi
    )


def _shard_task(args: Tuple[Tuple[int, int], int, int, bool]) -> Tuple[List[tuple], int]:
    """Supervised entry point: one shard attempt, in or out of the pool.

    ``args`` is ``(window, shard_index, attempt, in_pool)``.  Injected
    faults (:mod:`repro.exec.faults`) fire only when ``in_pool`` is
    true — pool workers inherit the active plan through ``fork`` — so
    the supervisor's in-process fallback is exempt by construction and
    always computes the exact shard answer.
    """
    window, shard_index, attempt, in_pool = args
    if in_pool:
        plan = current_fault_plan()
        if plan is not None:
            poison = plan.execute_in_worker(shard_index, attempt)
            if poison is not None:
                return poison  # unpicklable: fails on the way back
    return _shard_worker(window)


#: Memo of registry-name -> constructed type, filled on first touch
#: under a lock: registered_instance runs on every engine call, and
#: without the memo each call constructs a throwaway aggregate; with a
#: plain dict two threads' first touches would both construct and race
#: the insert (harmless for dicts, but the double-checked discipline
#: keeps the invariant obvious and the construction single).
_REGISTERED_TYPE_MEMO: Dict[str, type] = {}
_REGISTERED_TYPE_LOCK = threading.Lock()


def registered_instance(aggregate: Aggregate) -> bool:
    """Can this aggregate be rebuilt elsewhere from its name alone?

    True for the stock registry aggregates; False for custom instances
    (even ones registered under a stock name but of a different type).
    Both the process-pool fan-out and the shard-result cache require
    it: the pool to reconstruct the aggregate in a worker, the cache
    because entries are keyed by aggregate *name*.
    """
    factory = AGGREGATES.get(aggregate.name)
    if factory is None:
        return False
    registered_type = _REGISTERED_TYPE_MEMO.get(aggregate.name)
    if registered_type is None:
        with _REGISTERED_TYPE_LOCK:
            registered_type = _REGISTERED_TYPE_MEMO.get(aggregate.name)
            if registered_type is None:
                registered_type = type(factory())
                _REGISTERED_TYPE_MEMO[aggregate.name] = registered_type
    return registered_type is type(aggregate)


class ParallelSweepEvaluator(Evaluator):
    """Time-sharded columnar sweep, fanned out over processes.

    ``shards=None`` uses one shard per available core (capped — see
    :func:`repro.core.partition.available_workers`).  ``use_processes``
    forces (True) or forbids (False) the process pool; the default
    ``None`` uses it only when it can pay for itself: ``shards > 1``,
    at least :data:`POOL_MIN_TUPLES` tuples, a ``fork`` start method,
    and an aggregate reconstructible by registry name in the workers.
    Shard evaluation itself is identical in or out of the pool.

    Pooled shards run under a :class:`~repro.exec.supervision.
    ShardSupervisor`: each shard gets bounded retries with jittered
    backoff (``retry``), an optional per-shard ``shard_timeout`` in
    seconds, and — after exhausting its attempts or losing the pool —
    an exact in-process fallback, so the evaluator returns the same
    rows no matter how many workers die.  ``last_supervision`` holds
    the most recent run's :class:`~repro.exec.supervision.
    SupervisionReport`.
    """

    name = "parallel_sweep"

    def __init__(
        self,
        aggregate: "Aggregate | str",
        *,
        shards: Optional[int] = None,
        use_processes: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        shard_timeout: Optional[float] = None,
        max_pool_rebuilds: int = 2,
        counters: "Optional[OperationCounters]" = None,
        space: "Optional[SpaceTracker]" = None,
    ) -> None:
        super().__init__(aggregate, counters=counters, space=space)
        self.shards = validate_shards(shards)
        self.use_processes = use_processes
        self.retry = retry
        self.shard_timeout = shard_timeout
        self.max_pool_rebuilds = max_pool_rebuilds
        self.last_supervision: Optional[SupervisionReport] = None

    def _pool_usable(self, tuple_count: int, windows: int) -> bool:
        from repro.exec.pool import pool_min_tuples

        if windows <= 1 or not registered_instance(self.aggregate):
            return False
        if self.use_processes is not None:
            return self.use_processes
        return (
            tuple_count >= pool_min_tuples()
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _make_delegate(self) -> ColumnarSweepEvaluator:
        delegate = ColumnarSweepEvaluator(
            self.aggregate, counters=self.counters, space=self.space
        )
        delegate.deadline = self.deadline
        return delegate

    def _delegate_columnar(self, data: List[Triple]) -> TemporalAggregateResult:
        return self._make_delegate().evaluate(data)

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        data = triples if isinstance(triples, list) else list(triples)
        shards = self.shards if self.shards is not None else available_workers()
        if not data or shards <= 1:
            return self._delegate_columnar(data)
        # The input arrived as per-row tuple objects; the flat-column
        # entry points (evaluate_columns / evaluate_relation) never
        # build these.
        self.counters.tuple_materializations += len(data)
        starts, ends, values = zip(*data)
        return self._evaluate_sharded(
            starts, ends, values, shards=shards, batches=0
        )

    def evaluate_columns(self, columns: "ColumnSet") -> TemporalAggregateResult:
        """Time-sharded evaluation of one flat-column snapshot.

        The zero-tuple hot path: shard workers receive column slices
        (clipped by :func:`repro.core.partition.clip_columns`) and no
        per-row tuples exist anywhere between the input columns and the
        stitched result rows.
        """
        shards = self.shards if self.shards is not None else available_workers()
        if not len(columns) or shards <= 1:
            return self._make_delegate().evaluate_columns(columns)
        return self._evaluate_sharded(
            columns.starts,
            columns.ends,
            columns.values,
            shards=shards,
            batches=columns.batches,
            columns=columns,
        )

    def evaluate_relation(
        self, relation: Any, attribute: Optional[str] = None
    ) -> TemporalAggregateResult:
        columns_method = getattr(relation, "columns", None)
        if callable(columns_method):
            return self.evaluate_columns(columns_method(attribute))
        return self.evaluate(relation.scan_triples(attribute))

    def _resident_sharded(
        self,
        starts: Sequence[int],
        ends: Sequence[int],
        values: Optional[Sequence[Any]],
        windows: Sequence[Tuple[int, int]],
        columns: "Optional[ColumnSet]",
    ) -> Optional[List[Tuple[List[tuple], int]]]:
        """Try the resident shared-memory backend for this fan-out.

        Engages only for an *identified* snapshot (a ColumnSet stamped
        with its relation uid/version — anonymous columns could alias a
        stale publication) whose columns map to int64 segments.
        Returns per-window ``(rows, events)`` results with worker
        counter deltas already merged, or None to use the legacy
        fork-per-evaluation path.
        """
        if columns is None or columns.uid is None or columns.version is None:
            return None
        from repro.exec.pool import default_pool

        pool = default_pool()
        if pool is None:
            return None
        outcome = pool.sweep_columns(
            starts,
            ends,
            values,
            windows,
            self.aggregate.name,
            uid=columns.uid,
            version=columns.version,
            column_key=columns.column_key,
            owner=columns,
            deadline=self.deadline,
            retry=self.retry,
            shard_timeout=self.shard_timeout,
            counters=self.counters,
        )
        if outcome is None:
            return None
        shard_results, supervisor = outcome
        self.last_supervision = supervisor.report
        return shard_results

    def _evaluate_sharded(
        self,
        starts: Sequence[int],
        ends: Sequence[int],
        values: Optional[Sequence[Any]],
        *,
        shards: int,
        batches: int,
        columns: "Optional[ColumnSet]" = None,
    ) -> TemporalAggregateResult:
        validate_columns(starts, ends)
        windows = shard_bounds(starts, ends, shards)
        if len(windows) == 1:
            delegate = self._make_delegate()
            result = delegate._evaluate_columns(
                starts, ends, values, batches=batches
            )
            return result

        if self._pool_usable(len(starts), len(windows)):
            self.last_supervision = None
            resident = self._resident_sharded(
                starts, ends, values, windows, columns
            )
            if resident is not None:
                return self._fold_shard_results(
                    resident, starts, ends, batches
                )

        # Serialize sharded runs across threads: the shard state is a
        # module global (fork inherits it copy-on-write), so concurrent
        # server sessions must not publish over each other.  The whole
        # publish/fan-out/clear window is deliberately held — that
        # serialization *is* the correctness property — and the with
        # block (rather than bare acquire/release) keeps the critical
        # section visible to the static lock-discipline pass.
        with _SHARD_STATE_LOCK:
            _SHARD_STATE.update(
                starts=starts,
                ends=ends,
                values=values,
                aggregate=(
                    self.aggregate.name
                    if registered_instance(self.aggregate)
                    else self.aggregate
                ),
            )
            self.last_supervision = None
            try:
                if self._pool_usable(len(starts), len(windows)):
                    # Publish the columns, *then* fork: workers inherit
                    # the data (and any active fault plan) copy-on-write.
                    supervisor = ShardSupervisor(
                        _shard_task,
                        windows,
                        mp_context=multiprocessing.get_context("fork"),
                        retry=self.retry,
                        shard_timeout=self.shard_timeout,
                        deadline=self.deadline,
                        max_pool_rebuilds=self.max_pool_rebuilds,
                    )
                    shard_results = supervisor.run()
                    self.last_supervision = supervisor.report
                else:
                    shard_results = []
                    for index, window in enumerate(windows):
                        if self.deadline is not None:
                            self.deadline.check(
                                completed_shards=index,
                                total_shards=len(windows),
                            )
                        shard_results.append(
                            _shard_task((window, index, 1, False))
                        )
            finally:
                _SHARD_STATE.clear()

        return self._fold_shard_results(shard_results, starts, ends, batches)

    def _fold_shard_results(
        self,
        shard_results: List[Tuple[List[tuple], int]],
        starts: Sequence[int],
        ends: Sequence[int],
        batches: int,
    ) -> TemporalAggregateResult:
        """Stitch per-window rows and fold shard events into counters.

        Shared by the resident and legacy backends, so both produce
        identical rows *and* identical counter shapes (worker-private
        deltas like ``pool_shards`` are merged separately by the
        resident backend before this fold).
        """
        raw = stitch_rows(
            [rows for rows, _events in shard_results], set(starts), set(ends)
        )
        counters = self.counters
        counters.tuples += len(starts)
        counters.column_batches += batches
        for _rows, events in shard_results:
            counters.node_visits += events
            counters.aggregate_updates += events
        counters.emitted += len(raw)
        self.space.absorb_concurrent(
            [events for _rows, events in shard_results]
        )
        rows = list(map(tuple.__new__, repeat(ConstantInterval), raw))
        return TemporalAggregateResult(rows, check=False)


# ---------------------------------------------------------------------------
# Tuple-set partitioning (the historical value-merge plan)
# ---------------------------------------------------------------------------

def partitioned_aggregate(
    triples: Iterable[Triple],
    aggregate: "Aggregate | str",
    partitions: int = 4,
    strategy: str = "aggregation_tree",
    *,
    k: Optional[int] = None,
    threads: bool = False,
) -> TemporalAggregateResult:
    """Evaluate per round-robin partition, then merge.

    ``threads=True`` runs the per-partition evaluations on a thread
    pool (the parallel plan's shape; CPU-bound pure Python won't scale
    past the GIL, but the plan and merge logic are what's modeled).
    """
    from repro.core.engine import make_evaluator  # deferred: import cycle

    aggregate = coerce_aggregate(aggregate)
    _value_merger(aggregate.name)  # validate up front
    validate_shards(partitions, what="partitions")

    chunks: List[List[Triple]] = [[] for _ in range(partitions)]
    for index, triple in enumerate(triples):
        chunks[index % partitions].append(triple)

    def evaluate(chunk: Sequence[Triple]) -> TemporalAggregateResult:
        evaluator = make_evaluator(strategy, aggregate, k=k)
        return evaluator.evaluate(list(chunk))

    if threads and partitions > 1:
        with ThreadPoolExecutor(max_workers=partitions) as pool:
            partials = list(pool.map(evaluate, chunks))
    else:
        partials = [evaluate(chunk) for chunk in chunks]

    merged = partials[0]
    for partial in partials[1:]:
        merged = merge_results(merged, partial, aggregate)
    return merged
