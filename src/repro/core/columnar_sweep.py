"""The endpoint sweep over flat columns — no per-event objects.

Same algorithm as :class:`~repro.core.sweep.SweepEvaluator`, different
data layout, end to end.  The input arrives as a
:class:`~repro.core.columns.ColumnSet` (two ``array('q')`` timestamp
columns plus an optional value column — see
:meth:`~repro.storage.heapfile.HeapFile.scan_columns` and
:meth:`~repro.relation.relation.TemporalRelation.columns`), the two
endpoint columns are sorted independently (plain ints sort at C speed;
value-carrying aggregates sort *indices* keyed by the time column, so
values are never compared), and a per-aggregate **specialized kernel**
merges the two sorted streams with a pair of cursors:

* COUNT — one running integer, no value column at all;
* SUM / AVG — a running total (plus live count), inlined arithmetic
  instead of absorb/retract calls;
* MIN / MAX — the lazy-deletion heap with its methods hoisted to
  locals;
* anything else — the generic absorb/retract walk (or the heap walk
  for non-invertible aggregates), bound methods hoisted out of the
  loop.

:func:`make_kernel` builds the matching closure once per evaluation, so
the inner loops carry **no per-event dispatch** — no ``isinstance``, no
method lookup, no aggregate-protocol indirection.  Result rows are
accumulated as plain 3-tuples and batch-converted to
:class:`~repro.core.result.ConstantInterval` at the end; between the
page bytes and those emitted rows the pipeline materializes zero
per-row or per-event tuple objects, which
:attr:`~repro.metrics.counters.OperationCounters.tuple_materializations`
makes checkable.

``REPRO_COLUMN_BACKEND=numpy`` swaps the COUNT/SUM/AVG kernels for the
vectorized versions in :mod:`repro.core.column_backend` when numpy is
importable (silently keeping pure Python otherwise).

The walk functions are module-level and windowed (``lo``/``hi``) so
:mod:`repro.core.parallel` can run them per time shard; rows outside
the window are never produced.  Semantics match the object sweep
exactly: all events at one instant are applied together before the
next row is cut, invertible aggregates reset to the identity when the
live count hits zero, and non-invertible aggregates fall back to the
lazy-deletion heap.
"""

from __future__ import annotations

import os
from itertools import repeat
from operator import le
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.aggregates import (
    Aggregate,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.core.base import Evaluator, Triple
from repro.core.columns import ColumnSet
from repro.core.interval import FOREVER, ORIGIN
from repro.core.partition import clip_columns
from repro.core.result import ConstantInterval, TemporalAggregateResult
from repro.core.sweep import _LazyHeap

__all__ = [
    "ColumnarSweepEvaluator",
    "Kernel",
    "columnar_rows",
    "make_kernel",
    "validate_columns",
    "window_rows",
]

#: Sentinel beyond every legal event time (events are <= FOREVER).
_AFTER_FOREVER = FOREVER + 2

#: Environment knob selecting the vectorized kernel backend.
COLUMN_BACKEND_ENV = "REPRO_COLUMN_BACKEND"

#: A specialized sweep kernel: whole columns in, plain-tuple rows out.
Kernel = Callable[
    [Sequence[int], Sequence[int], Optional[Sequence[Any]], int, int],
    List[Tuple[int, int, Any]],
]


def validate_columns(starts: Sequence[int], ends: Sequence[int]) -> None:
    """Bulk interval validation over whole columns.

    The happy path is three C-speed column checks; only on failure does
    the per-tuple loop rerun to raise the usual per-interval error.
    """
    if min(starts) >= 0 and max(ends) <= FOREVER and all(map(le, starts, ends)):
        return
    for start, end in zip(starts, ends):
        Evaluator._check_triple(start, end)


def _walk_count(
    ss: List[int], bb: List[int], lo: int, hi: int, count: int
) -> List[Tuple[int, int, Any]]:
    """COUNT kernel walk: two sorted int columns, one running integer."""
    out: List[Tuple[int, int, Any]] = []
    append = out.append
    i = j = 0
    ni = len(ss)
    nj = len(bb)
    cursor = lo
    while True:  # ta: hot
        t = ss[i] if i < ni else _AFTER_FOREVER
        tb = bb[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, count))
            cursor = t
        while i < ni and ss[i] == t:
            count += 1
            i += 1
        while j < nj and bb[j] == t:
            count -= 1
            j += 1
    append((cursor, hi, count))
    return out


def _walk_sum(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    lo: int,
    hi: int,
) -> List[Tuple[int, int, Any]]:
    """SUM kernel walk: a running total, arithmetic inlined.

    Emits ``None`` over empty stretches (SQL's NULL over an empty
    group) and resets the total to 0 when the live count hits zero, so
    float drift never leaks across an empty gap — exactly the object
    sweep's identity-reset convention.
    """
    out: List[Tuple[int, int, Any]] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    live = 0
    total = 0
    while True:  # ta: hot
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, total if live else None))
            cursor = t
        while i < ni and s_times[i] == t:
            total += s_values[i]
            live += 1
            i += 1
        while j < nj and b_times[j] == t:
            live -= 1
            if live:
                total -= b_values[j]
            else:
                total = 0
            j += 1
    append((cursor, hi, total if live else None))
    return out


def _walk_avg(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    lo: int,
    hi: int,
) -> List[Tuple[int, int, Any]]:
    """AVG kernel walk: running (total, live) pair, division at emit."""
    out: List[Tuple[int, int, Any]] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    live = 0
    total = 0
    while True:  # ta: hot
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, total / live if live else None))
            cursor = t
        while i < ni and s_times[i] == t:
            total += s_values[i]
            live += 1
            i += 1
        while j < nj and b_times[j] == t:
            live -= 1
            if live:
                total -= b_values[j]
            else:
                total = 0
            j += 1
    append((cursor, hi, total / live if live else None))
    return out


def _walk_invertible(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    aggregate: Aggregate,
    lo: int,
    hi: int,
    state: Any,
    live: int,
) -> List[Tuple[int, int, Any]]:
    """Generic absorb/retract walk for invertible value aggregates.

    The fallback for aggregates without a specialized kernel; the
    bound methods are hoisted to locals so the loop still carries no
    attribute lookups.
    """
    absorb = aggregate.absorb
    retract = aggregate.retract
    finalize = aggregate.finalize
    identity = aggregate.identity
    empty_value = finalize(identity())
    out: List[Tuple[int, int, Any]] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    while True:  # ta: hot
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, empty_value if live == 0 else finalize(state)))
            cursor = t
        while i < ni and s_times[i] == t:
            state = absorb(state, s_values[i])
            live += 1
            i += 1
        while j < nj and b_times[j] == t:
            live -= 1
            state = identity() if live == 0 else retract(state, b_values[j])
            j += 1
    append((cursor, hi, empty_value if live == 0 else finalize(state)))
    return out


def _walk_extremal(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    largest: bool,
    lo: int,
    hi: int,
    initial: Sequence[Any] = (),
) -> List[Tuple[int, int, Any]]:
    """Lazy-deletion-heap walk for MIN/MAX (non-invertible aggregates)."""
    heap = _LazyHeap(largest_first=largest)
    for value in initial:
        heap.push(value)
    top = heap.top
    push = heap.push
    discard = heap.discard
    out: List[Tuple[int, int, Any]] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    while True:  # ta: hot
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, top()))
            cursor = t
        while i < ni and s_times[i] == t:
            push(s_values[i])
            i += 1
        while j < nj and b_times[j] == t:
            discard(b_values[j])
            j += 1
    append((cursor, hi, top()))
    return out


def _sorted_events(
    starts: Sequence[int], ends: Sequence[int], values: Sequence[Any]
) -> Tuple[List[int], List[Any], List[int], List[Any]]:
    """Time-sorted start and retraction event columns.

    Sorting goes through index lists keyed by the time column so tuple
    values are never compared (they may not be mutually orderable).
    """
    s_order = sorted(range(len(starts)), key=starts.__getitem__)
    s_times = [starts[i] for i in s_order]
    s_values = [values[i] for i in s_order]
    finite = [i for i in range(len(ends)) if ends[i] < FOREVER]
    finite.sort(key=ends.__getitem__)
    b_times = [ends[i] + 1 for i in finite]
    b_values = [values[i] for i in finite]
    return s_times, s_values, b_times, b_values


def _backend_name() -> str:
    """The configured kernel backend ('python' unless numpy is asked for)."""
    return os.environ.get(COLUMN_BACKEND_ENV, "python").strip().lower()


def make_kernel(aggregate: Aggregate) -> Kernel:
    """Build the specialized sweep closure for one aggregate.

    The factory is where per-aggregate decisions happen *once*, so the
    returned closure's loops run free of dispatch: COUNT/SUM/AVG get
    inlined-arithmetic walks, MIN/MAX the hoisted lazy-heap walk, and
    everything else the generic (still hoisted) absorb/retract or heap
    walk.  Specialization keys on the exact stock type — a custom
    subclass registered under a stock name keeps the generic kernel
    and therefore its own ``absorb``/``retract`` semantics.
    """
    kind = type(aggregate)
    if _backend_name() == "numpy" and kind in (
        CountAggregate,
        SumAggregate,
        AvgAggregate,
    ):
        from repro.core.column_backend import numpy_kernel

        vectorized = numpy_kernel(aggregate.name)
        if vectorized is not None:
            return vectorized

    if kind is CountAggregate:

        def count_kernel(
            starts: Sequence[int],
            ends: Sequence[int],
            values: Optional[Sequence[Any]],
            lo: int,
            hi: int,
        ) -> List[Tuple[int, int, Any]]:
            ss = sorted(starts)
            bb = sorted([e + 1 for e in ends if e < FOREVER])
            return _walk_count(ss, bb, lo, hi, 0)

        return count_kernel

    if kind is SumAggregate or kind is AvgAggregate:
        walk = _walk_sum if kind is SumAggregate else _walk_avg

        def running_total_kernel(
            starts: Sequence[int],
            ends: Sequence[int],
            values: Optional[Sequence[Any]],
            lo: int,
            hi: int,
        ) -> List[Tuple[int, int, Any]]:
            assert values is not None  # needs_value aggregates get a column
            s_times, s_values, b_times, b_values = _sorted_events(
                starts, ends, values
            )
            return walk(s_times, s_values, b_times, b_values, lo, hi)

        return running_total_kernel

    if kind is MinAggregate or kind is MaxAggregate or not aggregate.invertible:
        largest = aggregate.name == "max"

        def extremal_kernel(
            starts: Sequence[int],
            ends: Sequence[int],
            values: Optional[Sequence[Any]],
            lo: int,
            hi: int,
        ) -> List[Tuple[int, int, Any]]:
            assert values is not None
            s_times, s_values, b_times, b_values = _sorted_events(
                starts, ends, values
            )
            return _walk_extremal(
                s_times, s_values, b_times, b_values, largest, lo, hi
            )

        return extremal_kernel

    def generic_kernel(
        starts: Sequence[int],
        ends: Sequence[int],
        values: Optional[Sequence[Any]],
        lo: int,
        hi: int,
    ) -> List[Tuple[int, int, Any]]:
        assert values is not None
        s_times, s_values, b_times, b_values = _sorted_events(
            starts, ends, values
        )
        return _walk_invertible(
            s_times, s_values, b_times, b_values, aggregate,
            lo, hi, aggregate.identity(), 0,
        )

    return generic_kernel


def columnar_rows(
    starts: Sequence[int],
    ends: Sequence[int],
    values: Optional[Sequence[Any]],
    aggregate: Aggregate,
    lo: int = ORIGIN,
    hi: int = FOREVER,
) -> List[Tuple[int, int, Any]]:
    """Plain ``(start, end, value)`` rows partitioning ``[lo, hi]``.

    The shard-level workhorse.  Events before the window fold into the
    running state before the first row is cut; events past it are never
    reached — though shards clip first (see
    :mod:`repro.core.partition`) so workers don't walk shared prefixes.
    ``values=None`` is accepted for value-less aggregates (COUNT).
    """
    if not len(starts):
        return [(lo, hi, aggregate.finalize(aggregate.identity()))]
    if values is None and type(aggregate) is not CountAggregate:
        # Every kernel but COUNT's subscripts the value column.  A
        # value-less feed under a value aggregate is a caller bug —
        # fill explicitly so the aggregate raises its own error rather
        # than the kernel dying on a None subscript; value-less custom
        # aggregates ignore the filled value entirely.
        values = [None] * len(starts)
    return make_kernel(aggregate)(starts, ends, values, lo, hi)


def event_count(starts: Sequence[int], ends: Sequence[int]) -> int:
    """Events a sweep over these columns processes (starts + finite ends)."""
    return len(starts) + sum(1 for e in ends if e < FOREVER)


def window_rows(
    starts: Sequence[int],
    ends: Sequence[int],
    values: Optional[Sequence[Any]],
    aggregate: Aggregate,
    lo: int,
    hi: int,
) -> Tuple[List[Tuple[int, int, Any]], int]:
    """One time window's rows from whole-relation columns.

    The per-shard unit of work shared by the parallel sweep and the
    shard-result cache: clip the columns (staying in column layout —
    :func:`repro.core.partition.clip_columns` builds no row tuples),
    run the specialized kernel over the clipped slice, and fall back to
    a single identity row for an empty window.  Returns
    ``(rows, events_processed)``.
    """
    clipped_starts, clipped_ends, clipped_values = clip_columns(
        starts, ends, values, lo, hi
    )
    if not len(clipped_starts):
        empty = aggregate.finalize(aggregate.identity())
        return [(lo, hi, empty)], 0
    rows = columnar_rows(
        clipped_starts, clipped_ends, clipped_values, aggregate, lo, hi
    )
    return rows, event_count(clipped_starts, clipped_ends)


class ColumnarSweepEvaluator(Evaluator):
    """Endpoint sweep over flat columns; same output as ``sweep``.

    Over a relation (or heap file) offering the flat-column protocol
    (``columns(attribute)``), :meth:`evaluate_relation` routes through
    :meth:`evaluate_columns` — the zero-tuple end-to-end path.  Raw
    triple streams still evaluate through :meth:`evaluate`, which
    decomposes them into columns first (and accounts the per-row
    tuples it consumed under ``tuple_materializations``).
    """

    name = "columnar_sweep"

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        data = triples if isinstance(triples, list) else list(triples)
        if not data:
            return self._empty_result()
        # The input arrived as per-row tuple objects; the columnar
        # protocol path (evaluate_columns) never builds these.
        self.counters.tuple_materializations += len(data)
        starts, ends, values = zip(*data)
        return self._evaluate_columns(starts, ends, values, batches=0)

    def evaluate_columns(self, columns: ColumnSet) -> TemporalAggregateResult:
        """Evaluate one flat-column snapshot — the zero-tuple hot path."""
        if not len(columns):
            return self._empty_result()
        return self._evaluate_columns(
            columns.starts, columns.ends, columns.values,
            batches=columns.batches,
        )

    def evaluate_relation(
        self, relation: Any, attribute: Optional[str] = None
    ) -> TemporalAggregateResult:
        columns_method = getattr(relation, "columns", None)
        if callable(columns_method):
            return self.evaluate_columns(columns_method(attribute))
        return self.evaluate(relation.scan_triples(attribute))

    def _empty_result(self) -> TemporalAggregateResult:
        aggregate = self.aggregate
        self.counters.emitted += 1
        value = aggregate.finalize(aggregate.identity())
        return TemporalAggregateResult(
            [ConstantInterval(ORIGIN, FOREVER, value)], check=False
        )

    def _evaluate_columns(
        self,
        starts: Sequence[int],
        ends: Sequence[int],
        values: Optional[Sequence[Any]],
        *,
        batches: int,
    ) -> TemporalAggregateResult:
        if self.deadline is not None:
            # The sweep is monolithic; check once before the heavy work
            # (shard-level granularity comes from the parallel plan).
            self.deadline.check(tuples_consumed=0)
        counters = self.counters
        validate_columns(starts, ends)
        raw = columnar_rows(starts, ends, values, self.aggregate)
        # Bulk accounting mirroring the object sweep's totals: one visit
        # and one state update per event, one allocation per event.
        events = event_count(starts, ends)
        counters.tuples += len(starts)
        counters.node_visits += events
        counters.aggregate_updates += events
        counters.emitted += len(raw)
        counters.column_batches += batches
        self.space.allocate(events)
        self.space.free(events)
        rows = list(map(tuple.__new__, repeat(ConstantInterval), raw))
        return TemporalAggregateResult(rows, check=False)
