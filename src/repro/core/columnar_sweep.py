"""The endpoint sweep over flat columns — no per-event objects.

Same algorithm as :class:`~repro.core.sweep.SweepEvaluator`, different
data layout.  Instead of a list of ``(time, kind, value)`` event tuples
this evaluator decomposes the input into parallel columns (starts,
ends, values), sorts the two endpoint columns independently (plain
ints sort at C speed; value-carrying aggregates sort *indices* keyed by
the time column, so values are never compared), and merges the two
sorted streams with a pair of cursors.  Result rows are accumulated as
plain 3-tuples and batch-converted to
:class:`~repro.core.result.ConstantInterval` at the end — per-row
NamedTuple construction is the single largest cost of the object sweep
at scale.

The walk functions are module-level and windowed (``lo``/``hi``) so
:mod:`repro.core.parallel` can run them per time shard; rows outside
the window are never produced.

Semantics match the object sweep exactly: all events at one instant are
applied together before the next row is cut, invertible aggregates run
absorb/retract with an identity reset when the live count hits zero,
and MIN/MAX (or any non-invertible aggregate) fall back to the lazy-
deletion heap.
"""

from __future__ import annotations

from itertools import repeat
from operator import le
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.aggregates import Aggregate
from repro.core.base import Evaluator, Triple
from repro.core.interval import FOREVER, ORIGIN
from repro.core.partition import clip_triples
from repro.core.result import ConstantInterval, TemporalAggregateResult
from repro.core.sweep import _LazyHeap

__all__ = [
    "ColumnarSweepEvaluator",
    "columnar_rows",
    "validate_columns",
    "window_rows",
]

#: Sentinel beyond every legal event time (events are <= FOREVER).
_AFTER_FOREVER = FOREVER + 2


def validate_columns(starts: Sequence[int], ends: Sequence[int]) -> None:
    """Bulk interval validation over whole columns.

    The happy path is three C-speed column checks; only on failure does
    the per-tuple loop rerun to raise the usual per-interval error.
    """
    if min(starts) >= 0 and max(ends) <= FOREVER and all(map(le, starts, ends)):
        return
    for start, end in zip(starts, ends):
        Evaluator._check_triple(start, end)


def _walk_count(
    ss: List[int], bb: List[int], lo: int, hi: int, count: int
) -> List[tuple]:
    """COUNT fast path: two sorted int columns, one running integer."""
    out: List[tuple] = []
    append = out.append
    i = j = 0
    ni = len(ss)
    nj = len(bb)
    cursor = lo
    while True:
        t = ss[i] if i < ni else _AFTER_FOREVER
        tb = bb[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, count))
            cursor = t
        while i < ni and ss[i] == t:
            count += 1
            i += 1
        while j < nj and bb[j] == t:
            count -= 1
            j += 1
    append((cursor, hi, count))
    return out


def _walk_invertible(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    aggregate: Aggregate,
    lo: int,
    hi: int,
    state: Any,
    live: int,
) -> List[tuple]:
    """Generic absorb/retract walk for invertible value aggregates."""
    absorb = aggregate.absorb
    retract = aggregate.retract
    finalize = aggregate.finalize
    identity = aggregate.identity
    empty_value = finalize(identity())
    out: List[tuple] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    while True:
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, empty_value if live == 0 else finalize(state)))
            cursor = t
        while i < ni and s_times[i] == t:
            state = absorb(state, s_values[i])
            live += 1
            i += 1
        while j < nj and b_times[j] == t:
            live -= 1
            state = identity() if live == 0 else retract(state, b_values[j])
            j += 1
    append((cursor, hi, empty_value if live == 0 else finalize(state)))
    return out


def _walk_extremal(
    s_times: List[int],
    s_values: List[Any],
    b_times: List[int],
    b_values: List[Any],
    largest: bool,
    lo: int,
    hi: int,
    initial: Sequence[Any] = (),
) -> List[tuple]:
    """Lazy-deletion-heap walk for MIN/MAX (non-invertible aggregates)."""
    heap = _LazyHeap(largest_first=largest)
    for value in initial:
        heap.push(value)
    top = heap.top
    push = heap.push
    discard = heap.discard
    out: List[tuple] = []
    append = out.append
    i = j = 0
    ni = len(s_times)
    nj = len(b_times)
    cursor = lo
    while True:
        t = s_times[i] if i < ni else _AFTER_FOREVER
        tb = b_times[j] if j < nj else _AFTER_FOREVER
        if tb < t:
            t = tb
        if t > hi:
            break
        if t > cursor:
            append((cursor, t - 1, top()))
            cursor = t
        while i < ni and s_times[i] == t:
            push(s_values[i])
            i += 1
        while j < nj and b_times[j] == t:
            discard(b_values[j])
            j += 1
    append((cursor, hi, top()))
    return out


def _sorted_events(
    starts: Sequence[int], ends: Sequence[int], values: Sequence[Any]
) -> Tuple[List[int], List[Any], List[int], List[Any]]:
    """Time-sorted start and retraction event columns.

    Sorting goes through index lists keyed by the time column so tuple
    values are never compared (they may not be mutually orderable).
    """
    s_order = sorted(range(len(starts)), key=starts.__getitem__)
    s_times = [starts[i] for i in s_order]
    s_values = [values[i] for i in s_order]
    finite = [i for i in range(len(ends)) if ends[i] < FOREVER]
    finite.sort(key=ends.__getitem__)
    b_times = [ends[i] + 1 for i in finite]
    b_values = [values[i] for i in finite]
    return s_times, s_values, b_times, b_values


def columnar_rows(
    starts: Sequence[int],
    ends: Sequence[int],
    values: Sequence[Any],
    aggregate: Aggregate,
    lo: int = ORIGIN,
    hi: int = FOREVER,
) -> List[tuple]:
    """Plain ``(start, end, value)`` rows partitioning ``[lo, hi]``.

    The shard-level workhorse.  Events before the window fold into the
    running state before the first row is cut; events past it are never
    reached — though shards clip first (see
    :mod:`repro.core.partition`) so workers don't walk shared prefixes.
    """
    if not starts:
        return [(lo, hi, aggregate.finalize(aggregate.identity()))]
    if not aggregate.needs_value and aggregate.name == "count":
        ss = sorted(starts)
        bb = sorted([e + 1 for e in ends if e < FOREVER])
        return _walk_count(ss, bb, lo, hi, 0)
    s_times, s_values, b_times, b_values = _sorted_events(starts, ends, values)
    if aggregate.invertible:
        return _walk_invertible(
            s_times, s_values, b_times, b_values, aggregate,
            lo, hi, aggregate.identity(), 0,
        )
    return _walk_extremal(
        s_times, s_values, b_times, b_values,
        aggregate.name == "max", lo, hi,
    )


def event_count(starts: Sequence[int], ends: Sequence[int]) -> int:
    """Events a sweep over these columns processes (starts + finite ends)."""
    return len(starts) + sum(1 for e in ends if e < FOREVER)


def window_rows(
    starts: Sequence[int],
    ends: Sequence[int],
    values: Sequence[Any],
    aggregate: Aggregate,
    lo: int,
    hi: int,
) -> Tuple[List[tuple], int]:
    """One time window's rows from whole-relation columns.

    The per-shard unit of work shared by the parallel sweep and the
    shard-result cache: clip the columns to ``[lo, hi]``, sweep the
    clipped tuples, and fall back to a single identity row for an
    empty window.  Returns ``(rows, events_processed)``.
    """
    clipped = clip_triples(zip(starts, ends, values), lo, hi)
    if not clipped:
        empty = aggregate.finalize(aggregate.identity())
        return [(lo, hi, empty)], 0
    cs, ce, cv = zip(*clipped)
    return columnar_rows(cs, ce, cv, aggregate, lo, hi), event_count(cs, ce)


class ColumnarSweepEvaluator(Evaluator):
    """Endpoint sweep over flat columns; same output as ``sweep``."""

    name = "columnar_sweep"

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        data = triples if isinstance(triples, list) else list(triples)
        if self.deadline is not None:
            # The sweep is monolithic; check once before the heavy work
            # (shard-level granularity comes from the parallel plan).
            self.deadline.check(tuples_consumed=0)
        counters = self.counters
        aggregate = self.aggregate
        if not data:
            counters.emitted += 1
            value = aggregate.finalize(aggregate.identity())
            return TemporalAggregateResult(
                [ConstantInterval(ORIGIN, FOREVER, value)], check=False
            )
        starts, ends, values = zip(*data)
        validate_columns(starts, ends)
        raw = columnar_rows(starts, ends, values, aggregate)
        # Bulk accounting mirroring the object sweep's totals: one visit
        # and one state update per event, one allocation per event.
        events = event_count(starts, ends)
        counters.tuples += len(data)
        counters.node_visits += events
        counters.aggregate_updates += events
        counters.emitted += len(raw)
        self.space.allocate(events)
        self.space.free(events)
        rows = list(map(tuple.__new__, repeat(ConstantInterval), raw))
        return TemporalAggregateResult(rows, check=False)
