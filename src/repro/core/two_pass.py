"""Tuma's two-scan baseline (paper Section 4.1).

The only temporal-aggregate algorithm implemented before the paper
[Tuma 1992] evaluates in five steps: (1) determine the constant
intervals; (2) select, per constant interval, the overlapping tuples;
(3) partition by the group-by attribute into aggregation sets; (4)
compute the aggregate per set; (5) associate values back.  Steps 1 and
2–4 each require a full scan of the relation, which is the paper's
core criticism — every new algorithm reads the relation once.

Our implementation keeps the two-scan structure but is otherwise
sensibly engineered: pass 1 collects boundary instants and materialises
the constant intervals; pass 2 locates each tuple's first constant
interval by binary search and walks forward absorbing the tuple into
every interval it overlaps.  Time O(n·log n + V) for V total
tuple-interval overlaps (V is Θ(n²) with many long-lived tuples),
space one state per constant interval.

Because it needs two passes, :meth:`evaluate` must materialise a
one-shot iterator; :meth:`evaluate_relation` instead performs two
*counted* scans of the relation, which is what the scan-accounting
tests assert on.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Iterable, List, Optional

from repro.core.base import Evaluator, Triple
from repro.core.interval import FOREVER
from repro.core.reference import constant_interval_boundaries
from repro.core.result import ConstantInterval, TemporalAggregateResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relation.relation import TemporalRelation

__all__ = ["TwoPassEvaluator"]


class TwoPassEvaluator(Evaluator):
    """Constant intervals first, aggregates second; two relation scans."""

    name = "two_pass"
    scans_required = 2

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        """Evaluate over an in-memory triple sequence.

        A generator is materialised (it can only be scanned once);
        prefer :meth:`evaluate_relation` to exercise the genuine
        two-scan behaviour.
        """
        rows = triples if isinstance(triples, list) else list(triples)
        return self._evaluate_two_scans(rows, rows)

    def evaluate_relation(
        self, relation: "TemporalRelation", attribute: Optional[str] = None
    ) -> TemporalAggregateResult:
        """Two counted scans of ``relation`` — Tuma's distinguishing cost."""
        return self._evaluate_two_scans(
            relation.scan_triples(attribute),
            relation.scan_triples(attribute),
        )

    # ------------------------------------------------------------------
    # The two passes
    # ------------------------------------------------------------------

    def _evaluate_two_scans(
        self, first_scan: Iterable[Triple], second_scan: Iterable[Triple]
    ) -> TemporalAggregateResult:
        aggregate = self.aggregate
        counters = self.counters

        # Pass 1: the constant intervals (steps 1 of Tuma's method).
        pass_one: List[Triple] = []
        for triple in first_scan:
            self._check_triple(triple[0], triple[1])
            counters.tuples += 1
            pass_one.append((triple[0], triple[1], None))
        boundaries = constant_interval_boundaries(pass_one)
        del pass_one
        states: List[Any] = [aggregate.identity() for _ in boundaries]
        self.space.allocate(len(boundaries))

        # Pass 2: fold every tuple into each constant interval it
        # overlaps (steps 2-4).
        for start, end, value in second_scan:
            counters.tuples += 1
            index = bisect_right(boundaries, start) - 1
            while index < len(boundaries) and boundaries[index] <= end:
                counters.node_visits += 1
                states[index] = aggregate.absorb(states[index], value)
                counters.aggregate_updates += 1
                index += 1

        rows: List[ConstantInterval] = []
        for index, interval_start in enumerate(boundaries):
            if index + 1 < len(boundaries):
                interval_end = boundaries[index + 1] - 1
            else:
                interval_end = FOREVER
            rows.append(
                ConstantInterval(
                    interval_start, interval_end, aggregate.finalize(states[index])
                )
            )
            counters.emitted += 1
        return TemporalAggregateResult(rows, check=False)
