"""Common machinery shared by the temporal-aggregate evaluators.

Every algorithm from the paper is packaged as an :class:`Evaluator`
subclass.  An evaluator is constructed around one
:class:`~repro.core.aggregates.Aggregate` plus optional instrumentation
(:class:`~repro.metrics.counters.OperationCounters` and
:class:`~repro.metrics.space.SpaceTracker`), and consumes the relation
as an iterable of ``(start, end, value)`` triples — the exact shape
:meth:`TemporalRelation.scan_triples` produces.  Decoupling evaluators
from the relation class keeps the hot loops free of attribute lookups
and lets the same code run over generators, lists, or storage-backed
scans.

``evaluate`` performs a **single pass** over the triples; the
:class:`~repro.core.two_pass.TwoPassEvaluator` baseline overrides
``evaluate_relation`` to make the two scans that distinguish Tuma's
method (Section 4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Tuple

from repro.core.aggregates import Aggregate, get_aggregate
from repro.core.interval import FOREVER, InvalidIntervalError
from repro.core.result import TemporalAggregateResult
from repro.metrics.counters import OperationCounters
from repro.metrics.space import SpaceTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.relation.relation import TemporalRelation

__all__ = ["CHECKPOINT_INTERVAL", "Evaluator", "Triple", "coerce_aggregate"]

#: One input tuple as the evaluators see it.
Triple = Tuple[int, int, Any]

#: Tuples between resilience checkpoints during structure construction.
#: Coarse enough to keep the modulo off the hot path's profile, fine
#: enough that deadlines and memory budgets bind within milliseconds.
CHECKPOINT_INTERVAL = 64


def coerce_aggregate(aggregate: "Aggregate | str") -> Aggregate:
    """Accept either an Aggregate instance or a registry name."""
    if isinstance(aggregate, Aggregate):
        return aggregate
    return get_aggregate(aggregate)


class Evaluator:
    """Base class for the paper's temporal-aggregate algorithms."""

    #: Registry / display name ("linked_list", "aggregation_tree", ...).
    name: str = "abstract"

    #: Number of sequential relation scans the algorithm needs.
    scans_required: int = 1

    def __init__(
        self,
        aggregate: "Aggregate | str",
        *,
        counters: Optional[OperationCounters] = None,
        space: Optional[SpaceTracker] = None,
    ) -> None:
        self.aggregate = coerce_aggregate(aggregate)
        self.counters = counters if counters is not None else OperationCounters()
        self.space = space if space is not None else SpaceTracker(self.aggregate)
        #: Optional wall-clock :class:`~repro.exec.deadline.Deadline`;
        #: honored at checkpoints when set (the engine threads it here).
        self.deadline = None
        #: Optional :class:`~repro.exec.budget.MemoryGuard` sampled at
        #: checkpoints during structure construction.
        self.guard = None

    # ------------------------------------------------------------------
    # The algorithm-specific part
    # ------------------------------------------------------------------

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        """Compute the aggregate over one stream of (start, end, value)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Relation-level convenience
    # ------------------------------------------------------------------

    def evaluate_relation(
        self, relation: "TemporalRelation", attribute: Optional[str] = None
    ) -> TemporalAggregateResult:
        """Run over a relation with one counted scan (default algorithms)."""
        return self.evaluate(relation.scan_triples(attribute))

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _checkpoint(self, consumed: int) -> None:
        """One resilience safepoint: deadline first, then the budget.

        Called from build loops every :data:`CHECKPOINT_INTERVAL`
        tuples (and at shard boundaries in the parallel plan).  Both
        attributes default to None, so unconfigured evaluations pay
        only the two attribute loads.
        """
        if self.deadline is not None:
            self.deadline.check(tuples_consumed=consumed)
        if self.guard is not None:
            self.guard.check(consumed)

    @staticmethod
    def _check_triple(start: int, end: int) -> None:
        """Validate one tuple's valid-time bounds (cheap hot-path check)."""
        if start < 0 or end < start or end > FOREVER:
            raise InvalidIntervalError(
                f"invalid tuple valid time [{start}, {end}]"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(aggregate={self.aggregate.name})"
