"""Optional vectorized kernel backend (``REPRO_COLUMN_BACKEND=numpy``).

The pure-Python kernels in :mod:`repro.core.columnar_sweep` merge two
sorted event streams with interpreted cursor loops.  When numpy is
importable, the COUNT/SUM/AVG sweeps collapse into a handful of array
primitives instead: stable argsort over the event times, segment
boundaries via a shifted comparison, per-time deltas reduced with
``add.reduceat``, and a cumulative sum giving the running aggregate
after each distinct event time.  Row assembly is then a pair of
``searchsorted`` calls against the ``[lo, hi]`` window.

numpy is deliberately bound as ``Any`` (loaded through
:func:`importlib.import_module`) so the strict typing gate on
``repro.core`` does not depend on numpy stubs, and so the module
imports cleanly — reporting the backend as unavailable — on machines
without numpy.  MIN/MAX keep the lazy-deletion heap regardless of the
backend: a running extremum is not expressible as a cumulative sum.

Caveat on floats: the Python SUM/AVG kernels reset their running total
to exactly 0 whenever the live count hits zero, so float drift never
crosses an empty gap.  The cumulative-sum formulation cannot reset
mid-stream, so float inputs may differ from the Python kernel in the
last ulp across such gaps.  The reference workloads aggregate integer
salaries, where both formulations are exact; pick the backend
accordingly for float data.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.interval import FOREVER

__all__ = ["numpy_available", "numpy_kernel"]

_Kernel = Callable[
    [Sequence[int], Sequence[int], Optional[Sequence[Any]], int, int],
    List[Tuple[int, int, Any]],
]

_numpy: Any = None
_numpy_probed = False


def _load_numpy() -> Any:
    global _numpy, _numpy_probed
    if not _numpy_probed:
        _numpy_probed = True
        try:
            _numpy = importlib.import_module("numpy")
        except Exception:
            _numpy = None
    return _numpy


def numpy_available() -> bool:
    """Whether the vectorized backend can actually run here."""
    return _load_numpy() is not None


def _event_columns(
    np: Any,
    starts: Sequence[int],
    ends: Sequence[int],
    weights: Optional[Sequence[Any]],
) -> Tuple[Any, Any, Any]:
    """Distinct event times with per-time live and weight deltas.

    Returns ``(times, live_deltas, weight_deltas)`` where ``times`` is
    ascending and distinct, and the delta columns hold the *net* change
    at each time (starts contribute ``+1``/``+w``, retractions at
    ``end + 1`` contribute ``-1``/``-w``).  ``weight_deltas`` is None
    when ``weights`` is (the COUNT feed).
    """
    s = np.asarray(starts, dtype=np.int64)
    e = np.asarray(ends, dtype=np.int64)
    finite = e < FOREVER
    b = e[finite] + 1
    times = np.concatenate((s, b))
    live = np.concatenate(
        (np.ones(len(s), dtype=np.int64), -np.ones(len(b), dtype=np.int64))
    )
    if weights is None:
        weight = None
    else:
        try:
            # Integer feeds stay int64 end to end — exact totals, and
            # ``tolist`` hands back Python ints like the cursor kernels.
            w = np.asarray(weights, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            if any(value is None for value in weights):
                # float64 coercion would turn None into NaN; the cursor
                # kernels (and the object sweep) reject such feeds.
                raise TypeError(
                    "SUM/AVG require a value column; got None values"
                ) from None
            w = np.asarray(weights, dtype=np.float64)
        weight = np.concatenate((w, -w[finite]))
    order = np.argsort(times, kind="stable")
    times = times[order]
    live = live[order]
    # First index of each run of equal times.
    firsts = np.flatnonzero(
        np.concatenate(([True], times[1:] != times[:-1]))
    )
    uniq = times[firsts]
    live_net = np.add.reduceat(live, firsts)
    if weight is None:
        weight_net = None
    else:
        weight_net = np.add.reduceat(weight[order], firsts)
    return uniq, live_net, weight_net


def _assemble_rows(
    np: Any,
    uniq: Any,
    lo: int,
    hi: int,
    running: Any,
    value_at: Callable[[int], Any],
) -> List[Tuple[int, int, Any]]:
    """Rows partitioning ``[lo, hi]`` from per-time running state.

    ``running[k]`` is the state after all events at ``uniq[k]``;
    ``value_at(k)`` finalizes it (``k == -1`` means "before every
    event").  Events at or before ``lo`` fold into the first row,
    matching the cursor kernels.
    """
    first = int(np.searchsorted(uniq, lo, side="right"))
    inside = int(np.searchsorted(uniq, hi, side="right"))
    cuts = uniq[first:inside].tolist()
    row_starts = [lo] + cuts
    row_ends = [c - 1 for c in cuts] + [hi]
    row_values = [value_at(k) for k in range(first - 1, inside)]
    return list(zip(row_starts, row_ends, row_values))


def numpy_kernel(name: str) -> Optional[_Kernel]:
    """The vectorized kernel for ``name``, or None if unsupported.

    Only the cumulative aggregates (count/sum/avg) vectorize; any other
    name — and any machine without numpy — returns None, telling
    :func:`repro.core.columnar_sweep.make_kernel` to keep the Python
    kernel.
    """
    np = _load_numpy()
    if np is None or name not in ("count", "sum", "avg"):
        return None

    if name == "count":

        def count_kernel(
            starts: Sequence[int],
            ends: Sequence[int],
            values: Optional[Sequence[Any]],
            lo: int,
            hi: int,
        ) -> List[Tuple[int, int, Any]]:
            uniq, live_net, _ = _event_columns(np, starts, ends, None)
            running = np.cumsum(live_net)
            counts = running.tolist()

            def value_at(k: int) -> Any:
                return counts[k] if k >= 0 else 0

            return _assemble_rows(np, uniq, lo, hi, running, value_at)

        return count_kernel

    def total_kernel(
        starts: Sequence[int],
        ends: Sequence[int],
        values: Optional[Sequence[Any]],
        lo: int,
        hi: int,
    ) -> List[Tuple[int, int, Any]]:
        assert values is not None
        uniq, live_net, weight_net = _event_columns(np, starts, ends, values)
        lives = np.cumsum(live_net).tolist()
        totals = np.cumsum(weight_net).tolist()

        if name == "sum":

            def value_at(k: int) -> Any:
                if k < 0 or not lives[k]:
                    return None
                return totals[k]

        else:  # avg

            def value_at(k: int) -> Any:
                if k < 0 or not lives[k]:
                    return None
                return totals[k] / lives[k]

        return _assemble_rows(np, uniq, lo, hi, None, value_at)

    return total_kernel
