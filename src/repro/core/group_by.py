"""Attribute grouping combined with temporal grouping.

TSQL2 aggregates compose a classic GROUP BY with temporal grouping
(paper Section 2): ``SELECT Dept, AVG(Salary) FROM Employed GROUP BY
Dept`` returns, for every department, a *time-varying* average.  This
module implements that composition for instant grouping: the relation
is partitioned by the grouping attribute in one scan, then each
partition is evaluated with any of the core algorithms, yielding one
:class:`~repro.core.result.TemporalAggregateResult` per group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate
    from repro.relation.relation import TemporalRelation

from repro.core.base import coerce_aggregate
from repro.core.engine import make_evaluator
from repro.core.result import TemporalAggregateResult

__all__ = ["GroupedResult", "grouped_temporal_aggregate"]


class GroupedResult:
    """Per-group temporal aggregate results with dict-like access."""

    def __init__(self, groups: Dict[Any, TemporalAggregateResult]) -> None:
        self._groups = dict(groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[Any]:
        return iter(sorted(self._groups, key=repr))

    def __getitem__(self, group: Any) -> TemporalAggregateResult:
        return self._groups[group]

    def __contains__(self, group: Any) -> bool:
        return group in self._groups

    def groups(self) -> List[Any]:
        """The grouping-attribute values, sorted for stable output."""
        return sorted(self._groups, key=repr)

    def items(self) -> Iterator[Tuple[Any, TemporalAggregateResult]]:
        for group in self.groups():
            yield group, self._groups[group]

    def value_at(self, group: Any, instant: int) -> Any:
        return self._groups[group].value_at(instant)

    def pretty(self, limit_per_group: int = 10) -> str:
        blocks = []
        for group, result in self.items():
            blocks.append(f"== {group!r} ==")
            blocks.append(result.pretty(limit=limit_per_group))
        return "\n".join(blocks)

    def __repr__(self) -> str:
        return f"GroupedResult({len(self._groups)} groups)"


def grouped_temporal_aggregate(
    relation: "TemporalRelation",
    aggregate: "Aggregate | str",
    group_attribute: str,
    value_attribute: Optional[str] = None,
    *,
    strategy: str = "aggregation_tree",
    k: Optional[int] = None,
) -> GroupedResult:
    """GROUP BY ``group_attribute``, then aggregate each group by instant.

    One counted scan partitions the relation; the chosen strategy then
    runs once per partition.  Partitioning preserves input order within
    each group, so a k-ordered relation yields k-ordered partitions and
    the k-ordered tree remains applicable per group.
    """
    aggregate = coerce_aggregate(aggregate)
    if aggregate.needs_value and value_attribute is None:
        raise ValueError(
            f"aggregate {aggregate.name!r} needs a value attribute"
        )

    group_position = relation.schema.position_of(group_attribute)
    extract_value = relation.value_extractor(value_attribute)

    partitions: Dict[Any, list] = {}
    for row in relation.scan():
        key = row.values[group_position]
        partitions.setdefault(key, []).append(
            (row.start, row.end, extract_value(row))
        )

    groups = {}
    for key, triples in partitions.items():
        evaluator = make_evaluator(strategy, aggregate, k=k)
        groups[key] = evaluator.evaluate(triples)
    return GroupedResult(groups)
