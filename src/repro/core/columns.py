"""Flat column snapshots: the native layout of the columnar hot path.

A :class:`ColumnSet` is the page-to-row pipeline's unit of exchange:
two parallel ``array('q')`` timestamp columns plus an optional value
column, with *no* per-row tuple objects anywhere.  Producers are the
batch page decoder (:meth:`repro.storage.heapfile.HeapFile.scan_columns`)
and the in-memory snapshot (:meth:`repro.relation.relation.
TemporalRelation.columns`); consumers are the specialized sweep kernels
(:mod:`repro.core.columnar_sweep`), the time-domain shard workers
(:mod:`repro.core.parallel`) and the shard-result cache's re-sweeps
(:mod:`repro.cache.evaluator`).

``values is None`` means the columns were decoded without touching any
attribute bytes — the COUNT fast path, where the aggregate ignores
values entirely.  ``batches`` records how many batch decodes produced
the columns (one per storage page, or one for a whole in-memory
relation); evaluators fold it into
:attr:`~repro.metrics.counters.OperationCounters.column_batches` so the
flat-column shape claim is checkable next to the
``tuple_materializations`` counter it replaces.

``uid``/``version``/``column_key`` are the snapshot's *identity*: the
producing relation's uid, the relation version the columns were cut
at, and the attribute the value column came from.  They are optional
(anonymous column sets still evaluate everywhere) but required for the
resident execution backend (:mod:`repro.exec.pool`) — a shared-memory
publication is keyed by exactly this triple, so an unidentified
ColumnSet can never be published (and silently falls back to the
copy-on-write path) rather than risking a stale-snapshot reuse.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, List, Optional, Tuple

__all__ = ["ColumnSet", "columns_from_triples"]


class ColumnSet:
    """Parallel (starts, ends, values) columns for one relation snapshot."""

    __slots__ = (
        "starts",
        "ends",
        "values",
        "batches",
        "uid",
        "version",
        "column_key",
        # Weak-referenceable so the resident execution backend can tie
        # a shared-memory publication's lifetime to this snapshot: when
        # the ColumnSet is garbage collected (superseded version, or
        # its relation died), the segments unlink themselves.
        "__weakref__",
    )

    def __init__(
        self,
        starts: "array[int]",
        ends: "array[int]",
        values: Optional[List[Any]] = None,
        *,
        batches: int = 1,
        uid: Optional[int] = None,
        version: Optional[int] = None,
        column_key: str = "",
    ) -> None:
        if values is not None and len(values) != len(starts):
            raise ValueError(
                f"value column length {len(values)} does not match "
                f"{len(starts)} timestamps"
            )
        if len(ends) != len(starts):
            raise ValueError(
                f"end column length {len(ends)} does not match "
                f"{len(starts)} starts"
            )
        self.starts = starts
        self.ends = ends
        self.values = values
        self.batches = batches
        self.uid = uid
        self.version = version
        self.column_key = column_key

    def __len__(self) -> int:
        return len(self.starts)

    def __repr__(self) -> str:
        kind = "timestamps-only" if self.values is None else "valued"
        return (
            f"ColumnSet({len(self.starts)} rows, {kind}, "
            f"batches={self.batches})"
        )


def columns_from_triples(
    triples: Iterable[Tuple[int, int, Any]]
) -> ColumnSet:
    """Decompose a triple stream into one ColumnSet (one batch).

    The compatibility shim for producers that still speak per-row
    tuples; the genuinely zero-tuple producers build their columns
    directly from page bytes or row storage.
    """
    starts = array("q")
    ends = array("q")
    values: List[Any] = []
    append_start = starts.append
    append_end = ends.append
    append_value = values.append
    for start, end, value in triples:
        append_start(start)
        append_end(end)
        append_value(value)
    return ColumnSet(starts, ends, values, batches=1)
