"""Sortedness metrics for temporal relations (paper Section 5.2).

The paper defines two ways to quantify how far a relation is from being
*totally ordered by time* (sorted by start time, ties broken by end
time):

* **k-orderedness** — a relation is *k-ordered* when every tuple is at
  most ``k`` positions away from its position in the totally ordered
  version.  A sorted relation is 0-ordered.  This is the property the
  k-ordered aggregation tree's garbage collector relies on.
* **k-ordered-percentage** — with ``n`` tuples and ``n_i`` of them
  ``i`` positions out of order, the quotient ``Σ i·n_i / (k·n)``,
  ranging from 0 (sorted) towards 1 (maximally disordered for that
  ``k``).  Table 2 of the paper tabulates examples for ``n = 10000``,
  ``k = 100``; :mod:`tests.core.test_ordering_table2` and the
  corresponding bench regenerate them.

All functions operate on sequences of *sort keys* (anything totally
ordered — ints or ``(start, end)`` pairs), so they serve both raw
timestamp lists and :class:`~repro.relation.relation.TemporalRelation`
rows.  Displacements are computed against a *stable* sort, so duplicate
keys keep their relative order and a relation with many identical
timestamps is still 0-ordered when already sorted.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TypeVar

__all__ = [
    "displacements",
    "displacement_histogram",
    "k_orderedness",
    "is_k_ordered",
    "k_ordered_percentage",
    "percentage_from_histogram",
]

Key = TypeVar("Key")


def displacements(keys: Sequence[Key]) -> List[int]:
    """Per-position distance from the stable-sorted position.

    ``displacements(keys)[i]`` is how many positions the element
    currently at position ``i`` must move to reach its place in the
    totally ordered sequence.  Stable: equal keys keep their relative
    order and contribute zero displacement when already adjacent.
    """
    order = sorted(range(len(keys)), key=lambda i: (keys[i], i))
    result = [0] * len(keys)
    for sorted_position, original_position in enumerate(order):
        result[original_position] = abs(sorted_position - original_position)
    return result


def displacement_histogram(keys: Sequence[Key]) -> Dict[int, int]:
    """Map displacement ``i >= 1`` to the count ``n_i`` of tuples moved by it.

    Tuples already in position (displacement 0) are omitted, matching
    the paper's ``n_i`` notation.
    """
    histogram: Dict[int, int] = {}
    for distance in displacements(keys):
        if distance:
            histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def k_orderedness(keys: Sequence[Key]) -> int:
    """The smallest ``k`` for which the sequence is k-ordered.

    0 means totally ordered.  Every sequence of length ``n`` is at
    worst ``(n-1)``-ordered.
    """
    dists = displacements(keys)
    return max(dists, default=0)


def is_k_ordered(keys: Sequence[Key], k: int) -> bool:
    """True when every element is at most ``k`` positions out of place."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return k_orderedness(keys) <= k


def k_ordered_percentage(keys: Sequence[Key], k: int) -> float:
    """The paper's k-ordered-percentage ``Σ i·n_i / (k·n)``.

    ``k`` must be at least the sequence's actual k-orderedness (the
    formula is only defined for valid ``k``).  Sorted input yields 0
    for any positive ``k``; by convention an empty or sorted sequence
    with ``k = 0`` also yields 0.
    """
    n = len(keys)
    dists = displacements(keys)
    actual_k = max(dists, default=0)
    if k < actual_k:
        raise ValueError(
            f"sequence is only {actual_k}-ordered; k={k} is too small"
        )
    if n == 0 or k == 0:
        return 0.0
    return sum(dists) / (k * n)


def percentage_from_histogram(histogram: Dict[int, int], k: int, n: int) -> float:
    """The k-ordered-percentage from a displacement histogram.

    ``Σ i·n_i / (k·n)`` computed directly from ``{i: n_i}``.  Table 2
    of the paper describes its configurations by histogram ("1000 are
    50 places out of order"), and this evaluates the quotient for them
    without constructing a permutation.
    """
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    total_displaced = sum(histogram.values())
    if total_displaced > n:
        raise ValueError("histogram counts exceed the number of tuples")
    if any(i < 1 or i > k for i in histogram):
        raise ValueError("displacements must lie in [1, k]")
    return sum(i * count for i, count in histogram.items()) / (k * n)
