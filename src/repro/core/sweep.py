"""The endpoint sweep (sort-merge) evaluator.

A retrospective ablation: the algorithm the literature settled on
*after* the paper (and what a sort-based engine would run today).
Collect every tuple's two endpoints as events, sort them, and sweep the
timeline once, maintaining the running aggregate of the currently valid
tuples:

* at a tuple's start event the value is **absorbed**;
* one instant past its end the value is **retracted** — which needs
  either an invertible aggregate (COUNT, SUM, AVG, VARIANCE: the paper
  calls these "computed" aggregates) or, for the "selected" aggregates
  MIN and MAX, a lazy-deletion heap of the live values.

Properties, contrasted with the paper's algorithms in
``benchmarks/test_ablation_sweep.py``:

* O(n log n) regardless of input order — like sorting first and running
  the k-ordered tree with k = 1, but in one conceptual phase;
* no tree, no garbage collection; peak memory is the event list (the
  sort's O(n)) plus the live heap for MIN/MAX;
* inherently batch: nothing streams until the sort finishes, which is
  exactly the property the k-ordered tree's windowed GC avoids.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.base import Evaluator, Triple
from repro.core.interval import FOREVER, ORIGIN
from repro.core.result import ConstantInterval, TemporalAggregateResult

__all__ = ["SweepEvaluator"]


class _Reversed:
    """Ordering adaptor turning heapq's min-heap into a max-heap for
    any orderable value (numbers, strings, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class _LazyHeap:
    """Min-heap with deferred deletions, for the MIN/MAX sweep."""

    __slots__ = ("_heap", "_dead", "_largest")

    def __init__(self, largest_first: bool = False) -> None:
        self._heap: List[tuple] = []
        self._dead: dict = {}
        self._largest = largest_first

    def push(self, value: Any) -> None:
        key = _Reversed(value) if self._largest else value
        heapq.heappush(self._heap, (key, value))

    def discard(self, value: Any) -> None:
        self._dead[value] = self._dead.get(value, 0) + 1

    def top(self) -> Any:
        """Current extreme live value, or None when empty."""
        heap = self._heap
        while heap:
            _key, value = heap[0]
            remaining = self._dead.get(value, 0)
            if remaining:
                heapq.heappop(heap)
                if remaining == 1:
                    del self._dead[value]
                else:
                    self._dead[value] = remaining - 1
            else:
                return value
        return None


class SweepEvaluator(Evaluator):
    """Sort all endpoints, sweep once with a running aggregate."""

    name = "sweep"

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        aggregate = self.aggregate
        counters = self.counters

        # Build the event list: (time, kind, value) where kind orders
        # retractions (one past the end) before absorptions at the same
        # instant so states settle before the interval is cut.
        events: List[Tuple[int, int, Any]] = []
        for start, end, value in triples:
            self._check_triple(start, end)
            counters.tuples += 1
            events.append((start, 1, value))
            if end < FOREVER:
                events.append((end + 1, 0, value))
        events.sort(key=lambda event: (event[0], event[1]))
        # Each event is a freshly built per-event tuple object — the
        # cost the columnar pipeline exists to avoid (its counterpart
        # keeps this counter at zero).
        counters.tuple_materializations += len(events)
        self.space.allocate(len(events))

        use_heap = not aggregate.invertible
        heap: Optional[_LazyHeap] = None
        if use_heap:
            heap = _LazyHeap(largest_first=(aggregate.name == "max"))

        rows: List[ConstantInterval] = []
        state = aggregate.identity()
        live = 0
        cursor = ORIGIN
        index = 0
        total = len(events)
        while index < total:
            time = events[index][0]
            if time > cursor:
                rows.append(
                    ConstantInterval(
                        cursor, time - 1, self._current_value(state, live, heap)
                    )
                )
                counters.emitted += 1
                cursor = time
            # Apply every event at this instant.
            while index < total and events[index][0] == time:
                _time, kind, value = events[index]
                counters.node_visits += 1
                if kind == 1:
                    live += 1
                    if use_heap:
                        heap.push(value)
                    else:
                        state = aggregate.absorb(state, value)
                    counters.aggregate_updates += 1
                else:
                    live -= 1
                    if use_heap:
                        heap.discard(value)
                    elif live == 0:
                        state = aggregate.identity()
                    else:
                        state = aggregate.retract(state, value)
                    counters.aggregate_updates += 1
                index += 1
        rows.append(
            ConstantInterval(
                cursor, FOREVER, self._current_value(state, live, heap)
            )
        )
        counters.emitted += 1
        self.space.free(self.space.live_nodes)
        return TemporalAggregateResult(rows, check=False)

    def _current_value(self, state: Any, live: int, heap: Optional[_LazyHeap]):
        if heap is not None:
            return heap.top()
        if live == 0:
            return self.aggregate.finalize(self.aggregate.identity())
        return self.aggregate.finalize(state)
