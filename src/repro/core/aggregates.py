"""Decomposable aggregate functions.

All three evaluation algorithms in the paper maintain *partial aggregate
state* — at linked-list cells, at aggregation-tree nodes, or in Tuma's
aggregation sets — and combine partial states when emitting results (the
tree algorithms merge states along the root-to-leaf path during the
final depth-first traversal, Section 5.1).  That only works for
aggregates whose state forms a commutative monoid:

* ``identity()``      — state of an empty group,
* ``absorb(s, v)``    — fold one tuple's attribute value into a state,
* ``merge(a, b)``     — combine two disjoint groups' states,
* ``finalize(s)``     — turn a state into the reported value.

COUNT, SUM, MIN, MAX and AVG — the aggregates the paper discusses — all
qualify, as do VARIANCE/STDDEV via the ``(n, Σv, Σv²)`` decomposition
(an extension beyond the paper).  COUNT DISTINCT does *not* decompose
into bounded state and is deliberately absent; the paper defers
duplicate handling to a pre-sort (Section 7).

Each aggregate also reports the byte cost of one state under the
paper's accounting model (Section 6.2): COUNT stores a 4-byte counter;
SUM, MIN and MAX store 4 bytes plus an empty marker; AVG stores 8 bytes
(sum and count).  The space tracker in :mod:`repro.metrics.space` uses
these numbers to reproduce Figure 9.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable

__all__ = [
    "Aggregate",
    "AnyAggregate",
    "EveryAggregate",
    "CountAggregate",
    "SumAggregate",
    "MinAggregate",
    "MaxAggregate",
    "AvgAggregate",
    "VarianceAggregate",
    "StdDevAggregate",
    "AGGREGATES",
    "UnknownAggregateError",
    "get_aggregate",
    "register_aggregate",
]


class UnknownAggregateError(KeyError):
    """Raised when looking up an aggregate name that is not registered."""


class Aggregate:
    """Base class for decomposable aggregates.

    Subclasses define the monoid operations and two bits of metadata:

    * ``name`` — the registry / TSQL2 keyword (lower case);
    * ``state_bytes`` — bytes of one partial state under the Section 6.2
      accounting model, used for the memory experiments;
    * ``needs_value`` — False for COUNT, which ignores the attribute.
    """

    name: str = "abstract"
    state_bytes: int = 0
    needs_value: bool = True

    #: True when :meth:`retract` is implemented — COUNT/SUM/AVG/VAR can
    #: remove a previously absorbed value (group: not just a monoid),
    #: which sweep evaluation and index deletion rely on.  MIN/MAX
    #: cannot (removing the current minimum loses information).
    invertible: bool = False

    def identity(self) -> Any:
        """State of an empty group."""
        raise NotImplementedError

    def absorb(self, state: Any, value: Any) -> Any:
        """Fold one tuple's attribute value into ``state``."""
        raise NotImplementedError

    def retract(self, state: Any, value: Any) -> Any:
        """Remove one previously absorbed value (invertible aggregates
        only — see :attr:`invertible`)."""
        raise NotImplementedError(
            f"aggregate {self.name!r} is not invertible"
        )

    def merge(self, left: Any, right: Any) -> Any:
        """Combine the states of two disjoint groups."""
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        """Reported value for ``state`` (None for empty value-aggregates)."""
        raise NotImplementedError

    def is_identity(self, state: Any) -> bool:
        """True when ``state`` carries no absorbed tuples."""
        return state == self.identity()

    def fold(self, values: Iterable[Any]) -> Any:
        """Absorb an iterable of values into a fresh state (convenience)."""
        state = self.identity()
        for value in values:
            state = self.absorb(state, value)
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CountAggregate(Aggregate):
    """COUNT — number of tuples overlapping each constant interval."""

    name = "count"
    state_bytes = 4
    needs_value = False
    invertible = True

    def identity(self) -> int:
        return 0

    def absorb(self, state: int, value: Any) -> int:
        return state + 1

    def retract(self, state: int, value: Any) -> int:
        return state - 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int) -> int:
        return state


class SumAggregate(Aggregate):
    """SUM — None over empty groups, like SQL's NULL."""

    name = "sum"
    state_bytes = 4  # 4-byte value plus an empty-marker bit (Section 6.2)
    invertible = True

    def identity(self) -> None:
        return None

    def absorb(self, state: "float | None", value: float) -> float:
        if state is None:
            return value
        return state + value

    def retract(self, state: "float | None", value: float) -> float:
        """Numeric inverse only: retracting the last value leaves 0,
        not the empty marker — callers tracking emptiness themselves
        (the sweep evaluator does) must reset to identity at count 0."""
        if state is None:
            raise ValueError("cannot retract from an empty SUM state")
        return state - value

    def merge(self, left: "float | None", right: "float | None") -> "float | None":
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def finalize(self, state: "float | None") -> "float | None":
        return state


class MinAggregate(Aggregate):
    """MIN — smallest attribute value; None over empty groups."""

    name = "min"
    state_bytes = 4

    def identity(self) -> None:
        return None

    def absorb(self, state: "Any | None", value: Any) -> Any:
        if state is None or value < state:
            return value
        return state

    def merge(self, left: "Any | None", right: "Any | None") -> "Any | None":
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right

    def finalize(self, state: "Any | None") -> "Any | None":
        return state


class MaxAggregate(Aggregate):
    """MAX — largest attribute value; None over empty groups."""

    name = "max"
    state_bytes = 4

    def identity(self) -> None:
        return None

    def absorb(self, state: "Any | None", value: Any) -> Any:
        if state is None or value > state:
            return value
        return state

    def merge(self, left: "Any | None", right: "Any | None") -> "Any | None":
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right

    def finalize(self, state: "Any | None") -> "Any | None":
        return state


class AvgAggregate(Aggregate):
    """AVG — arithmetic mean, decomposed as a (sum, count) pair."""

    name = "avg"
    state_bytes = 8  # 4 bytes for the sum, 4 for the count (Section 6.2)
    invertible = True

    def identity(self) -> tuple:
        return (0, 0)

    def absorb(self, state: tuple, value: float) -> tuple:
        return (state[0] + value, state[1] + 1)

    def retract(self, state: tuple, value: float) -> tuple:
        if state[1] <= 0:
            raise ValueError("cannot retract from an empty AVG state")
        return (state[0] - value, state[1] - 1)

    def merge(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple) -> "float | None":
        total, count = state
        if count == 0:
            return None
        return total / count


class VarianceAggregate(Aggregate):
    """Population variance via the (n, Σv, Σv²) decomposition.

    An extension beyond the paper, included to show the algorithms are
    generic over any decomposable aggregate.
    """

    name = "variance"
    state_bytes = 12
    invertible = True
    _min_count = 1

    def identity(self) -> tuple:
        return (0, 0.0, 0.0)

    def absorb(self, state: tuple, value: float) -> tuple:
        count, total, squares = state
        return (count + 1, total + value, squares + value * value)

    def retract(self, state: tuple, value: float) -> tuple:
        count, total, squares = state
        if count <= 0:
            raise ValueError("cannot retract from an empty VARIANCE state")
        return (count - 1, total - value, squares - value * value)

    def merge(self, left: tuple, right: tuple) -> tuple:
        return (
            left[0] + right[0],
            left[1] + right[1],
            left[2] + right[2],
        )

    def finalize(self, state: tuple) -> "float | None":
        count, total, squares = state
        if count < self._min_count:
            return None
        mean = total / count
        # Guard against tiny negative values from floating-point error.
        return max(0.0, squares / count - mean * mean)


class StdDevAggregate(VarianceAggregate):
    """Population standard deviation (square root of the variance)."""

    name = "stddev"

    def finalize(self, state: tuple) -> "float | None":
        variance = super().finalize(state)
        if variance is None:
            return None
        return math.sqrt(variance)


class AnyAggregate(Aggregate):
    """ANY/SOME — True when some tuple's value is truthy; NULL when the
    group is empty.

    Decomposed as a ``(truthy, total)`` counter pair rather than a bare
    boolean, which buys exact invertibility (retract works, so the
    sweep evaluator and index deletion apply) at 8 modeled bytes.
    """

    name = "any"
    state_bytes = 8
    invertible = True

    def identity(self) -> tuple:
        return (0, 0)

    def absorb(self, state: tuple, value: Any) -> tuple:
        return (state[0] + (1 if value else 0), state[1] + 1)

    def retract(self, state: tuple, value: Any) -> tuple:
        if state[1] <= 0:
            raise ValueError(f"cannot retract from an empty {self.name.upper()} state")
        return (state[0] - (1 if value else 0), state[1] - 1)

    def merge(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple) -> "bool | None":
        truthy, total = state
        if total == 0:
            return None
        return truthy > 0


class EveryAggregate(AnyAggregate):
    """EVERY/ALL — True when every tuple's value is truthy; NULL when
    the group is empty.  Same counter decomposition as ANY."""

    name = "every"

    def finalize(self, state: tuple) -> "bool | None":
        truthy, total = state
        if total == 0:
            return None
        return truthy == total


AGGREGATES: Dict[str, Callable[[], Aggregate]] = {}


def register_aggregate(factory: Callable[[], Aggregate]) -> Callable[[], Aggregate]:
    """Register an aggregate factory under its ``name`` attribute."""
    instance = factory()
    AGGREGATES[instance.name] = factory
    return factory


for _factory in (
    CountAggregate,
    SumAggregate,
    MinAggregate,
    MaxAggregate,
    AvgAggregate,
    VarianceAggregate,
    StdDevAggregate,
    AnyAggregate,
    EveryAggregate,
):
    register_aggregate(_factory)


def get_aggregate(name: str) -> Aggregate:
    """Instantiate the aggregate registered under ``name``.

    Accepts any capitalisation (TSQL2 keywords are case-insensitive).
    """
    key = name.strip().lower()
    try:
        factory = AGGREGATES[key]
    except KeyError:
        known = ", ".join(sorted(AGGREGATES))
        raise UnknownAggregateError(
            f"unknown aggregate {name!r}; known aggregates: {known}"
        ) from None
    return factory()
