"""An analytic cost model for the evaluation strategies.

Section 6.3 gives the optimizer *rules*; this module gives it
*numbers*: closed-form estimates of each algorithm's abstract work
(node visits + splits + state updates — the same quantity
:class:`~repro.metrics.counters.OperationCounters` measures) and peak
structure size, derived from the relation statistics the planner
already collects.  The estimates deliberately mirror the paper's
complexity analysis:

* ``m`` constant intervals ≈ unique timestamps + 1;
* linked list — each tuple walks to its position and updates the cells
  it covers: ~``n·m/2`` visits plus coverage updates (O(n²));
* aggregation tree — ~``n·(log₂ m + c)`` on random order, degenerating
  toward ``n·m/2``-ish on sorted order (the Figure 7 pathology),
  interpolated by the measured k-orderedness;
* k-ordered tree — tree work on a window of ``2k+1`` tuples plus the
  un-collectable residue long-lived tuples leave behind;
* two-pass — a binary search per tuple plus one update per overlapped
  constant interval (dominated by coverage, like the list);
* sweep — the event sort, ``2n·log₂(2n)``;
* balanced tree — boundary collection plus ``n·log₂ m`` updates.

Coverage (how many constant intervals an average tuple overlaps) is
estimated from the long-lived fraction: a long-lived tuple covers
~half the timeline (the Table 3 20–80 % draw averages 50 %), a
short-lived one a handful of intervals.

:func:`rank_strategies` orders the single-scan strategies by estimated
work; `tests/core/test_cost_model.py` checks those rankings against
*measured* work on the paper's workload regimes, which is the honest
test of a cost model: not absolute accuracy, but choosing right.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relation.relation import RelationStatistics

__all__ = [
    "estimate_constant_intervals",
    "estimate_coverage",
    "estimate_work",
    "estimate_peak_nodes",
    "rank_strategies",
    "COSTED_STRATEGIES",
]

#: Strategies the model can price.
COSTED_STRATEGIES = (
    "linked_list",
    "aggregation_tree",
    "kordered_tree",
    "two_pass",
    "sweep",
    "balanced_tree",
)

#: Constant-interval work per touched node beyond the pure visit
#: (splits, state updates); a fitted-by-inspection small constant.
_TOUCH = 2.0


def estimate_constant_intervals(statistics: "RelationStatistics") -> float:
    """m ≈ unique finite timestamps + 1 (Figure 2's counting)."""
    return max(1.0, statistics.unique_timestamps + 1.0)


def estimate_coverage(statistics: "RelationStatistics") -> float:
    """Average constant intervals one tuple overlaps.

    Long-lived tuples (Table 3: 20–80 % of the lifespan, mean 50 %)
    cover ~m/2; short-lived ones cover a small constant number.
    """
    m = estimate_constant_intervals(statistics)
    f = statistics.long_lived_fraction
    short_coverage = min(m, 3.0)
    return f * (m / 2.0) + (1.0 - f) * short_coverage


def _tree_depth(statistics: "RelationStatistics") -> float:
    """Effective aggregation-tree depth: log-ish for random input,
    linear-ish for (nearly) sorted input, interpolated by how far the
    measured k-orderedness is from fully shuffled."""
    n = max(1, statistics.tuple_count)
    m = estimate_constant_intervals(statistics)
    balanced_depth = math.log2(m + 1.0) + 1.0
    degenerate_depth = m / 2.0
    # k == n-1 means fully shuffled (balanced); k == 0 means sorted
    # (degenerate).  Interpolate on a log scale: small k is already bad.
    disorder = min(1.0, math.log2(statistics.k + 2.0) / math.log2(n + 2.0))
    return degenerate_depth + (balanced_depth - degenerate_depth) * disorder


def estimate_work(
    strategy: str, statistics: "RelationStatistics", k: Optional[int] = None
) -> float:
    """Predicted abstract work (the OperationCounters.total_work scale)."""
    n = max(1, statistics.tuple_count)
    m = estimate_constant_intervals(statistics)
    coverage = estimate_coverage(statistics)

    if strategy == "linked_list":
        # Walk to the tuple's end position (~m/2 of the current list on
        # average) and update every covered cell.
        return n * (m / 4.0 + coverage * _TOUCH)
    if strategy == "aggregation_tree":
        return n * (_tree_depth(statistics) + _TOUCH) * 2.0
    if strategy == "kordered_tree":
        window = 2 * (k if k is not None else max(1, statistics.k)) + 1
        # Live tree ≈ the window plus long-lived residue.
        live = min(
            m,
            window + statistics.long_lived_fraction * n,
        )
        depth = math.log2(live + 2.0) + 1.0
        # GC re-walks the leftmost path once per tuple.
        return n * (2.0 * depth + _TOUCH) * 2.0
    if strategy == "two_pass":
        return n * (math.log2(m + 1.0) + coverage * _TOUCH)
    if strategy == "sweep":
        events = 2.0 * n
        return events * math.log2(events + 1.0)
    if strategy == "balanced_tree":
        return n * (math.log2(m + 1.0) + _TOUCH) * 2.0 + m
    raise ValueError(f"no cost formula for strategy {strategy!r}")


def estimate_peak_nodes(
    strategy: str, statistics: "RelationStatistics", k: Optional[int] = None
) -> float:
    """Predicted peak structure size in nodes (the Figure 9 scale)."""
    n = max(1, statistics.tuple_count)
    m = estimate_constant_intervals(statistics)
    if strategy == "linked_list":
        return m
    if strategy in ("aggregation_tree", "balanced_tree"):
        return 2.0 * m - 1.0
    if strategy == "kordered_tree":
        window = 2 * (k if k is not None else max(1, statistics.k)) + 1
        return min(2.0 * m - 1.0, 4.0 * window + 2.0 * statistics.long_lived_fraction * n)
    if strategy == "two_pass":
        return m
    if strategy == "sweep":
        return 2.0 * n
    raise ValueError(f"no space formula for strategy {strategy!r}")


def rank_strategies(
    statistics: "RelationStatistics",
    k: Optional[int] = None,
    strategies: Tuple[str, ...] = COSTED_STRATEGIES,
) -> List[Tuple[str, float]]:
    """Strategies ordered by estimated work, cheapest first."""
    priced = [
        (strategy, estimate_work(strategy, statistics, k=k))
        for strategy in strategies
    ]
    priced.sort(key=lambda pair: pair[1])
    return priced


def estimates_table(
    statistics: "RelationStatistics", k: Optional[int] = None
) -> Dict[str, Dict[str, float]]:
    """Work and space estimates for every costed strategy (for EXPLAIN
    style displays and debugging the model)."""
    return {
        strategy: {
            "work": estimate_work(strategy, statistics, k=k),
            "peak_nodes": estimate_peak_nodes(strategy, statistics, k=k),
        }
        for strategy in COSTED_STRATEGIES
    }
