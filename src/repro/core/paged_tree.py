"""Limited-main-memory aggregation tree (paper Sections 5.1 and 7).

The plain aggregation tree holds every constant interval in memory,
which Section 7 calls "excessive" for large unordered relations.  The
paper sketches the fix: *"it is simple to mark a parent as pointing to
a subtree not currently in memory.  Simply accumulate the tuples which
would overlap this region and process them later"* — and names limited
main memory implementations an area for future research.  This module
implements that design:

* the evaluator builds a normal aggregation tree until its live node
  count would exceed ``node_budget``;
* it then **evicts** a large subtree: the subtree is serialised to a
  spill file and replaced by a 1-node *stub* that remembers the
  region's interval and carries a partial state of its own;
* later tuples that completely cover a stub fold into the stub's state
  as usual; tuples that partially overlap it are **accumulated** —
  clipped to the region and appended to the stub's pending list, which
  itself spills to disk in chunks;
* the final traversal materialises each stub *in time order*: the
  spilled subtree is reloaded, its pending tuples are replayed into it
  (still under the budget, so a huge region spills again into
  sub-regions), and the replayed subtree is pushed back onto the same
  explicit traversal stack.  Traversal **consumes** nodes — each is
  freed as it is popped — so peak live nodes stay near the budget even
  while regions are being rematerialised.

The output is exactly the plain tree's; ``metrics`` records evictions,
spilled bytes, reloads and replay depth so benchmarks can weigh the
memory/IO trade discussed in Section 6.3.
"""

from __future__ import annotations

import pickle
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Tuple

from repro.core.aggregation_tree import AggregationTreeEvaluator, TreeNode
from repro.core.base import Triple
from repro.core.result import ConstantInterval, TemporalAggregateResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate
    from repro.metrics.counters import OperationCounters
    from repro.metrics.space import SpaceTracker

__all__ = [
    "PagedAggregationTreeEvaluator",
    "SpillMetrics",
    "MIN_NODE_BUDGET",
    "encode_subtree",
    "decode_subtree",
    "subtree_size",
]

#: Below this the tree cannot do useful work between evictions.
MIN_NODE_BUDGET = 16

#: Pending tuples buffered in memory per stub before a chunk spills.
_PENDING_CHUNK = 256


@dataclass(slots=True)
class SpillMetrics:
    """Disk activity of one paged evaluation (all replay levels)."""

    evictions: int = 0
    spilled_subtree_nodes: int = 0
    spilled_bytes: int = 0
    spilled_tuples: int = 0
    reloads: int = 0
    replayed_tuples: int = 0
    deepest_replay: int = 0


class _SpillFile:
    """Append-only blob store on an anonymous temporary file."""

    __slots__ = ("_handle", "_offset")

    def __init__(self) -> None:
        self._handle = tempfile.TemporaryFile(prefix="repro_spill_")
        self._offset = 0

    def save(self, payload: Any) -> Tuple[int, int]:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.seek(self._offset)
        self._handle.write(blob)
        ref = (self._offset, len(blob))
        self._offset += len(blob)
        return ref

    def load(self, ref: Tuple[int, int]) -> Any:
        offset, length = ref
        self._handle.seek(offset)
        return pickle.loads(self._handle.read(length))


class _StubNode(TreeNode):
    """A leaf standing in for an evicted (spilled) subtree.

    Carries its own spill-file reference so any traversal can
    rematerialise it, and a replay depth for the metrics.
    """

    __slots__ = ("spill", "subtree_ref", "pending_refs", "pending_buffer", "depth")

    def __init__(
        self, start: int, end: int, state: Any, spill: _SpillFile, subtree_ref, depth: int
    ) -> None:
        super().__init__(start, end, state)
        self.spill = spill
        self.subtree_ref = subtree_ref
        self.pending_refs: List[Tuple[int, int]] = []
        self.pending_buffer: List[Triple] = []
        self.depth = depth


def _encode_subtree(node: TreeNode) -> List[tuple]:
    """Preorder encoding of a subtree as (start, end, state, internal)
    records.  Iterative: degenerate (sorted-input) subtrees are
    thousands of levels deep.  Stubs cannot occur inside: eviction only
    targets stub-free subtrees."""
    out: List[tuple] = []
    stack = [node]
    while stack:
        current = stack.pop()
        internal = current.left is not None
        out.append((current.start, current.end, current.state, internal))
        if internal:
            stack.append(current.right)
            stack.append(current.left)
    return out


def _decode_subtree(encoded: List[tuple]) -> TreeNode:
    """Rebuild a subtree from its preorder encoding (iterative)."""
    items = iter(encoded)
    start, end, state, internal = next(items)
    root = TreeNode(start, end, state)
    # Stack of (parent, which-child-comes-next) slots awaiting nodes.
    slots: List[tuple] = [(root, 0)] if internal else []
    while slots:
        parent, which = slots.pop()
        start, end, state, internal = next(items)
        node = TreeNode(start, end, state)
        if which == 0:
            parent.left = node
            slots.append((parent, 1))
        else:
            parent.right = node
        if internal:
            slots.append((node, 0))
    return root


def _subtree_size(node: Optional[TreeNode]) -> int:
    count = 0
    stack = [node] if node is not None else []
    while stack:
        current = stack.pop()
        count += 1
        if current.left is not None:
            stack.append(current.left)
            stack.append(current.right)
    return count


#: Public aliases: the checkpoint layer (:mod:`repro.storage.checkpoint`)
#: serialises evaluator trees with exactly the spill codec, so a
#: journaled checkpoint and a spilled subtree share one wire format.
encode_subtree = _encode_subtree
decode_subtree = _decode_subtree
subtree_size = _subtree_size


def _contains_stub(node: TreeNode) -> bool:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, _StubNode):
            return True
        if current.left is not None:
            stack.append(current.left)
            stack.append(current.right)
    return False


class PagedAggregationTreeEvaluator(AggregationTreeEvaluator):
    """Aggregation tree under a hard node budget, spilling to disk."""

    name = "paged_tree"

    def __init__(
        self,
        aggregate: "Aggregate | str",
        node_budget: int = 4096,
        *,
        counters: "Optional[OperationCounters]" = None,
        space: "Optional[SpaceTracker]" = None,
        metrics: Optional[SpillMetrics] = None,
        _depth: int = 0,
    ) -> None:
        if node_budget < MIN_NODE_BUDGET:
            raise ValueError(f"node budget must be at least {MIN_NODE_BUDGET}")
        super().__init__(aggregate, counters=counters, space=space)
        self.node_budget = node_budget
        self.metrics = metrics if metrics is not None else SpillMetrics()
        self._depth = _depth
        self._spill: Optional[_SpillFile] = None

    @classmethod
    def from_partial_tree(
        cls,
        donor: AggregationTreeEvaluator,
        node_budget: int,
    ) -> "PagedAggregationTreeEvaluator":
        """Adopt a partially built plain tree for mid-flight degradation.

        Runtime budget enforcement (:mod:`repro.exec.budget`) trips
        while an in-memory tree is mid-build; rather than restart on
        the spill path, the paged evaluator takes over the donor's
        root, counters, and space tracker in place — every insert
        already done is kept — and immediately evicts down toward the
        node budget.  The donor is left empty (its tree now belongs to
        the paged evaluator).
        """
        paged = cls(
            donor.aggregate,
            max(MIN_NODE_BUDGET, node_budget),
            counters=donor.counters,
            space=donor.space,
        )
        paged.root = donor.root
        donor.root = None
        # Evict until under budget or no stub-free subtree remains;
        # each pass spills the root's larger child, so progress is
        # monotone in live nodes.
        while paged.space.live_nodes > paged.node_budget:
            before = paged.space.live_nodes
            paged._evict()
            if paged.space.live_nodes == before:
                break
        return paged

    # ------------------------------------------------------------------
    # Insertion under the budget
    # ------------------------------------------------------------------

    def insert(self, start: int, end: int, value: Any) -> None:
        """Insert with the plain-tree descent, diverted at stubs."""
        if self.root is None:
            self.root = self._new_root()
        aggregate = self.aggregate
        counters = self.counters
        stack: List[TreeNode] = [self.root]
        while stack:
            node = stack.pop()
            counters.node_visits += 1
            if start <= node.start and node.end <= end:
                node.state = aggregate.absorb(node.state, value)
                counters.aggregate_updates += 1
                continue
            if isinstance(node, _StubNode):
                # Partial overlap with an evicted region: accumulate the
                # clipped tuple for later replay (the paper's sketch).
                clipped = (max(start, node.start), min(end, node.end), value)
                node.pending_buffer.append(clipped)
                self.metrics.spilled_tuples += 1
                if len(node.pending_buffer) >= _PENDING_CHUNK:
                    self._flush_pending(node)
                continue
            if node.left is None:
                self._split_leaf(node, start, end)
            left = node.left
            right = node.right
            if right is not None and right.start <= end and start <= right.end:
                stack.append(right)
            if left is not None and left.start <= end and start <= left.end:
                stack.append(left)
        if self.space.live_nodes > self.node_budget:
            self._evict()

    def _flush_pending(self, stub: _StubNode) -> None:
        ref = stub.spill.save(stub.pending_buffer)
        stub.pending_refs.append(ref)
        self.metrics.spilled_bytes += ref[1]
        stub.pending_buffer = []

    def _spill_file(self) -> _SpillFile:
        if self._spill is None:
            self._spill = _SpillFile()
        return self._spill

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _evict(self) -> None:
        """Replace the root's larger stub-free child with a stub."""
        root = self.root
        if root is None or root.left is None:
            return
        victims = []
        for child_name in ("left", "right"):
            child = getattr(root, child_name)
            if not _contains_stub(child):
                size = _subtree_size(child)
                if size > 1:
                    victims.append((size, child_name, child))
        if not victims:
            # Both children are stubs (or single leaves): the tree can
            # no longer grow past the root split, so nothing to evict.
            return
        size, child_name, child = max(victims, key=lambda v: v[0])
        spill = self._spill_file()
        ref = spill.save(_encode_subtree(child))
        stub = _StubNode(
            child.start,
            child.end,
            self.aggregate.identity(),
            spill,
            ref,
            depth=self._depth + 1,
        )
        setattr(root, child_name, stub)
        self.space.free(size - 1)  # the stub itself stays live
        self.metrics.evictions += 1
        self.metrics.spilled_subtree_nodes += size
        self.metrics.spilled_bytes += ref[1]
        from repro.analysis import invariants  # deferred: avoid import cycle

        if invariants.invariants_enabled() and self._depth == 0:
            # Page accounting must match the tracker after every
            # eviction, or budget enforcement is built on sand.  Only
            # the top-level evaluator owns the tracker exclusively:
            # replayers share it while the outer traversal still holds
            # live nodes, so their structure is a strict subset.
            invariants.verify_space_accounting(self, when="eviction")

    # ------------------------------------------------------------------
    # Traversal with iterative rematerialisation
    # ------------------------------------------------------------------

    def _replay_stub(self, stub: _StubNode) -> TreeNode:
        """Reload a spilled region and fold its pending tuples back in.

        Returns the replayed subtree root (which may itself contain
        fresh, deeper stubs if the region spilled again under the
        budget).  Nodes are accounted in the shared space tracker.
        """
        self.metrics.reloads += 1
        self.metrics.deepest_replay = max(self.metrics.deepest_replay, stub.depth)
        subtree = _decode_subtree(stub.spill.load(stub.subtree_ref))
        replayer = PagedAggregationTreeEvaluator(
            self.aggregate,
            self.node_budget,
            counters=self.counters,
            space=self.space,
            metrics=self.metrics,
            _depth=stub.depth,
        )
        replayer.root = subtree
        self.space.allocate(_subtree_size(subtree))
        for ref in stub.pending_refs:
            for start, end, value in stub.spill.load(ref):
                self.metrics.replayed_tuples += 1
                replayer.insert(start, end, value)
        for start, end, value in stub.pending_buffer:
            self.metrics.replayed_tuples += 1
            replayer.insert(start, end, value)
        return replayer.root

    def _traverse_consuming(self, inherited: Any) -> List[ConstantInterval]:
        """In-order emission; frees each node as it is consumed and
        rematerialises stubs onto the same explicit stack (no
        recursion: degenerate regions can nest thousands deep)."""
        aggregate = self.aggregate
        rows: List[ConstantInterval] = []
        root = self.root if self.root is not None else self._new_root()
        stack: List[tuple] = [(root, inherited)]
        while stack:
            node, acc = stack.pop()
            state = aggregate.merge(acc, node.state)
            self.space.free(1)
            if isinstance(node, _StubNode):
                replayed = self._replay_stub(node)
                stack.append((replayed, state))
                continue
            if node.left is None:
                rows.append(
                    ConstantInterval(node.start, node.end, aggregate.finalize(state))
                )
                self.counters.emitted += 1
                continue
            stack.append((node.right, state))
            stack.append((node.left, state))
        self.root = None  # the tree was consumed
        return rows

    def traverse(self) -> TemporalAggregateResult:
        """Emit all constant intervals.  Unlike the in-memory tree this
        CONSUMES the structure (nodes are freed as they are emitted)."""
        rows = self._traverse_consuming(self.aggregate.identity())
        return TemporalAggregateResult(rows, check=False)

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        self.root = None
        self.space.reset()
        self._spill = None
        self.build(triples)
        return self.traverse()
