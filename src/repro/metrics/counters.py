"""Operation counters for algorithm instrumentation.

Wall-clock comparisons in pure Python say little about the paper's
*algorithmic* claims, so every evaluator in :mod:`repro.core` can be
handed an :class:`OperationCounters` object and will tally the abstract
operations that dominate its running time:

* ``tuples`` — input tuples processed (all algorithms scan once; the
  two-pass baseline reports double),
* ``node_visits`` — tree nodes or list cells touched while locating
  and updating constant intervals (the paper's O(n²) vs O(n·log n)
  distinction shows up here, machine-independently),
* ``splits`` — constant intervals split in two,
* ``aggregate_updates`` — partial-state absorptions,
* ``gc_passes`` / ``nodes_collected`` — garbage-collection activity of
  the k-ordered tree,
* ``emitted`` — result rows produced,
* ``cache_hits`` / ``cache_misses`` / ``cache_evictions`` /
  ``cache_dirty_shards`` — shard-result-cache activity
  (:mod:`repro.cache`): served-from-cache calls, full recomputes,
  LRU/budget evictions, and shards re-swept on the append delta path,
* ``journal_records`` / ``journal_syncs`` — write-ahead journal
  activity (:mod:`repro.storage.journal`): records written and
  durability barriers issued,
* ``checkpoints_written`` — evaluator state snapshots journaled by
  :mod:`repro.storage.checkpoint`,
* ``records_replayed`` — journal records parsed during crash recovery
  (:mod:`repro.storage.recovery`),
* ``tuple_materializations`` — per-row or per-event Python tuple
  objects the evaluation pipeline built *between* the input pages and
  the emitted result rows (decoded row tuples entering an evaluator,
  event tuples built by the object sweep).  The columnar end-to-end
  path (:meth:`HeapFile.scan_columns` / :meth:`TemporalRelation.columns`
  feeding :meth:`ColumnarSweepEvaluator.evaluate_columns`) keeps this
  at exactly zero — the shape claim ``BENCH_columnar.json`` records,
* ``column_batches`` — whole-page (or whole-relation) batch decodes
  performed on the columnar path; the flat-column replacement for the
  per-row work ``tuple_materializations`` counts,
* ``pool_forks`` — worker processes forked by the resident execution
  pool (:mod:`repro.exec.pool`).  The pool's hot-path proof: this
  equals the pool width (plus any crash respawns), never the statement
  count — forks happen once at pool start, not per query,
* ``worker_respawns`` — resident workers respawned after a crash or
  hang (each respawn also counts one ``pool_forks``),
* ``pool_shards`` — shard sweeps executed inside resident workers,
* ``segments_published`` / ``segments_reclaimed`` — shared-memory
  column segments created for (relation uid, version) snapshots and
  segments unlinked on release/GC/shutdown,
* ``coalesced_statements`` — served statements that joined an
  identical in-flight execution (single-flight coalescing in
  :mod:`repro.serve.scheduler`) instead of running their own sweep.

Counters are plain ints on a slotted object, cheap enough to leave on
even in benchmarks that measure wall-clock.

**Threads.**  A single :class:`OperationCounters` is *not* safe to
increment from several threads: ``counters.tuples += 1`` is a
read-modify-write and increments race (the serving layer runs many
sessions on a worker pool).  :class:`ThreadLocalCounters` is the
concurrent aggregation point: each thread increments its own private
:class:`OperationCounters` (:meth:`ThreadLocalCounters.local`, no lock
on the hot path) and :meth:`ThreadLocalCounters.merged` folds every
thread's tally into one exact total under a lock.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["OperationCounters", "ThreadLocalCounters"]


class OperationCounters:
    """Mutable tally of the abstract operations an evaluator performs."""

    __slots__ = (
        "tuples",
        "node_visits",
        "splits",
        "aggregate_updates",
        "gc_passes",
        "nodes_collected",
        "emitted",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_dirty_shards",
        "journal_records",
        "journal_syncs",
        "checkpoints_written",
        "records_replayed",
        "tuple_materializations",
        "column_batches",
        "pool_forks",
        "worker_respawns",
        "pool_shards",
        "segments_published",
        "segments_reclaimed",
        "coalesced_statements",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.tuples = 0
        self.node_visits = 0
        self.splits = 0
        self.aggregate_updates = 0
        self.gc_passes = 0
        self.nodes_collected = 0
        self.emitted = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.cache_dirty_shards = 0
        self.journal_records = 0
        self.journal_syncs = 0
        self.checkpoints_written = 0
        self.records_replayed = 0
        self.tuple_materializations = 0
        self.column_batches = 0
        self.pool_forks = 0
        self.worker_respawns = 0
        self.pool_shards = 0
        self.segments_published = 0
        self.segments_reclaimed = 0
        self.coalesced_statements = 0

    def snapshot(self) -> Dict[str, int]:
        """An immutable dict view for reports and assertions."""
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "OperationCounters") -> None:
        """Accumulate another counter set into this one."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def total_work(self) -> int:
        """A single machine-independent cost figure (visits + updates)."""
        return self.node_visits + self.aggregate_updates + self.splits

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"OperationCounters({parts})"


class ThreadLocalCounters:
    """Per-thread :class:`OperationCounters` with an exact locked merge.

    The increment path stays lock-free: each thread gets (and reuses)
    its own private counter object via :meth:`local`, so evaluators
    keep doing plain ``counters.field += 1`` with no contention.  Only
    registration of a *new* thread's counters and the cross-thread
    :meth:`merged` / :meth:`reset` operations take the lock.  Totals
    are exact: a counter object is registered before any increment can
    land on it, and ``merged`` folds a stable snapshot of the registry.
    """

    __slots__ = ("_lock", "_registry", "_slot")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registry: List[OperationCounters] = []
        self._slot = threading.local()

    def local(self) -> OperationCounters:
        """This thread's private counter set (created on first touch)."""
        counters = getattr(self._slot, "counters", None)
        if counters is None:
            counters = OperationCounters()
            with self._lock:
                self._registry.append(counters)
            self._slot.counters = counters
        return counters

    def merged(self) -> OperationCounters:
        """An exact total over every thread's counters, as a fresh
        :class:`OperationCounters` (the per-thread tallies keep
        accumulating; merging does not reset them)."""
        total = OperationCounters()
        with self._lock:
            parts = list(self._registry)
        for part in parts:
            total.merge(part)
        return total

    def snapshot(self) -> Dict[str, int]:
        """Dict view of :meth:`merged`, for reports and stats frames."""
        return self.merged().snapshot()

    def reset(self) -> None:
        """Zero every registered thread's counters."""
        with self._lock:
            parts = list(self._registry)
        for part in parts:
            part.reset()
