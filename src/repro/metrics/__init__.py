"""Instrumentation: operation counters and the Section 6.2 space model."""

from repro.metrics.counters import OperationCounters
from repro.metrics.space import NODE_OVERHEAD_BYTES, SpaceTracker

__all__ = ["OperationCounters", "NODE_OVERHEAD_BYTES", "SpaceTracker"]
