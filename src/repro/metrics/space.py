"""Main-memory accounting under the paper's node model (Section 6.2).

The paper measures each algorithm's space as *bytes of allocated
nodes*: both aggregation-tree variants and the linked list use 16 bytes
of structure per node (two child pointers + split timestamp for the
single-timestamp tree variant; two timestamps for a list cell), plus
the bytes of one partial aggregate state (COUNT 4 bytes, SUM/MIN/MAX 4,
AVG 8).

:class:`SpaceTracker` reproduces that accounting deterministically:
evaluators call :meth:`allocate` and :meth:`free` as they build and
garbage-collect structure, and the tracker maintains the live and peak
node counts.  Figure 9 plots ``peak_bytes``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.aggregates import Aggregate

__all__ = ["NODE_OVERHEAD_BYTES", "SpaceTracker"]

#: Structural bytes per node in the paper's model (Section 6.2).
NODE_OVERHEAD_BYTES = 16


class SpaceTracker:
    """Live/peak node accounting for one evaluation.

    ``aggregate`` fixes the per-node state size; pass the same
    aggregate the evaluator uses so ``peak_bytes`` matches the paper's
    model for that aggregate.
    """

    __slots__ = (
        "node_bytes",
        "live_nodes",
        "peak_nodes",
        "allocated_total",
        "inflation",
    )

    def __init__(self, aggregate: Optional[Aggregate] = None) -> None:
        state_bytes = aggregate.state_bytes if aggregate is not None else 4
        self.node_bytes = NODE_OVERHEAD_BYTES + state_bytes
        self.inflation = 1.0
        self.reset()

    def reset(self) -> None:
        self.live_nodes = 0
        self.peak_nodes = 0
        self.allocated_total = 0

    def allocate(self, count: int = 1) -> None:
        """Record ``count`` newly allocated nodes."""
        self.live_nodes += count
        self.allocated_total += count
        if self.live_nodes > self.peak_nodes:
            self.peak_nodes = self.live_nodes

    def free(self, count: int = 1) -> None:
        """Record ``count`` garbage-collected nodes."""
        if count > self.live_nodes:
            raise ValueError(
                f"freeing {count} nodes but only {self.live_nodes} are live"
            )
        self.live_nodes -= count

    def absorb_concurrent(self, peaks: "list[int]") -> None:
        """Record structures held concurrently by parallel workers.

        Time-sharded evaluation keeps every shard's structure live at
        once, so the modeled peak is the *sum* of the per-shard peaks
        (a tuple clipped into several shards is charged once per shard,
        exactly as it is materialised).  Leaves no live nodes behind.
        """
        total = sum(peaks)
        self.allocate(total)
        self.free(total)

    @property
    def peak_bytes(self) -> int:
        """Peak modeled memory: what Figure 9 reports."""
        return self.peak_nodes * self.node_bytes

    @property
    def live_bytes(self) -> int:
        return self.live_nodes * self.node_bytes

    @property
    def reported_bytes(self) -> int:
        """Live bytes as seen by runtime budget enforcement.

        ``inflation`` (default 1.0) scales the figure; the
        fault-injection harness (:mod:`repro.exec.faults`) sets it to
        exercise :class:`~repro.exec.budget.MemoryGuard` degradation
        deterministically on small inputs.
        """
        return int(self.live_nodes * self.node_bytes * self.inflation)

    def snapshot(self) -> Dict[str, int]:
        return {
            "live_nodes": self.live_nodes,
            "peak_nodes": self.peak_nodes,
            "allocated_total": self.allocated_total,
            "node_bytes": self.node_bytes,
            "peak_bytes": self.peak_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"SpaceTracker(live={self.live_nodes}, peak={self.peak_nodes}, "
            f"{self.node_bytes} B/node)"
        )
