"""Controlled disordering of sorted relations (paper Section 6).

The ordered-input experiments (Figures 7 and 8) start from a sorted
relation and alter it "according to various k-ordered and
k-ordered-percentages test values"; a k-ordered relation also serves as
a tractable stand-in for a retroactively bounded one (for a uniform
arrival rate the two are identical — Section 6).

:func:`k_disorder` builds a permutation with

* **max displacement exactly ≤ k** — the result is k-ordered, and
* **k-ordered-percentage ≈ the requested target** — achieved by
  composing disjoint swaps of elements ``d ≤ k`` positions apart, each
  of which displaces two tuples by ``d`` (adding ``2d`` to the
  percentage's numerator).

All functions are pure and deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.ordering import k_ordered_percentage
from repro.relation.relation import TemporalRelation

__all__ = ["swap_pairs", "k_disorder", "disorder_relation", "measured_percentage"]


def swap_pairs(
    n: int, distance: int, pairs: int, seed: int = 0
) -> List[int]:
    """A permutation of ``range(n)`` made of ``pairs`` disjoint swaps of
    elements ``distance`` apart (each swap displaces two tuples by
    ``distance``).  Used to build Table 2's example configurations."""
    if distance <= 0 or distance >= n:
        raise ValueError("swap distance must be in [1, n-1]")
    if pairs < 0:
        raise ValueError("pair count must be non-negative")
    permutation = list(range(n))
    used = [False] * n
    rng = random.Random(seed)
    placed = 0
    attempts = 0
    max_attempts = 50 * max(1, pairs)
    while placed < pairs:
        attempts += 1
        if attempts > max_attempts:
            # Fall back to a deterministic scan for a free slot pair.
            for i in range(n - distance):
                if not used[i] and not used[i + distance]:
                    break
            else:
                raise ValueError(
                    f"cannot place {pairs} disjoint swaps of distance "
                    f"{distance} in {n} positions"
                )
        else:
            i = rng.randrange(n - distance)
            if used[i] or used[i + distance]:
                continue
        used[i] = used[i + distance] = True
        permutation[i], permutation[i + distance] = (
            permutation[i + distance],
            permutation[i],
        )
        placed += 1
    return permutation


def k_disorder(
    n: int, k: int, percentage: float, seed: int = 0
) -> List[int]:
    """A k-ordered permutation of ``range(n)`` with k-ordered-percentage
    approximately ``percentage``.

    The numerator target is ``percentage * k * n``; disjoint swaps at
    distance ``k`` contribute ``2k`` each, with one final shorter swap
    to land within ``2k/(k·n)`` of the target.  Requesting more
    disorder than disjoint swaps can express raises ``ValueError``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if not 0.0 <= percentage <= 1.0:
        raise ValueError("k-ordered-percentage must be within [0, 1]")
    if n == 0 or k == 0 or percentage == 0.0:
        return list(range(n))

    target = percentage * k * n
    full_swaps = int(target // (2 * k))
    remainder = target - full_swaps * 2 * k
    # Disjoint swaps at distance k pack into blocks of 2k positions (k
    # swaps per full block, plus whatever the tail block allows); clamp
    # the request to what is geometrically placeable, trading percentage
    # accuracy for feasibility on tiny or extreme inputs.
    max_pairs = k * (n // (2 * k)) + max(0, (n % (2 * k)) - k)
    if full_swaps > max_pairs:
        full_swaps = max_pairs
        remainder = 0.0
    permutation = swap_pairs(n, k, full_swaps, seed=seed) if full_swaps else list(range(n))

    leftover_distance = int(round(remainder / 2))
    if leftover_distance >= 1:
        # One extra swap at the leftover distance, placed on a free slot.
        rng = random.Random(seed + 1)
        for _ in range(200):
            i = rng.randrange(n - leftover_distance)
            if (
                permutation[i] == i
                and permutation[i + leftover_distance] == i + leftover_distance
            ):
                permutation[i], permutation[i + leftover_distance] = (
                    permutation[i + leftover_distance],
                    permutation[i],
                )
                break
    return permutation


def disorder_relation(
    relation: TemporalRelation,
    k: int,
    percentage: float,
    seed: int = 0,
    name: Optional[str] = None,
) -> TemporalRelation:
    """Sort ``relation`` by time, then disorder it to the requested
    k-orderedness — the exact preparation of Figures 7 and 8."""
    ordered = relation.sorted_by_time()
    permutation = k_disorder(len(ordered), k, percentage, seed=seed)
    result = ordered.reordered(
        permutation, name=name or f"{relation.name}_k{k}_p{percentage}"
    )
    return result


def measured_percentage(relation: TemporalRelation, k: int) -> float:
    """Convenience: the actual k-ordered-percentage of a relation."""
    keys = [(row.start, row.end) for row in relation]
    return k_ordered_percentage(keys, k)
