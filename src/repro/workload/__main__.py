"""Command-line workload generation.

Emit the paper's Section 6 synthetic relations as temporal CSV, ready
for the TSQL2 shell or external tooling::

    python -m repro.workload --tuples 4096 --long-lived 40 --seed 7 out.csv
    python -m repro.workload --tuples 1024 --sorted out.csv
    python -m repro.workload --tuples 1024 --k 40 --percentage 0.08 out.csv
    python -m repro.workload --employed employed.csv

``--k``/``--percentage`` produce the Figures 7-9 style partially
ordered relations (sorted, then k-disordered).
"""

from __future__ import annotations

import argparse
import sys

from repro.relation.io import write_csv
from repro.workload.employed import employed_relation
from repro.workload.generator import (
    PAPER_LIFESPAN,
    WorkloadParameters,
    generate_relation,
)
from repro.workload.permute import disorder_relation

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Generate the paper's Section 6 workloads as temporal CSV.",
    )
    parser.add_argument("output", help="destination CSV path ('-' for stdout)")
    parser.add_argument("--tuples", type=int, default=1024)
    parser.add_argument(
        "--long-lived", type=int, default=0, metavar="PERCENT",
        help="percentage of long-lived tuples (paper: 0, 40, 80)",
    )
    parser.add_argument("--lifespan", type=int, default=PAPER_LIFESPAN)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--sorted", action="store_true", help="sort the relation by time"
    )
    parser.add_argument(
        "--k", type=int, default=None,
        help="disorder a sorted relation to this k-orderedness",
    )
    parser.add_argument(
        "--percentage", type=float, default=0.08,
        help="k-ordered-percentage for --k (default 0.08)",
    )
    parser.add_argument(
        "--employed", action="store_true",
        help="emit the paper's 4-tuple Employed example instead",
    )
    args = parser.parse_args(argv)

    if args.employed:
        relation = employed_relation()
    else:
        parameters = WorkloadParameters(
            tuples=args.tuples,
            long_lived_percent=args.long_lived,
            lifespan=args.lifespan,
            seed=args.seed,
        )
        relation = generate_relation(parameters)
        if args.k is not None:
            relation = disorder_relation(
                relation, args.k, args.percentage, seed=args.seed
            )
        elif args.sorted:
            relation = relation.sorted_by_time()

    if args.output == "-":
        write_csv(relation, sys.stdout)
    else:
        write_csv(relation, args.output)
        print(
            f"wrote {len(relation)} tuples to {args.output}", file=sys.stderr
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
