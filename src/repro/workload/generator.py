"""Synthetic relation generation following the paper's Section 6 setup.

The paper's test relations:

* lifespan of **one million instants**;
* tuple start positions generated **independently and uniformly**, so
  relations have many unique timestamps;
* **short-lived** tuples: duration uniform in [1, 1000] instants;
* **long-lived** tuples: duration uniform in [20 %, 80 %] of the
  relation lifespan (200 000 – 800 000 instants);
* tuples extending past the relation's lifespan are **discarded** (we
  regenerate until the tuple fits, which preserves the requested tuple
  count while keeping the same conditional distribution);
* relation sizes 1K–64K tuples (128 KB–8 MB at 128 B/tuple), doubling;
* long-lived percentages 0 %, 40 %, 80 % (Table 3).

Generators are deterministic given a seed; every benchmark records the
seed it used.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.relation.relation import TemporalRelation
from repro.relation.schema import EMPLOYED_SCHEMA, Schema

__all__ = [
    "WorkloadParameters",
    "generate_relation",
    "generate_triples",
    "PAPER_LIFESPAN",
    "PAPER_SIZES",
    "PAPER_LONG_LIVED_PERCENTS",
    "PAPER_K_ORDERED_PERCENTAGES",
]

#: Relation lifespan in instants (paper Section 6).
PAPER_LIFESPAN = 1_000_000

#: Relation sizes in tuples (paper Table 3: 1K ... 64K, doubling).
PAPER_SIZES = [1024, 2048, 4096, 8192, 16384, 32768, 65536]

#: Long-lived tuple percentages tested (Table 3).
PAPER_LONG_LIVED_PERCENTS = [0, 40, 80]

#: k-ordered-percentage values tested (Table 3).
PAPER_K_ORDERED_PERCENTAGES = [0.02, 0.08, 0.14]

_SHORT_MAX_DURATION = 1000
_LONG_MIN_FRACTION = 0.2
_LONG_MAX_FRACTION = 0.8

_NAMES = [
    "Richard", "Karen", "Nathan", "Andrey", "Curtis", "Suchen",
    "Mike", "Sampath", "Ilsoo", "Nick",
]


class WorkloadParameters:
    """One cell of the paper's test grid (Table 3)."""

    def __init__(
        self,
        tuples: int,
        long_lived_percent: int = 0,
        lifespan: int = PAPER_LIFESPAN,
        seed: int = 0,
    ) -> None:
        if tuples < 0:
            raise ValueError("tuple count must be non-negative")
        if not 0 <= long_lived_percent <= 100:
            raise ValueError("long-lived percentage must be in [0, 100]")
        if lifespan < _SHORT_MAX_DURATION:
            raise ValueError(
                f"lifespan must be at least {_SHORT_MAX_DURATION} instants"
            )
        self.tuples = tuples
        self.long_lived_percent = long_lived_percent
        self.lifespan = lifespan
        self.seed = seed

    def label(self) -> str:
        return (
            f"n={self.tuples}, long-lived={self.long_lived_percent}%, "
            f"lifespan={self.lifespan}, seed={self.seed}"
        )

    def __repr__(self) -> str:
        return f"WorkloadParameters({self.label()})"


def _draw_tuple(rng: random.Random, lifespan: int, long_lived: bool) -> Tuple[int, int]:
    """One (start, end) pair fitting inside [0, lifespan - 1].

    Tuples that would extend past the lifespan are discarded and
    redrawn, following the paper.
    """
    while True:
        start = rng.randrange(lifespan)
        if long_lived:
            duration = rng.randint(
                int(_LONG_MIN_FRACTION * lifespan), int(_LONG_MAX_FRACTION * lifespan)
            )
        else:
            duration = rng.randint(1, _SHORT_MAX_DURATION)
        end = start + duration - 1
        if end < lifespan:
            return start, end


def generate_triples(parameters: WorkloadParameters) -> List[Tuple[int, int, int]]:
    """Random ``(start, end, salary)`` triples, in generation order.

    Long-lived tuples are spread evenly through the sequence (every
    tuple is long-lived with the given probability, decided by the
    seeded RNG) so prefixes of the workload are representative.
    """
    rng = random.Random(parameters.seed)
    probability = parameters.long_lived_percent / 100.0
    triples = []
    for _ in range(parameters.tuples):
        long_lived = rng.random() < probability
        start, end = _draw_tuple(rng, parameters.lifespan, long_lived)
        salary = rng.randrange(20_000, 120_000)
        triples.append((start, end, salary))
    return triples


def generate_relation(
    parameters: WorkloadParameters,
    schema: Optional[Schema] = None,
    name: Optional[str] = None,
) -> TemporalRelation:
    """A random TemporalRelation over the Employed schema (by default)."""
    rng = random.Random(parameters.seed + 1)
    schema = schema if schema is not None else EMPLOYED_SCHEMA
    relation = TemporalRelation(
        schema, name=name or f"synthetic_{parameters.tuples}"
    )
    for start, end, salary in generate_triples(parameters):
        relation.insert((rng.choice(_NAMES), salary), start, end)
    return relation
