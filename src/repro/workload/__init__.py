"""Workload generators reproducing the paper's Section 6 test data."""

from repro.workload.employed import (
    EMPLOYED_ROWS,
    TABLE_1_EXPECTED,
    employed_relation,
)
from repro.workload.generator import (
    PAPER_K_ORDERED_PERCENTAGES,
    PAPER_LIFESPAN,
    PAPER_LONG_LIVED_PERCENTS,
    PAPER_SIZES,
    WorkloadParameters,
    generate_relation,
    generate_triples,
)
from repro.workload.permute import (
    disorder_relation,
    k_disorder,
    measured_percentage,
    swap_pairs,
)

__all__ = [
    "EMPLOYED_ROWS",
    "TABLE_1_EXPECTED",
    "employed_relation",
    "PAPER_LIFESPAN",
    "PAPER_SIZES",
    "PAPER_LONG_LIVED_PERCENTS",
    "PAPER_K_ORDERED_PERCENTAGES",
    "WorkloadParameters",
    "generate_relation",
    "generate_triples",
    "swap_pairs",
    "k_disorder",
    "disorder_relation",
    "measured_percentage",
]
