"""The paper's running example: the Employed relation (Figure 1).

Employed records who was employed when:

====== ====== ===== =====
name   salary start end
====== ====== ===== =====
Richard  40K    18  ∞
Karen    45K     8  20
Nathan   35K     7  12
Nathan   37K    18  21
====== ====== ===== =====

("Nathan was not employed during [13, 17]", and the relation is in no
particular order.)  Its six unique timestamps induce seven constant
intervals (Figure 2), and ``SELECT COUNT(Name) FROM Employed`` returns
Table 1.  :data:`TABLE_1_EXPECTED` is the re-derived expectation —
see DESIGN.md for the derivation, since the scanned table in our
source text is partially garbled.
"""

from __future__ import annotations

from repro.core.interval import FOREVER
from repro.core.result import ConstantInterval
from repro.relation.relation import TemporalRelation
from repro.relation.schema import EMPLOYED_SCHEMA

__all__ = ["employed_relation", "TABLE_1_EXPECTED", "EMPLOYED_ROWS"]

#: (values, start, end) rows exactly as in Figure 1 (salary in dollars).
EMPLOYED_ROWS = [
    (("Richard", 40_000), 18, FOREVER),
    (("Karen", 45_000), 8, 20),
    (("Nathan", 35_000), 7, 12),
    (("Nathan", 37_000), 18, 21),
]

#: Expected result of ``SELECT COUNT(Name) FROM Employed`` (Table 1),
#: including the empty leading interval; drop the count-0 row to match
#: TSQL2's presentation.
TABLE_1_EXPECTED = [
    ConstantInterval(0, 6, 0),
    ConstantInterval(7, 7, 1),
    ConstantInterval(8, 12, 2),
    ConstantInterval(13, 17, 1),
    ConstantInterval(18, 20, 3),
    ConstantInterval(21, 21, 2),
    ConstantInterval(22, FOREVER, 1),
]


def employed_relation() -> TemporalRelation:
    """A fresh copy of the Employed relation, in the paper's tuple order."""
    return TemporalRelation.from_rows(EMPLOYED_SCHEMA, EMPLOYED_ROWS, name="Employed")
