"""Cached evaluation: pure hits, append deltas, and full recomputes.

:func:`evaluate_cached` is the cache's engine boundary.  Given a
relation carrying the result-cache protocol (uid, version, append
watermark, chained fingerprint — see
:class:`~repro.relation.relation.TemporalRelation`), it serves one
``temporal_aggregate`` call down one of three paths:

* **Pure hit** — the entry's version and fingerprint match the
  relation's: return a copy of the stitched rows.  No scan, no sort,
  no sweep.
* **Append delta** — the entry predates some appends but postdates the
  last in-place reorder, and the relation confirms the content chain
  (:meth:`~repro.relation.relation.TemporalRelation.verify_append_chain`):
  mark dirty exactly the time shards whose windows overlap an appended
  tuple's interval, re-sweep *only those* with the columnar kernel,
  and re-stitch against the current boundary sets.  Clean shards'
  cached rows are reused byte for byte.
* **Miss** — shard the timeline (:func:`repro.core.partition.
  shard_bounds`), sweep every window, stitch, and store.

All three paths emit the same rows the uncached evaluators produce:
the per-window kernel is shared with ``parallel_sweep``
(:func:`repro.core.columnar_sweep.window_rows`) and stitching heals
exactly the artificial seams.  Uncacheable inputs — relations without
the protocol, unregistered aggregate instances, empty relations — fall
through to the plain columnar sweep.

``REPRO_CHECK_INVARIANTS=1`` adds a sampled-shard audit on every pure
hit: one cached window is re-swept from the live relation and compared
row for row (:func:`repro.analysis.invariants.verify_cached_shards`).
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Tuple

from repro.analysis import invariants as _invariants
from repro.core.base import Evaluator, Triple, coerce_aggregate
from repro.core.columnar_sweep import (
    ColumnarSweepEvaluator,
    validate_columns,
    window_rows,
)
from repro.core.parallel import registered_instance
from repro.core.partition import available_workers, shard_bounds, stitch_rows
from repro.core.result import ConstantInterval, TemporalAggregateResult
from repro.exec.validation import validate_shards
from repro.cache.store import (
    CachedEntry,
    CacheKey,
    ShardResultCache,
    cacheable_relation,
    default_cache,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import Aggregate
    from repro.exec.deadline import Deadline
    from repro.metrics.counters import OperationCounters
    from repro.metrics.space import SpaceTracker

__all__ = ["CachedSweepEvaluator", "evaluate_cached"]


def evaluate_cached(
    relation: Any,
    aggregate: "Aggregate | str",
    attribute: Optional[str] = None,
    *,
    shards: Optional[int] = None,
    cache: Optional[ShardResultCache] = None,
    counters: "Optional[OperationCounters]" = None,
    space: "Optional[SpaceTracker]" = None,
    deadline: "Optional[Deadline]" = None,
) -> TemporalAggregateResult:
    """Evaluate over ``relation`` through the shard-result cache.

    This is an engine boundary: the shard count validates through
    :func:`repro.exec.validation.validate_shards` and the miss path
    bulk-validates the scanned columns before sweeping, exactly as the
    parallel sweep does.
    """
    from repro.metrics.counters import OperationCounters
    from repro.metrics.space import SpaceTracker

    aggregate = coerce_aggregate(aggregate)
    shards = validate_shards(shards)
    counters = counters if counters is not None else OperationCounters()
    space = space if space is not None else SpaceTracker(aggregate)
    if (
        not cacheable_relation(relation)
        or not registered_instance(aggregate)
        or len(relation) == 0
    ):
        delegate = ColumnarSweepEvaluator(aggregate, counters=counters, space=space)
        delegate.deadline = deadline
        return delegate.evaluate_relation(relation, attribute)

    cache = cache if cache is not None else default_cache()
    shard_count = shards if shards is not None else available_workers()
    key = CacheKey(relation.uid, aggregate.name, attribute, shard_count)
    entry = cache.lookup(key)

    if (
        entry is not None
        and entry.version == relation.version
        and entry.fingerprint == relation.fingerprint
    ):
        return _serve_hit(
            relation, aggregate, attribute, entry, cache, counters, deadline
        )

    if (
        entry is not None
        and entry.version >= relation.append_watermark
        and entry.row_count <= len(relation)
        and relation.verify_append_chain(entry.row_count, entry.fingerprint)
    ):
        return _refresh_append(
            relation, aggregate, attribute, entry, cache, key, counters,
            space, deadline,
        )

    return _recompute(
        relation, aggregate, attribute, cache, key, shard_count, counters,
        space, deadline,
    )


def _serve_hit(
    relation: Any,
    aggregate: "Aggregate",
    attribute: Optional[str],
    entry: CachedEntry,
    cache: ShardResultCache,
    counters: "OperationCounters",
    deadline: "Optional[Deadline]" = None,
) -> TemporalAggregateResult:
    # Even a pure hit honors the caller's deadline: a statement that
    # arrived already past its budget must fail typed, not serve rows
    # the session will never read.
    if deadline is not None:
        deadline.check(cached_rows=len(entry.rows))
    counters.cache_hits += 1
    cache.tally(cache_hits=1)
    counters.emitted += len(entry.rows)
    if _invariants.invariants_enabled():
        _invariants.verify_cached_shards(
            relation, attribute, aggregate, entry.windows, entry.shard_rows
        )
    return TemporalAggregateResult(list(entry.rows), check=False)


def _scan_columns(
    relation: Any, attribute: Optional[str], counters: "OperationCounters"
) -> Tuple[Any, Any, Any, Any]:
    """One counted scan decomposed into validated flat columns.

    Relations offering the flat-column protocol (``columns()``) feed
    the cache straight from their version-keyed column snapshot — no
    per-row tuples are built between storage and the shard kernels.
    Protocol-less relations fall back to decomposing a triple scan (and
    account the per-row tuples that scan materialized).

    The fourth return is the :class:`~repro.core.columns.ColumnSet`
    itself when the relation produced one (None otherwise) — the
    resident execution backend needs its identity stamp to key a
    shared-memory publication.
    """
    columns_method = getattr(relation, "columns", None)
    if callable(columns_method):
        columns = columns_method(attribute)
        counters.column_batches += columns.batches
        starts, ends, values = columns.starts, columns.ends, columns.values
    else:
        columns = None
        starts, ends, values = zip(*relation.scan_triples(attribute))
        counters.tuple_materializations += len(starts)
    validate_columns(starts, ends)
    return starts, ends, values, columns


def _pool_sweep(
    columns: Any,
    starts: Any,
    ends: Any,
    values: Any,
    sweep_windows: List[Tuple[int, int]],
    aggregate: "Aggregate",
    counters: "OperationCounters",
    deadline: "Optional[Deadline]",
) -> Optional[List[Tuple[List[tuple], int]]]:
    """Sweep ``sweep_windows`` on the resident pool, if it applies.

    Engages for identified column snapshots at or above the
    ``REPRO_POOL_MIN_TUPLES`` threshold with more than one window to
    sweep — and only when a resident pool is *already running*
    (:func:`repro.exec.pool.active_pool`).  The cache evaluator never
    creates the pool itself: it runs on server executor threads
    mid-query, where a lazy first-touch fork would fork a
    multi-threaded process at an arbitrary point, and
    ``ServerConfig(pool_workers=0)`` promises statements evaluate
    in-process.  Returns per-window ``(rows, events)`` (worker counter
    deltas already merged into ``counters``) or None for the serial
    in-process path.
    """
    if columns is None or len(sweep_windows) <= 1:
        return None
    if getattr(columns, "uid", None) is None or columns.version is None:
        return None
    from repro.exec.pool import active_pool, pool_min_tuples

    if len(starts) < pool_min_tuples():
        return None
    pool = active_pool()
    if pool is None:
        return None
    outcome = pool.sweep_columns(
        starts,
        ends,
        values,
        sweep_windows,
        aggregate.name,
        uid=columns.uid,
        version=columns.version,
        column_key=columns.column_key,
        owner=columns,
        deadline=deadline,
        counters=counters,
    )
    if outcome is None:
        return None
    return outcome[0]


def _finish(
    entry: CachedEntry,
    starts: Iterable[int],
    ends: Iterable[int],
    counters: "OperationCounters",
) -> TemporalAggregateResult:
    """Stitch the entry's shard rows against the current boundary sets
    and refresh its finished-row copy."""
    raw = stitch_rows(entry.shard_rows, set(starts), set(ends))
    entry.rows = list(map(tuple.__new__, repeat(ConstantInterval), raw))
    counters.emitted += len(raw)
    return TemporalAggregateResult(list(entry.rows), check=False)


def _refresh_append(
    relation: Any,
    aggregate: "Aggregate",
    attribute: Optional[str],
    entry: CachedEntry,
    cache: ShardResultCache,
    key: CacheKey,
    counters: "OperationCounters",
    space: "SpaceTracker",
    deadline: "Optional[Deadline]",
) -> TemporalAggregateResult:
    """Fold appended tuples in by re-sweeping only the dirty shards.

    The refresh is copy-on-write: a published entry is never mutated
    (a concurrent session that validated the old version against the
    old entry may still be copying its rows), so the dirty shards are
    re-swept into a *fresh* entry that replaces the stale one in the
    store.  Readers holding the old object keep a consistent row set
    for the version they pinned.
    """
    delta = relation.triples_since(entry.row_count, attribute)
    windows = entry.windows
    dirty = sorted(
        {
            index
            for index, (lo, hi) in enumerate(windows)
            for start, end, _value in delta
            if start <= hi and end >= lo
        }
    )
    # Uncharge the stale entry up front; the refreshed entry re-admits
    # (and re-applies the byte budget) through the normal store path.
    cache.discard(key)
    starts, ends, values, columns = _scan_columns(relation, attribute, counters)
    refreshed = CachedEntry(
        version=relation.version,
        fingerprint=relation.fingerprint,
        row_count=len(relation),
        windows=windows,
        shard_rows=list(entry.shard_rows),
        rows=[],
    )
    events_by_shard: List[int] = []
    dirty_windows = [windows[index] for index in dirty]
    pooled = _pool_sweep(
        columns, starts, ends, values, dirty_windows, aggregate, counters, deadline
    )
    if pooled is not None:
        for index, (rows, events) in zip(dirty, pooled):
            refreshed.shard_rows[index] = rows
            events_by_shard.append(events)
    else:
        for position, index in enumerate(dirty):
            if deadline is not None:
                deadline.check(completed_shards=position, total_shards=len(dirty))
            lo, hi = windows[index]
            rows, events = window_rows(starts, ends, values, aggregate, lo, hi)
            refreshed.shard_rows[index] = rows
            events_by_shard.append(events)
    counters.tuples += len(delta)
    # The delta itself arrives as a short list of per-row tuples (it
    # drives dirty-window detection); the re-sweep runs on columns.
    counters.tuple_materializations += len(delta)
    counters.node_visits += sum(events_by_shard)
    counters.aggregate_updates += sum(events_by_shard)
    counters.cache_hits += 1
    counters.cache_dirty_shards += len(dirty)
    cache.tally(cache_hits=1, cache_dirty_shards=len(dirty))
    space.absorb_concurrent(events_by_shard)

    result = _finish(refreshed, starts, ends, counters)
    cache.store(key, refreshed)
    return result


def _recompute(
    relation: Any,
    aggregate: "Aggregate",
    attribute: Optional[str],
    cache: ShardResultCache,
    key: CacheKey,
    shard_count: int,
    counters: "OperationCounters",
    space: "SpaceTracker",
    deadline: "Optional[Deadline]",
) -> TemporalAggregateResult:
    """Full miss: sweep every window, stitch, store."""
    counters.cache_misses += 1
    cache.tally(cache_misses=1)
    cache.discard(key)
    starts, ends, values, columns = _scan_columns(relation, attribute, counters)
    windows = shard_bounds(starts, ends, shard_count)
    shard_rows: List[List[tuple]] = []
    events_by_shard: List[int] = []
    pooled = _pool_sweep(
        columns, starts, ends, values, windows, aggregate, counters, deadline
    )
    if pooled is not None:
        for rows, events in pooled:
            shard_rows.append(rows)
            events_by_shard.append(events)
    else:
        for index, (lo, hi) in enumerate(windows):
            if deadline is not None:
                deadline.check(completed_shards=index, total_shards=len(windows))
            rows, events = window_rows(starts, ends, values, aggregate, lo, hi)
            shard_rows.append(rows)
            events_by_shard.append(events)
    counters.tuples += len(starts)
    counters.node_visits += sum(events_by_shard)
    counters.aggregate_updates += sum(events_by_shard)
    space.absorb_concurrent(events_by_shard)

    entry = CachedEntry(
        version=relation.version,
        fingerprint=relation.fingerprint,
        row_count=len(relation),
        windows=windows,
        shard_rows=shard_rows,
        rows=[],
    )
    result = _finish(entry, starts, ends, counters)
    cache.store(key, entry)
    return result


class CachedSweepEvaluator(Evaluator):
    """The ``cached_sweep`` strategy: sharded sweep behind the cache.

    Over a relation carrying the cache protocol, evaluation routes
    through :func:`evaluate_cached`; over raw triples (no identity, no
    version — nothing to key a cache on) it behaves exactly like the
    columnar sweep, so the strategy is safe to select anywhere.
    ``cache=None`` uses the process-default cache at call time.
    """

    name = "cached_sweep"

    def __init__(
        self,
        aggregate: "Aggregate | str",
        *,
        shards: Optional[int] = None,
        cache: Optional[ShardResultCache] = None,
        counters: "Optional[OperationCounters]" = None,
        space: "Optional[SpaceTracker]" = None,
    ) -> None:
        super().__init__(aggregate, counters=counters, space=space)
        self.shards = validate_shards(shards)
        self.cache = cache

    def evaluate(self, triples: Iterable[Triple]) -> TemporalAggregateResult:
        delegate = ColumnarSweepEvaluator(
            self.aggregate, counters=self.counters, space=self.space
        )
        delegate.deadline = self.deadline
        return delegate.evaluate(triples)

    def evaluate_relation(
        self, relation: Any, attribute: Optional[str] = None
    ) -> TemporalAggregateResult:
        return evaluate_cached(
            relation,
            self.aggregate,
            attribute,
            shards=self.shards,
            cache=self.cache,
            counters=self.counters,
            space=self.space,
            deadline=self.deadline,
        )
