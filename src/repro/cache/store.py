"""The mergeable shard-result cache: versioned entries, LRU, byte budget.

A :class:`ShardResultCache` remembers, per ``(relation uid, aggregate,
attribute, shard count)``, the per-time-shard partial rows *and* the
stitched final rows of one ``temporal_aggregate`` evaluation, stamped
with the relation's version and content fingerprint at compute time.
The evaluation logic that decides hit / append-delta / miss lives in
:mod:`repro.cache.evaluator`; this module is pure storage policy:

* **Validity stamps** — an entry records ``version`` and
  ``fingerprint``; the relation side of the handshake lives on
  :class:`~repro.relation.relation.TemporalRelation` (version counter,
  append watermark, chained fingerprint).
* **Byte budget** — entries are charged to a
  :class:`~repro.metrics.space.SpaceTracker` under the paper's node
  model (one node per cached row, partial and stitched rows both —
  they are both materialised).  Inserting past the budget evicts
  least-recently-used entries first; an entry larger than the whole
  budget is simply not admitted.
* **Shedding** — :func:`shed_default_cache` empties the process-default
  cache and reports the modeled bytes released; the memory-budget
  guard (:mod:`repro.exec.budget`) calls it before degrading an
  evaluation, making cached results the first memory to go.
* **Repeat detection** — :meth:`note_query` keeps a bounded set of
  recent query signatures so the planner can auto-select the cached
  strategy only for relations that are actually queried repeatedly.

The default budget is :data:`DEFAULT_BUDGET_BYTES`, overridable with
the ``REPRO_CACHE_BUDGET_BYTES`` environment variable (read when the
cache is constructed, so tests can swap it per-process).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, List, NamedTuple, Optional, Tuple

from repro.metrics.counters import OperationCounters
from repro.metrics.space import SpaceTracker

__all__ = [
    "ENV_BUDGET",
    "DEFAULT_BUDGET_BYTES",
    "CacheKey",
    "CachedEntry",
    "ShardResultCache",
    "cacheable_relation",
    "default_cache",
    "set_default_cache",
    "shed_default_cache",
]


def cacheable_relation(relation: Any) -> bool:
    """Does ``relation`` carry the result-cache protocol?

    True exactly for containers declaring ``supports_result_cache``
    (and thereby uid / version / append watermark / fingerprint /
    ``triples_since`` / ``verify_append_chain``).  Raw triple streams
    and storage containers without the protocol evaluate uncached.
    """
    return bool(getattr(relation, "supports_result_cache", False))

#: Environment variable naming the default cache's byte budget.
ENV_BUDGET = "REPRO_CACHE_BUDGET_BYTES"

#: Default byte budget under the node model — roughly 1.6M cached rows
#: at 20 modeled bytes per row, far above any test workload and far
#: below a workstation's memory.
DEFAULT_BUDGET_BYTES = 32 * 1024 * 1024

#: Recent query signatures remembered for repeat detection.
RECENT_QUERY_LIMIT = 256


class CacheKey(NamedTuple):
    """Identity of one cacheable evaluation."""

    relation_uid: int
    aggregate: str
    attribute: Optional[str]
    shards: int


class CachedEntry:
    """One evaluation's shard partials + stitched rows, version-stamped."""

    __slots__ = (
        "version",
        "fingerprint",
        "row_count",
        "windows",
        "shard_rows",
        "rows",
    )

    def __init__(
        self,
        version: int,
        fingerprint: int,
        row_count: int,
        windows: List[Tuple[int, int]],
        shard_rows: List[List[tuple]],
        rows: List[Any],
    ) -> None:
        self.version = version
        self.fingerprint = fingerprint
        #: Relation row count at compute time; rows past this index are
        #: the append delta the refresh path folds in.
        self.row_count = row_count
        self.windows = windows
        #: Plain-tuple rows per window, pre-stitch — what the delta
        #: path recomputes shard by shard.
        self.shard_rows = shard_rows
        #: The stitched, finished ConstantInterval rows — what a pure
        #: hit returns (copied) without touching the kernel at all.
        self.rows = rows

    def node_count(self) -> int:
        """Modeled nodes this entry occupies (one per materialised row)."""
        return sum(len(part) for part in self.shard_rows) + len(self.rows)


class ShardResultCache:
    """Memory-bounded LRU store of versioned shard-result entries."""

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        *,
        counters: Optional[OperationCounters] = None,
        space: Optional[SpaceTracker] = None,
    ) -> None:
        if budget_bytes is None:
            env = os.environ.get(ENV_BUDGET, "").strip()
            budget_bytes = int(env) if env else DEFAULT_BUDGET_BYTES
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self.counters = counters if counters is not None else OperationCounters()
        self.space = space if space is not None else SpaceTracker()
        self._entries: "OrderedDict[CacheKey, CachedEntry]" = OrderedDict()  # ta: guarded-by(self.lock)
        self._recent: "OrderedDict[Tuple[int, str, Optional[str]], bool]" = (
            OrderedDict()
        )  # ta: guarded-by(self.lock)
        #: Guards every structural operation (and the shared counter
        #: tallies) so one cache instance can serve many sessions on
        #: threads — the serving layer's shared server cache.  Re-entrant
        #: because store() calls discard() internally.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self.lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self.lock:
            return key in self._entries

    @property
    def live_bytes(self) -> int:
        """Modeled bytes currently held by cached entries."""
        with self.lock:
            return self.space.live_bytes

    def tally(self, **deltas: int) -> None:
        """Add ``deltas`` to the cache's shared counters, atomically.

        Concurrent sessions share one counter object on the cache;
        bare ``cache.counters.x += 1`` from many threads would race
        (read-modify-write), so the evaluator routes its shared-side
        tallies through here.
        """
        with self.lock:
            for name, delta in deltas.items():
                setattr(self.counters, name, getattr(self.counters, name) + delta)

    def lookup(self, key: CacheKey) -> Optional[CachedEntry]:
        """The entry under ``key`` (refreshing its recency), or None.

        Validity against the relation's current version/fingerprint is
        the *evaluator's* decision — the store only remembers.
        """
        with self.lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def store(self, key: CacheKey, entry: CachedEntry) -> bool:
        """Insert (or replace) ``entry``, evicting LRU peers past the
        budget.  Returns False when the entry alone outweighs the whole
        budget and was not admitted."""
        with self.lock:
            self.discard(key)
            nodes = entry.node_count()
            if nodes * self.space.node_bytes > self.budget_bytes:
                return False
            self._entries[key] = entry
            self.space.allocate(nodes)
            self._evict_over_budget_locked(keep=key)
            return True

    def discard(self, key: CacheKey) -> None:
        """Drop one entry (no-op when absent)."""
        with self.lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.space.free(entry.node_count())

    def _evict_over_budget_locked(self, keep: CacheKey) -> None:
        """Evict least-recently-used entries until under budget.

        The ``_locked`` suffix is the repo's caller-holds-the-lock
        convention: ``store()`` already holds ``self.lock`` around the
        insert + eviction, so this helper takes none itself.

        ``keep`` (the entry just inserted at the MRU end) survives even
        when it alone is what crossed the line — admission already
        rejected entries bigger than the whole budget.
        """
        while self.space.live_bytes > self.budget_bytes and len(self._entries) > 1:
            victim_key = next(iter(self._entries))
            if victim_key == keep:  # pragma: no cover - keep is MRU
                break
            victim = self._entries.pop(victim_key)
            self.space.free(victim.node_count())
            self.counters.cache_evictions += 1

    def shed(self) -> int:
        """Evict everything; returns the modeled bytes released.

        This is the memory-pressure hook: under a tripped memory
        budget, cached results are the first allocation to go — they
        are always recomputable.
        """
        with self.lock:
            released = self.space.live_bytes
            evicted = len(self._entries)
            for entry in self._entries.values():
                self.space.free(entry.node_count())
            self._entries.clear()
            self.counters.cache_evictions += evicted
            return released

    def reset(self) -> None:
        """Drop entries, recency, and counters (test isolation)."""
        with self.lock:
            self.shed()
            self._recent.clear()
            self.counters.reset()
            self.space.reset()

    # ------------------------------------------------------------------
    # Repeat detection
    # ------------------------------------------------------------------

    def note_query(
        self, relation_uid: int, aggregate: str, attribute: Optional[str]
    ) -> bool:
        """Record one query signature; True when it was seen before.

        The planner treats "seen before" as the repeated-workload
        signal that justifies paying the cache's first-miss overhead.
        The signature set is bounded (LRU, :data:`RECENT_QUERY_LIMIT`)
        so a scan over thousands of distinct relations cannot grow it.
        """
        signature = (relation_uid, aggregate, attribute)
        with self.lock:
            seen = signature in self._recent
            if seen:
                self._recent.move_to_end(signature)
            else:
                self._recent[signature] = True
                while len(self._recent) > RECENT_QUERY_LIMIT:
                    self._recent.popitem(last=False)
            return seen


# ---------------------------------------------------------------------------
# The process-default cache
# ---------------------------------------------------------------------------

_default: Optional[ShardResultCache] = None

#: Guards first-touch construction of the default cache.  Double-checked:
#: the fast path reads the module global without locking (an attribute
#: read of an already-published object is safe under the GIL); only the
#: None case takes the lock and re-checks, so two sessions racing the
#: first query cannot each build (and then split traffic across) their
#: own cache.
_default_lock = threading.Lock()


def default_cache() -> ShardResultCache:
    """The process-wide cache ``temporal_aggregate`` uses by default."""
    global _default
    cache = _default
    if cache is None:
        with _default_lock:
            cache = _default
            if cache is None:
                cache = _default = ShardResultCache()
    return cache


def set_default_cache(cache: Optional[ShardResultCache]) -> None:
    """Replace the process-default cache (None resets to lazy-new)."""
    global _default
    _default = cache


def shed_default_cache() -> int:
    """Empty the default cache if one exists; returns bytes released.

    Deliberately does *not* construct a cache: a process that never
    cached anything sheds zero bytes at zero cost.
    """
    if _default is None:
        return 0
    return _default.shed()
