"""Mergeable shard-result cache with incremental (delta) maintenance.

The paper's algorithms recompute every constant interval from scratch
on each call.  This package memoizes the time-sharded partial results
the parallel sweep already produces (PR 1's shard/clip/stitch
decomposition) and maintains them incrementally:

* repeated queries over an unchanged relation are served straight from
  the stitched cached rows (``cache_hits``),
* appends dirty only the shards whose windows overlap the new tuples'
  intervals; clean shards are never re-swept (``cache_dirty_shards``),
* memory is bounded by a byte budget with LRU eviction
  (``cache_evictions``), and the whole cache is the first allocation
  shed under a tripped memory budget.

Entry points: the ``cached_sweep`` strategy registered with the engine
(:class:`~repro.cache.evaluator.CachedSweepEvaluator`, auto-selected by
the planner for repeatedly queried relations) and
:func:`~repro.cache.evaluator.evaluate_cached` directly.
"""

from repro.cache.evaluator import CachedSweepEvaluator, evaluate_cached
from repro.cache.store import (
    DEFAULT_BUDGET_BYTES,
    ENV_BUDGET,
    CachedEntry,
    CacheKey,
    ShardResultCache,
    cacheable_relation,
    default_cache,
    set_default_cache,
    shed_default_cache,
)

__all__ = [
    "CachedSweepEvaluator",
    "evaluate_cached",
    "CacheKey",
    "CachedEntry",
    "ShardResultCache",
    "cacheable_relation",
    "default_cache",
    "set_default_cache",
    "shed_default_cache",
    "DEFAULT_BUDGET_BYTES",
    "ENV_BUDGET",
]
