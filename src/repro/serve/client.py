"""Blocking client library for the query server.

:class:`QueryClient` speaks the frame protocol over one TCP
connection.  The high-level methods (:meth:`query`, :meth:`append`,
:meth:`stats`, :meth:`ping`) each send one request and block for its
reply; the low-level :meth:`send` / :meth:`recv` pair lets callers
pipeline many requests before reading any reply (how the overload
tests fill a session queue deterministically).

Server-side failures come back as typed exceptions:

* ``ServerOverloaded`` frames re-raise as the *real*
  :class:`~repro.exec.errors.ServerOverloaded`, carrying the server's
  ``retry_after_ms`` hint — client code backs off exactly as local
  engine code would.
* ``DeadlineExceeded`` frames re-raise as the real
  :class:`~repro.exec.errors.DeadlineExceeded`.
* Replication fencing frames (``StaleEpoch``, ``NotPrimary``,
  ``ReplicaLagExceeded``) re-raise as their real taxonomy types so
  failover-aware callers can branch without string matching.
* Everything else raises :class:`RemoteQueryError`, which keeps the
  remote type name, message, and recovery hint.

Connecting is retried: a refused, reset, or mid-handshake-dropped
connection is transient (a server restarting, a failover in
progress), so the constructor retries with the same deterministic
jittered backoff the shard supervisor uses
(:class:`~repro.exec.supervision.RetryPolicy`) and raises a typed
:class:`~repro.exec.errors.ServerUnavailable` only once the attempt
budget is spent.  Typed admission refusals (``ServerOverloaded``)
are *not* retried — the server was up and said no.
"""

from __future__ import annotations

import socket
import struct
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exec.errors import (
    DeadlineExceeded,
    NotPrimary,
    ReplicaLagExceeded,
    ServerOverloaded,
    ServerUnavailable,
    StaleEpoch,
    TemporalAggregateError,
)
from repro.exec.supervision import RetryPolicy
from repro.serve.protocol import ConnectionClosed, recv_frame, send_frame

__all__ = ["QueryClient", "QueryReply", "RemoteQueryError", "CONNECT_RETRY"]

#: Default connect-retry policy: three attempts, jittered exponential
#: backoff capped well below a human-noticeable stall.
CONNECT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.25)


class RemoteQueryError(TemporalAggregateError):
    """A server-side failure without a richer local type.

    ``remote_type`` is the server's exception class name; ``hint`` the
    recovery hint its shell would print.
    """

    def __init__(
        self,
        message: str,
        *,
        remote_type: str,
        hint: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.remote_type = remote_type
        self.hint = hint


def raise_for_error(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Pass an ``ok`` reply through; raise typed for an error frame."""
    if reply.get("ok"):
        return reply
    error = reply.get("error") or {}
    remote_type = str(error.get("type", "unknown"))
    message = str(error.get("message", "server error"))
    if remote_type == "ServerOverloaded":
        raise ServerOverloaded(
            message,
            retry_after_ms=int(error.get("retry_after_ms", 1)),
            reason=str(error.get("reason", "sessions")),
        )
    if remote_type == "DeadlineExceeded":
        raise DeadlineExceeded(
            message,
            deadline_ms=float(error.get("deadline_ms", 0.0) or 0.0),
            elapsed_ms=float(error.get("elapsed_ms", 0.0) or 0.0),
        )
    if remote_type == "StaleEpoch":
        raise StaleEpoch(
            message,
            epoch=int(error.get("epoch", 0)),
            observed_epoch=int(error.get("observed_epoch", 0)),
        )
    if remote_type == "NotPrimary":
        hint = error.get("primary_hint")
        raise NotPrimary(
            message,
            role=str(error.get("role", "replica")),
            primary_hint=None if hint is None else str(hint),
        )
    if remote_type == "ReplicaLagExceeded":
        raise ReplicaLagExceeded(
            message,
            token_version=int(error.get("token_version", 0)),
            applied_version=int(error.get("applied_version", 0)),
            retry_after_ms=int(error.get("retry_after_ms", 1)),
        )
    raise RemoteQueryError(
        message, remote_type=remote_type, hint=error.get("hint")
    )


@dataclass(frozen=True)
class QueryReply:
    """One successful query's result, as it crossed the wire."""

    columns: Tuple[str, ...]
    rows: List[tuple]
    pinned_table: str
    pinned_version: int
    pinned_row_count: int
    degraded: int
    elapsed_ms: float
    #: Which role served this reply ("primary" or "replica") — trailing
    #: default so pre-replication callers keep constructing replies.
    role: str = "primary"

    def column(self, name: str) -> List[Any]:
        position = self.columns.index(name)
        return [row[position] for row in self.rows]


class QueryClient:
    """One blocking session against a query server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        policy = retry if retry is not None else CONNECT_RETRY
        endpoint = f"{host}:{port}"
        last: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                self._sock, hello = self._connect_once(host, port, timeout)
                break
            except (OSError, ConnectionClosed) as error:
                # Transient: the endpoint refused/reset, or dropped the
                # connection before the hello landed (a restart or a
                # failover in progress).  Back off and retry.
                last = error
                if attempt < policy.max_attempts:
                    time.sleep(policy.backoff(port, attempt))
        else:
            raise ServerUnavailable(
                f"no server at {endpoint} after "
                f"{policy.max_attempts} connect attempt(s): {last}",
                endpoint=endpoint,
                attempts=policy.max_attempts,
                cause=last,
            )
        self.session_id = int(hello["session"])
        self.tables = list(hello.get("tables", []))
        self.max_queue_depth = int(hello.get("max_queue_depth", 0))
        #: Replication handshake fields; pre-replication servers omit
        #: them and the defaults describe a standalone primary.
        self.role = str(hello.get("role", "primary"))
        self.epoch = int(hello.get("epoch", 0))
        #: Table name -> replication stream uid; the uid half of a read
        #: token, stable across every node serving that table.
        self.streams: Dict[str, str] = {
            str(name): str(uid)
            for name, uid in dict(hello.get("streams", {})).items()
        }
        #: The node's advertised serving endpoint ("host:port"), when it
        #: knows one — failover clients use it as a primary hint.
        self.endpoint = str(hello.get("endpoint", "") or "")

    @staticmethod
    def _connect_once(
        host: str, port: int, timeout: float
    ) -> Tuple[socket.socket, Dict[str, Any]]:
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            hello = raise_for_error(recv_frame(sock))
        except BaseException:
            # Admission refusal (or a dead server): surface the typed
            # error with the socket already cleaned up.
            sock.close()
            raise
        return sock, hello

    # ------------------------------------------------------------------
    # Low-level (pipelining)
    # ------------------------------------------------------------------

    def send(self, payload: Dict[str, Any]) -> None:
        """Send one raw request frame without waiting for its reply."""
        send_frame(self._sock, payload)

    def recv(self) -> Dict[str, Any]:
        """Read one raw reply frame (typed errors raise)."""
        return raise_for_error(recv_frame(self._sock))

    def recv_raw(self) -> Dict[str, Any]:
        """Read one raw reply frame without raising on error frames."""
        return recv_frame(self._sock)

    # ------------------------------------------------------------------
    # Request/reply operations
    # ------------------------------------------------------------------

    def query(
        self,
        text: str,
        *,
        token: Optional[Tuple[str, int]] = None,
    ) -> QueryReply:
        """Run one TSQL2-lite query against a pinned snapshot.

        ``token`` is an optional ``(stream_uid, version)`` read token:
        a replica that has not applied ``version`` for that stream yet
        refuses with a typed ``ReplicaLagExceeded`` instead of serving
        a stale snapshot (read-your-writes).
        """
        request: Dict[str, Any] = {"op": "query", "text": text}
        if token is not None:
            request["token"] = {"uid": token[0], "version": int(token[1])}
        self.send(request)
        reply = self.recv()
        pinned = reply.get("pinned", {})
        return QueryReply(
            columns=tuple(reply["columns"]),
            rows=[tuple(row) for row in reply["rows"]],
            pinned_table=str(pinned.get("table", "")),
            pinned_version=int(pinned.get("version", 0)),
            pinned_row_count=int(pinned.get("row_count", 0)),
            degraded=int(reply.get("degraded", 0)),
            elapsed_ms=float(reply.get("elapsed_ms", 0.0)),
            role=str(reply.get("role", "primary")),
        )

    def append(
        self,
        table: str,
        rows: List[List[Any]],
        *,
        sid: Optional[str] = None,
    ) -> Tuple[int, int]:
        """Append one batch of ``[value..., start, end]`` rows.

        Returns the relation's ``(version, row_count)`` after the batch
        — the identity a serial reference replays against.  ``sid`` is
        an optional idempotent statement id: a retried append with the
        same ``sid`` is deduplicated server-side and acknowledged with
        the original ``(version, row_count)`` instead of applying
        twice.
        """
        request: Dict[str, Any] = {"op": "append", "table": table, "rows": rows}
        if sid is not None:
            request["sid"] = sid
        self.send(request)
        reply = self.recv()
        return int(reply["version"]), int(reply["row_count"])

    def stats(self) -> Dict[str, Any]:
        """The server's ``stats`` frame (admission, scheduler, cache)."""
        self.send({"op": "stats"})
        return self.recv()["stats"]

    def ping(self) -> float:
        """Round-trip one frame; returns the elapsed milliseconds."""
        started = time.perf_counter()
        self.send({"op": "ping"})
        self.recv()
        return (time.perf_counter() - started) * 1000.0

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Polite close: tell the server, then shut the socket."""
        try:
            self.send({"op": "close"})
            recv_frame(self._sock)
        except Exception:
            pass
        finally:
            self._sock.close()

    def kill(self) -> None:
        """Abrupt close with no goodbye — a crashed client.

        The swarm's mid-query kill: send a statement, then call this
        before reading the reply.
        """
        try:
            # linger on, timeout 0: close sends RST, not FIN.
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
