"""Deterministic multi-client swarm harness and serial reference.

The server's correctness claim is end-to-end: N concurrent sessions
mixing reads and appends (with some clients dying mid-query and some
speaking garbage) must each receive rows *identical* to what a serial,
single-threaded execution would have produced at their pinned
snapshot.  This module provides both halves of that claim:

* :func:`run_swarm` — drive one scripted client per thread.  Scripts
  are data (:class:`SwarmStep`), so the same swarm replays exactly;
  the only nondeterminism is interleaving, which is precisely what the
  snapshot protocol must absorb.  Overloaded statements retry after
  the server's ``retry_after_ms`` hint.
* :func:`serial_reference` — replay the swarm's *observed* appends in
  server version order onto a fresh copy of the initial relation and
  re-run every query serially at its pinned version with the default
  engine.  Because one append operation maps to exactly one version
  bump, a reader's ``(version, row_count)`` pin names an exact prefix
  of append batches — no clock, no coordination, just the version
  numbers the server already handed out.

The acceptance tests assert ``reply.rows == serial rows`` for every
surviving query; the serving benchmark reuses :func:`run_swarm` for
its sustained-load measurement.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exec.errors import ServerOverloaded
from repro.relation.relation import TemporalRelation
from repro.serve.client import QueryClient, QueryReply
from repro.tsql2.executor import Database

__all__ = [
    "SwarmStep",
    "ClientReport",
    "run_swarm",
    "serial_reference",
    "verify_swarm",
]


@dataclass(frozen=True)
class SwarmStep:
    """One scripted client action.

    ``kind`` is one of:

    * ``"query"`` — run ``text``, record the reply;
    * ``"append"`` — append ``rows`` to ``table``, record the version;
    * ``"kill"`` — send ``text`` as a query, then sever the connection
      without reading the reply (mid-query client death); ends the
      script;
    * ``"garble"`` — send a malformed frame body, record that the
      server refused it; ends the script;
    * ``"stall"`` — sleep ``seconds`` while holding the session open.
    """

    kind: str
    text: Optional[str] = None
    table: Optional[str] = None
    rows: Optional[Tuple[Tuple[Any, ...], ...]] = None
    seconds: float = 0.0


@dataclass
class ClientReport:
    """Everything one swarm client observed, for the serial check."""

    client_id: int
    queries: List[Tuple[str, QueryReply]] = field(default_factory=list)
    #: ``(table, rows, version, row_count)`` per acknowledged append.
    appends: List[Tuple[str, Tuple[Tuple[Any, ...], ...], int, int]] = field(
        default_factory=list
    )
    killed: bool = False
    garbled: bool = False
    overload_retries: int = 0
    errors: List[str] = field(default_factory=list)


def _with_overload_retry(
    report: ClientReport,
    action: Callable[[], Any],
    *,
    max_retries: int = 50,
) -> Any:
    """Run ``action``, honoring ServerOverloaded retry-after hints."""
    for _ in range(max_retries):
        try:
            return action()
        except ServerOverloaded as error:
            report.overload_retries += 1
            time.sleep(max(error.retry_after_ms, 1) / 1000.0)
    raise ServerOverloaded(
        f"still overloaded after {max_retries} retries",
        retry_after_ms=1,
        reason="swarm",
    )


def _run_script(
    host: str,
    port: int,
    client_id: int,
    script: Sequence[SwarmStep],
    report: ClientReport,
    barrier: threading.Barrier,
) -> None:
    client = _with_overload_retry(
        report, lambda: QueryClient(host, port)
    )
    try:
        barrier.wait(timeout=30.0)
        for step in script:
            if step.kind == "query":
                assert step.text is not None
                reply = _with_overload_retry(
                    report, lambda: client.query(step.text)
                )
                report.queries.append((step.text, reply))
            elif step.kind == "append":
                assert step.table is not None and step.rows is not None
                version, row_count = _with_overload_retry(
                    report,
                    lambda: client.append(
                        step.table, [list(row) for row in step.rows]
                    ),
                )
                report.appends.append(
                    (step.table, step.rows, version, row_count)
                )
            elif step.kind == "kill":
                assert step.text is not None
                client.send({"op": "query", "text": step.text})
                client.kill()
                report.killed = True
                return
            elif step.kind == "garble":
                # A syntactically valid header announcing a body that is
                # not JSON: the server must answer typed (or just hang
                # up) without disturbing any other session.
                sock = client._sock
                body = b"\xff\xfe not json \x00"
                sock.sendall(len(body).to_bytes(4, "big") + body)
                report.garbled = True
                sock.close()
                return
            elif step.kind == "stall":
                time.sleep(step.seconds)
            else:
                raise ValueError(f"unknown swarm step kind {step.kind!r}")
        client.close()
    except Exception as error:
        report.errors.append(f"{type(error).__name__}: {error}")
        try:
            client.kill()
        except Exception:
            pass


def run_swarm(
    host: str,
    port: int,
    scripts: Sequence[Sequence[SwarmStep]],
) -> List[ClientReport]:
    """Run one scripted client per thread; returns their reports.

    All clients connect first, then start their scripts together
    behind a barrier — maximum interleaving pressure from the first
    statement on.
    """
    from repro.analysis import racecheck

    if racecheck.races_enabled():
        # Arm the Eraser-style lockset tracker over the serving
        # stack's shared classes: the swarm is exactly the concurrent
        # workload the checker wants to watch.
        racecheck.install_default()
    reports = [ClientReport(client_id=i) for i in range(len(scripts))]
    barrier = threading.Barrier(len(scripts))
    threads = [
        threading.Thread(
            target=_run_script,
            args=(host, port, i, script, reports[i], barrier),
            name=f"swarm-client-{i}",
        )
        for i, script in enumerate(scripts)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    return reports


# ---------------------------------------------------------------------------
# Serial reference
# ---------------------------------------------------------------------------


def serial_reference(
    initial: Callable[[], TemporalRelation],
    reports: Sequence[ClientReport],
    table: str,
) -> Callable[[str, int, int], List[tuple]]:
    """A serial oracle for one served table.

    ``initial`` rebuilds the table's pre-swarm state.  The observed
    appends (across all reports) are ordered by the server-assigned
    version; ``oracle(text, version, row_count)`` replays exactly the
    batches up to ``version``, asserts the row count matches the pin,
    and runs ``text`` serially with the default engine.
    """
    appends = sorted(
        (
            (version, rows, row_count)
            for report in reports
            for (t, rows, version, row_count) in report.appends
            if t.lower() == table.lower()
        ),
        key=lambda item: item[0],
    )
    versions = [version for version, _rows, _count in appends]
    if len(set(versions)) != len(versions):
        raise AssertionError(
            f"server assigned duplicate append versions: {versions}"
        )

    def oracle(text: str, version: int, row_count: int) -> List[tuple]:
        relation = initial()
        if relation.version != 0:
            raise AssertionError(
                "initial() must rebuild the pre-swarm relation at version 0"
            )
        for batch_version, rows, batch_count in appends:
            if batch_version > version:
                break
            appended = relation.append_batch(
                [(list(row[:-2]), row[-2], row[-1]) for row in rows]
            )
            # Replay must agree with the server's own accounting: the
            # batch landed as one version bump at this exact size.
            if relation.version != batch_version or len(relation) != batch_count:
                raise AssertionError(
                    f"replay diverged at version {batch_version}: "
                    f"replayed v{relation.version}/{len(relation)} rows vs "
                    f"acknowledged v{batch_version}/{batch_count} "
                    f"(+{appended})"
                )
        if len(relation) != row_count:
            raise AssertionError(
                f"pin (v{version}, {row_count} rows) does not match the "
                f"replayed prefix ({len(relation)} rows)"
            )
        database = Database()
        database.register(relation, name=table)
        return [tuple(row) for row in database.execute(text).rows]

    return oracle


def verify_swarm(
    initial: Callable[[], TemporalRelation],
    reports: Sequence[ClientReport],
    table: str,
) -> int:
    """Check every surviving query against the serial oracle.

    Returns the number of queries verified; raises ``AssertionError``
    with a row-level diff on the first mismatch.
    """
    oracle = serial_reference(initial, reports, table)
    verified = 0
    for report in reports:
        for text, reply in report.queries:
            expected = oracle(
                text, reply.pinned_version, reply.pinned_row_count
            )
            got = [tuple(row) for row in reply.rows]
            if got != expected:
                raise AssertionError(
                    f"client {report.client_id} query {text!r} pinned at "
                    f"v{reply.pinned_version} diverged from serial "
                    f"reference:\n  served: {got[:5]}...\n"
                    f"  serial: {expected[:5]}..."
                )
            verified += 1
    return verified
