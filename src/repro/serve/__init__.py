"""Concurrent multi-client query serving.

This package puts the evaluation engine behind a socket: an asyncio
front end accepts many simultaneous TSQL2-lite sessions, admission
control bounds how much work the process takes on, a fair round-robin
scheduler spreads admitted statements across a worker pool, and every
reader evaluates against a pinned snapshot of its relation so appends
from other sessions never tear a result.

Layering (each module only looks down):

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, the whole
  wire format.
* :mod:`repro.serve.config` — :class:`ServerConfig`, every knob in one
  frozen dataclass.
* :mod:`repro.serve.admission` — session/queue bounds and the overload
  degradation ladder (shed cache → force paged tree → reject with
  retry-after).
* :mod:`repro.serve.snapshots` — :class:`SnapshotView` prefix snapshots
  and :class:`ServedRelation`, the locked append point.
* :mod:`repro.serve.scheduler` — :class:`FairScheduler`, round-robin
  over sessions onto a thread pool, at most one in-flight statement per
  session (which is what keeps per-session replies ordered).
* :mod:`repro.serve.session` / :mod:`repro.serve.server` — connection
  state and :class:`QueryServer` itself.
* :mod:`repro.serve.client` — the blocking client library.
* :mod:`repro.serve.swarm` — the deterministic multi-client harness the
  acceptance tests and the serving benchmark drive.

``python -m repro.serve --seed`` starts a server on the paper's
Employed relation.
"""

from repro.exec.errors import ServerOverloaded
from repro.serve.client import QueryClient, QueryReply, RemoteQueryError
from repro.serve.config import ServerConfig
from repro.serve.protocol import ConnectionClosed, FrameError, MAX_FRAME_BYTES
from repro.serve.server import QueryServer, ServerRunner
from repro.serve.snapshots import ServedRelation, SnapshotView
from repro.serve.swarm import ClientReport, SwarmStep, run_swarm, serial_reference

__all__ = [
    "ClientReport",
    "ConnectionClosed",
    "FrameError",
    "MAX_FRAME_BYTES",
    "QueryClient",
    "QueryReply",
    "QueryServer",
    "RemoteQueryError",
    "ServedRelation",
    "ServerConfig",
    "ServerOverloaded",
    "ServerRunner",
    "SnapshotView",
    "SwarmStep",
    "run_swarm",
    "serial_reference",
]
