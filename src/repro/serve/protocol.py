"""The wire format: length-prefixed JSON frames.

Every message in either direction is one *frame*: a 4-byte big-endian
unsigned length followed by exactly that many bytes of UTF-8 JSON
encoding one object.  The format is deliberately boring — it has to be
implementable from this docstring alone:

* length ``0`` is invalid (every frame carries an object);
* lengths above :data:`MAX_FRAME_BYTES` are refused *before* reading
  the body, so a garbage header cannot make the server allocate
  gigabytes;
* the body must decode as UTF-8 JSON whose top level is an object.

Violations raise :class:`FrameError`; a clean end-of-stream before a
complete header raises :class:`ConnectionClosed` so callers can tell a
departed peer from a misbehaving one.

Requests carry ``{"op": ...}`` plus op-specific fields (``query``,
``append``, ``stats``, ``ping``, ``close``); replies carry
``{"ok": true, ...}`` or ``{"ok": false, "error": {"type", "message",
"hint", ...}}``.  The op vocabulary lives in
:mod:`repro.serve.server`; this module only moves frames.

Both a blocking-socket flavor (client library, tests) and an asyncio
flavor (server) are provided over the same encode/decode core.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict

from repro.exec.errors import TemporalAggregateError

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "ConnectionClosed",
    "encode_frame",
    "decode_body",
    "send_frame",
    "recv_frame",
    "write_frame",
    "read_frame",
]

#: Hard ceiling on one frame's body.  Large enough for tens of
#: thousands of result rows, small enough that a hostile length header
#: cannot balloon server memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(TemporalAggregateError):
    """A malformed frame: bad length, bad UTF-8, bad JSON, or a
    non-object body.  The peer that sent it is not speaking the
    protocol; the server answers once (when it can) and hangs up."""


class ConnectionClosed(Exception):
    """The peer closed the connection at a frame boundary (clean EOF),
    or mid-frame (the message carries which)."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One frame's bytes: header + UTF-8 JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body; raises :class:`FrameError` on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame body is not UTF-8 JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _checked_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


# ---------------------------------------------------------------------------
# Blocking sockets (client library, tests)
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Encode and send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int, context: str) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and context == "header":
                raise ConnectionClosed("peer closed at a frame boundary")
            raise ConnectionClosed(f"peer closed mid-{context}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one complete frame from a blocking socket."""
    header = _recv_exact(sock, _HEADER.size, "header")
    length = _checked_length(header)
    return decode_body(_recv_exact(sock, length, "body"))


# ---------------------------------------------------------------------------
# asyncio streams (server)
# ---------------------------------------------------------------------------


def write_frame(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio transport (caller drains)."""
    writer.write(encode_frame(payload))


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one complete frame from an asyncio stream."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ConnectionClosed("peer closed at a frame boundary") from None
        raise ConnectionClosed("peer closed mid-header") from None
    length = _checked_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionClosed("peer closed mid-body") from None
    return decode_body(body)
