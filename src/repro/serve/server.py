"""The query server: asyncio front end over the evaluation engine.

One :class:`QueryServer` serves many concurrent TSQL2-lite sessions
over the frame protocol (:mod:`repro.serve.protocol`).  The division
of labor per connection:

* the **reader coroutine** (event-loop thread) parses frames, answers
  the cheap ops inline (``ping``, ``stats``, ``close``), and runs
  ``query``/``append`` through admission
  (:class:`~repro.serve.admission.AdmissionController`) into the fair
  scheduler;
* a **worker thread** executes the statement against snapshot-pinned
  relations (:mod:`repro.serve.snapshots`) under the per-statement
  deadline/memory budgets and whatever degradation level admission
  assigned;
* the reader's session object sends the reply (or drops it if the
  client died mid-query — a kill never wedges a worker).

Failures cross the wire as typed error frames: ``{"ok": false,
"error": {"type", "message", "hint", ...}}`` with the same recovery
hints the shell prints (:func:`repro.tsql2.shell.recovery_hint`), plus
``retry_after_ms`` on every ``ServerOverloaded``.

:class:`ServerRunner` hosts a server on a dedicated thread with its
own event loop — the harness the blocking client library, the tests,
and the serving benchmark all use.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cache.store import default_cache
from repro.exec.deadline import Deadline
from repro.exec.errors import (
    NotPrimary,
    ReplicaLagExceeded,
    ServerOverloaded,
    TemporalAggregateError,
)
from repro.metrics.counters import ThreadLocalCounters
from repro.relation.relation import TemporalRelation
from repro.serve.admission import AdmissionController, DegradationLevel
from repro.serve.config import ServerConfig
from repro.serve.protocol import ConnectionClosed, FrameError, read_frame, write_frame
from repro.serve.scheduler import FairScheduler, Statement
from repro.serve.session import Session
from repro.serve.snapshots import ServedRelation
from repro.tsql2.executor import Database, StatementLimits, TSQL2SemanticError
from repro.tsql2.lexer import TSQL2SyntaxError
from repro.tsql2.parser import parse
from repro.tsql2.shell import recovery_hint

__all__ = ["QueryServer", "ServerRunner", "DEDUP_WINDOW"]

#: Idempotent-statement dedup window: how many acknowledged statement
#: ids the server remembers.  Matches the journal's STATEMENT
#: retention so a recovered/promoted node can reseed the full window.
DEDUP_WINDOW = 256


def _error_frame(error: BaseException) -> Dict[str, Any]:
    """Encode any failure as a typed error frame."""
    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, TemporalAggregateError):
        payload["hint"] = recovery_hint(error)
    if isinstance(error, ServerOverloaded):
        payload["retry_after_ms"] = error.retry_after_ms
        payload["reason"] = error.reason
    if isinstance(error, NotPrimary):
        payload["role"] = error.role
        payload["primary_hint"] = error.primary_hint
    if isinstance(error, ReplicaLagExceeded):
        payload["token_version"] = error.token_version
        payload["applied_version"] = error.applied_version
        payload["retry_after_ms"] = error.retry_after_ms
    epoch = getattr(error, "epoch", None)
    if epoch is not None:
        payload["epoch"] = epoch
        payload["observed_epoch"] = getattr(error, "observed_epoch", None)
    deadline_ms = getattr(error, "deadline_ms", None)
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
        payload["elapsed_ms"] = getattr(error, "elapsed_ms", None)
    return {"ok": False, "error": payload}


class QueryServer:
    """A bounded, snapshot-isolated, degradation-aware query server."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.admission = AdmissionController(self.config)
        self.scheduler = FairScheduler(self.config.workers)
        #: Server-side operation counters, merged exactly across worker
        #: threads for the stats frame.
        self.counters = ThreadLocalCounters()
        self._served: Dict[str, ServedRelation] = {}
        self._sessions: Dict[int, Session] = {}
        self._sid_counter = 0
        #: Live replication role; seeded from config, mutated by the
        #: replication node on promotion/demotion (a plain attribute —
        #: reference assignment is atomic under the GIL and readers
        #: only branch on it).
        self.role = self.config.role  # ta: unguarded
        self._dedup_lock = threading.Lock()
        #: Acknowledged (sid -> (version, row_count)) window for
        #: idempotent appends; a retried sid is re-acknowledged with
        #: the original identity instead of applying twice.
        self._dedup: "OrderedDict[str, Tuple[int, int]]" = (
            OrderedDict()
        )  # ta: guarded-by(self._dedup_lock)
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._started_monotonic = 0.0
        self.port: Optional[int] = None
        #: The resident worker pool this server started (None when
        #: ``config.pool_workers`` is 0 or the platform lacks fork).
        self._pool: Optional[Any] = None

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def register(
        self, relation: TemporalRelation, name: Optional[str] = None
    ) -> ServedRelation:
        """Serve ``relation`` under ``name`` (default: its own name).

        Must happen before clients query it; the relation becomes
        append-only from here on (snapshot isolation relies on it).
        """
        served = ServedRelation(relation, name=name or relation.name)
        self._served[served.name.lower()] = served
        return served

    def served(self, name: str) -> ServedRelation:
        served = self._served.get(name.lower())
        if served is None:
            known = ", ".join(sorted(self._served)) or "(none)"
            raise TSQL2SemanticError(
                f"unknown relation {name!r}; served: {known}"
            )
        return served

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves once the port is bound."""
        if self.config.pool_workers > 0:
            # Fork the resident workers once, before any statement
            # runs: every query served afterwards reuses these
            # processes (pool_forks stays at worker count for the
            # server's whole life unless a worker crashes).  Acquired,
            # not merely fetched: the pool is process-wide, and a
            # reference per server keeps one server's stop() from
            # unlinking segments another user still sweeps over.
            from repro.exec.pool import acquire_default_pool

            self._pool = acquire_default_pool(self.config.pool_workers)
            if self._pool is not None:
                self._pool.start(counters=self.counters.local())
        self._server = await asyncio.start_server(
            self._on_connect, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self.scheduler.run()
        )

    async def stop(self) -> None:
        """Stop accepting, close sessions, drain the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            session.closed = True
            try:
                session.writer.close()
            except Exception:
                pass
        await self.scheduler.stop()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            # Drop this server's reference on the process-wide pool;
            # the last reference out actually stops it (workers exit,
            # every published segment unlinks).
            from repro.exec.pool import release_default_pool

            self._pool = None
            release_default_pool()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling (event-loop thread)
    # ------------------------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            self.admission.admit_session()
        except ServerOverloaded as error:
            # Refused at the door: one typed hello-error frame, then
            # hang up.  The client library raises this as-is.
            try:
                write_frame(writer, _error_frame(error))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return

        self._sid_counter += 1
        session = Session(self._sid_counter, writer)
        self._sessions[session.sid] = session
        self.scheduler.add_session(session)
        try:
            await session.send(
                {
                    "ok": True,
                    "op": "hello",
                    "session": session.sid,
                    "server": "repro-serve",
                    "max_queue_depth": self.config.max_queue_depth,
                    "tables": sorted(self._served),
                    "role": self.role,
                    **self.hello_extra(),
                }
            )
            await self._session_loop(reader, session)
        except ConnectionClosed:
            pass
        except FrameError as error:
            # A peer that stops speaking the protocol gets one typed
            # answer (best effort) and is disconnected: resynchronizing
            # inside a length-prefixed stream is impossible.
            await session.send(_error_frame(error))
        except (ConnectionError, OSError):
            pass
        finally:
            self._close_session(session)

    async def _session_loop(
        self, reader: asyncio.StreamReader, session: Session
    ) -> None:
        while not session.closed:
            frame = await read_frame(reader)
            op = frame.get("op")
            if op == "ping":
                await session.send({"ok": True, "op": "pong"})
            elif op == "stats":
                await session.send({"ok": True, "op": "stats", "stats": self.stats()})
            elif op == "close":
                await session.send({"ok": True, "op": "closed"})
                return
            elif op == "query":
                self._admit(session, frame, self._query_statement)
            elif op == "append":
                refusal = self._refuse_write()
                if refusal is not None:
                    # Not the primary: the typed refusal rides the
                    # normal queue so it leaves in order with other
                    # replies (mirror of statement-level rejection).
                    self.scheduler.submit(
                        session, _InlineReply(_error_frame(refusal))
                    )
                else:
                    self._admit(session, frame, self._append_statement)
            else:
                if await self._handle_extra_op(str(op), frame, session):
                    continue
                await session.send(
                    _error_frame(FrameError(f"unknown op {op!r}"))
                )
                return

    def _admit(
        self,
        session: Session,
        frame: Dict[str, Any],
        builder: "Callable[..., Statement]",
    ) -> None:
        """Run one statement frame through admission into the scheduler."""
        try:
            level = self.admission.admit_statement(len(session.queue))
        except ServerOverloaded as error:
            # Statement-level rejection: the session survives, the
            # client backs off by retry_after_ms.  The error frame rides
            # the normal queue so it leaves in order with other replies.
            self.scheduler.submit(session, _InlineReply(_error_frame(error)))
            return
        statement = builder(frame, level, session)
        statement.on_done = self.admission.statement_done
        self.scheduler.submit(session, statement)

    def _close_session(self, session: Session) -> None:
        session.closed = True
        self._sessions.pop(session.sid, None)
        self.scheduler.remove_session(session)
        # Admitted-but-unrun statements are dropped; each still owes
        # admission a completion so the outstanding count drains.
        while session.queue:
            statement = session.queue.popleft()
            statement.finish()
        try:
            session.writer.close()
        except Exception:
            pass
        self.admission.release_session()

    # ------------------------------------------------------------------
    # Replication extension points (overridden by repro.replicate)
    # ------------------------------------------------------------------

    def hello_extra(self) -> Dict[str, Any]:
        """Extra hello-frame fields (epoch, stream uids, peer hints).

        The base server has none; the replication node overrides this
        to stamp its epoch and journal identity into every handshake.
        """
        return {}

    async def _handle_extra_op(
        self, op: str, frame: Dict[str, Any], session: Session
    ) -> bool:
        """Handle a non-core op; return True if ``op`` was consumed.

        The replication node overrides this for the ``rep.*`` ops
        (shipping, heartbeat, promotion).  The base server knows none,
        so unknown ops keep falling through to the protocol error.
        """
        return False

    def _refuse_write(self) -> Optional[TemporalAggregateError]:
        """The typed refusal for write ops, or None to accept them.

        A replica (or a fenced, deposed primary) returns ``NotPrimary``
        / ``StaleEpoch`` here; the base server — and any node whose
        live role is primary — accepts.
        """
        if self.role == "primary":
            return None
        return NotPrimary(
            f"node is a {self.role}, not the primary; writes refused",
            role=self.role,
            primary_hint=self._primary_hint(),
        )

    def _primary_hint(self) -> Optional[str]:
        """Best guess at the live primary's ``host:port`` (or None)."""
        return None

    def _apply_append(
        self,
        served: ServedRelation,
        batch: Any,
        sid: Optional[str],
    ) -> Tuple[int, int]:
        """Apply one validated append batch; returns (version, rows).

        The replication node overrides this to journal the batch (with
        its STATEMENT ledger record) and ship it to replicas before
        acknowledging.  The base server applies in memory.
        """
        return served.append_batch(batch)

    def _stream_uid(self, served: ServedRelation) -> str:
        """The replication stream identity read tokens bind to."""
        return f"local:{served.base.uid}"

    def _replication_stats(self) -> Optional[Dict[str, Any]]:
        """The stats frame's ``replication`` section (None = omit)."""
        return None

    # ------------------------------------------------------------------
    # Idempotent-statement dedup window
    # ------------------------------------------------------------------

    def dedup_lookup(self, sid: str) -> Optional[Tuple[int, int]]:
        """The acknowledged ``(version, row_count)`` for ``sid``, if
        it is still inside the window."""
        with self._dedup_lock:
            return self._dedup.get(sid)

    def dedup_record(self, sid: str, version: int, row_count: int) -> None:
        """Remember ``sid``'s acknowledged identity (bounded window)."""
        with self._dedup_lock:
            self._dedup[sid] = (version, row_count)
            self._dedup.move_to_end(sid)
            while len(self._dedup) > DEDUP_WINDOW:
                self._dedup.popitem(last=False)

    def seed_dedup(self, entries: Any) -> None:
        """Reseed the window from recovered ``(sid, version, rows)``
        ledger entries — how a restarted or promoted node keeps the
        exactly-once guarantee across the failover."""
        for sid, version, row_count in entries:
            self.dedup_record(str(sid), int(version), int(row_count))

    # ------------------------------------------------------------------
    # Statement builders (closures executed on worker threads)
    # ------------------------------------------------------------------

    def _statement_limits(self, level: DegradationLevel) -> StatementLimits:
        return StatementLimits(
            deadline=Deadline.after_ms(self.config.deadline_ms),
            memory_budget_bytes=self.config.memory_budget_bytes,
            # Rung 2: force every new statement onto the low-memory
            # spilling paged tree.
            strategy_override=(
                "paged_tree" if level >= DegradationLevel.FORCE_PAGED else None
            ),
            # Rung 1 already shed the shared cache; stop re-filling it
            # until load returns to normal.
            prefer_cache=(level is DegradationLevel.NORMAL),
        )

    def _debug_delay(self) -> None:
        if self.config.debug_statement_delay_ms:
            time.sleep(self.config.debug_statement_delay_ms / 1000.0)

    def _pin_at_admit(
        self, session: Session, text: Any, level: DegradationLevel
    ) -> "Optional[tuple]":
        """Pin a query's snapshot at admission, when that is sound.

        Pinning early is what makes two identical queries from
        different sessions *provably* the same work — both carry the
        same ``(table, version)`` before either runs, so the scheduler
        can coalesce them into one flight.  It is only sound when this
        session has nothing queued or running: a queued append must
        become visible to a query submitted after it (read-your-writes),
        so such queries keep pinning at run time and never coalesce.

        Returns ``(served, view, coalesce_key)`` or None.
        """
        if not self.config.coalesce:
            return None
        if session.queue or session.in_flight:
            return None
        if not isinstance(text, str) or not text.strip():
            return None
        try:
            query = parse(text)
            served = self.served(query.table)
            view = served.pin()
        except (TSQL2SyntaxError, TSQL2SemanticError, TemporalAggregateError):
            # Let the run-time path produce the (uncoalesced) error.
            return None
        key = (
            "query",
            served.name.lower(),
            view.version,
            text.strip(),
            int(level),
        )
        return served, view, key

    def _query_statement(
        self,
        frame: Dict[str, Any],
        level: DegradationLevel,
        session: Session,
    ) -> Statement:
        text = frame.get("text")
        token = frame.get("token")
        # A read token must be checked against the freshest view, and a
        # tokened query must never coalesce with a tokenless flight
        # (the follower would receive rows instead of the typed lag
        # refusal) — so tokened queries always pin at run time.
        pinned = None if token is not None else self._pin_at_admit(
            session, text, level
        )

        def run() -> Dict[str, Any]:
            started = time.perf_counter()
            self._debug_delay()
            if not isinstance(text, str) or not text.strip():
                return _error_frame(
                    TSQL2SemanticError("query op needs a non-empty 'text'")
                )
            try:
                if pinned is not None:
                    served, view = pinned[0], pinned[1]
                else:
                    query = parse(text)
                    served = self.served(query.table)
                    view = served.pin()
                if token is not None:
                    self._check_read_token(token, served, view)
                database = Database()
                database.register(view, name=served.name)
                limits = self._statement_limits(level)
                result = database.execute(text, limits=limits)
            except TemporalAggregateError as error:
                return _error_frame(error)
            except (TSQL2SyntaxError, TSQL2SemanticError) as error:
                return _error_frame(error)
            local = self.counters.local()
            local.emitted += len(result)
            return {
                "ok": True,
                "op": "query",
                "columns": list(result.columns),
                "rows": [list(row) for row in result.rows],
                "pinned": {
                    "table": served.name,
                    "version": view.version,
                    "row_count": len(view),
                },
                "degraded": int(level),
                "role": self.role,
                "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            }

        return Statement(
            run=run,
            label="query",
            coalesce_key=None if pinned is None else pinned[2],
        )

    def _check_read_token(
        self, token: Any, served: ServedRelation, view: Any
    ) -> None:
        """Enforce a ``(uid, version)`` read token against ``view``.

        A token binding this served relation's stream demands the view
        be at least as new as the version the client last wrote or
        read — the read-your-writes half of bounded staleness.  Tokens
        for other streams are not binding here.
        """
        if not isinstance(token, dict):
            raise TSQL2SemanticError(
                "read token must be {'uid': ..., 'version': ...}"
            )
        uid = str(token.get("uid", ""))
        wanted = int(token.get("version", 0))
        if uid != self._stream_uid(served):
            return
        if wanted > view.version:
            raise ReplicaLagExceeded(
                f"read token demands {served.name} version {wanted}, "
                f"but this node has applied only {view.version}",
                token_version=wanted,
                applied_version=view.version,
                retry_after_ms=self.config.retry_after_ms,
            )

    def _append_statement(
        self,
        frame: Dict[str, Any],
        level: DegradationLevel,
        session: Session,
    ) -> Statement:
        table = frame.get("table")
        rows = frame.get("rows")
        raw_sid = frame.get("sid")
        sid = raw_sid if isinstance(raw_sid, str) and raw_sid else None

        def run() -> Dict[str, Any]:
            started = time.perf_counter()
            self._debug_delay()
            if not isinstance(table, str) or not isinstance(rows, list) or not rows:
                return _error_frame(
                    TSQL2SemanticError(
                        "append op needs 'table' and a non-empty 'rows' list"
                    )
                )
            try:
                served = self.served(table)
                deduplicated = False
                hit = None if sid is None else self.dedup_lookup(sid)
                if hit is not None:
                    # The statement was already acknowledged once: the
                    # retry gets the original identity, the relation
                    # is untouched (exactly-once across retries and
                    # failover).
                    version, row_count = hit
                    deduplicated = True
                else:
                    batch = []
                    for row in rows:
                        if not isinstance(row, list) or len(row) < 2:
                            raise TSQL2SemanticError(
                                "each append row is [value..., start, end]"
                            )
                        batch.append((row[:-2], row[-2], row[-1]))
                    version, row_count = self._apply_append(served, batch, sid)
                    if sid is not None:
                        self.dedup_record(sid, version, row_count)
            except TemporalAggregateError as error:
                return _error_frame(error)
            except (TSQL2SemanticError, ValueError) as error:
                return _error_frame(error)
            local = self.counters.local()
            if not deduplicated:
                local.tuples += len(rows)
            return {
                "ok": True,
                "op": "append",
                "table": served.name,
                "appended": 0 if deduplicated else len(rows),
                "version": version,
                "row_count": row_count,
                "deduplicated": deduplicated,
                "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            }

        return Statement(run=run, label="append", is_write=True)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _pool_stats(self) -> Dict[str, Any]:
        """The ``pool`` section of the stats frame."""
        pool = self._pool
        if pool is None:
            return {"workers": 0, "forks": 0, "live_segments": 0}
        return {
            "workers": pool.worker_count,
            "forks": pool.forks_total,
            "live_segments": len(pool.store.live_segment_names()),
            "segments_published": pool.store.published_total,
            "segments_reclaimed": pool.store.reclaimed_total,
        }

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` frame body: admission, scheduler, cache, tables."""
        cache = default_cache()
        with cache.lock:
            cache_stats = {
                "entries": len(cache),
                "live_bytes": cache.live_bytes,
                "budget_bytes": cache.budget_bytes,
                "hits": cache.counters.cache_hits,
                "misses": cache.counters.cache_misses,
                "evictions": cache.counters.cache_evictions,
                "dirty_shards": cache.counters.cache_dirty_shards,
            }
        body: Dict[str, Any] = {
            "uptime_ms": round(
                (time.monotonic() - self._started_monotonic) * 1000.0, 1
            ),
            "role": self.role,
            "admission": self.admission.snapshot(),
            "scheduler": {
                "workers": self.config.workers,
                "statements_started": self.scheduler.statements_started,
                "statements_finished": self.scheduler.statements_finished,
                "coalesced_statements": self.scheduler.coalesced_statements,
                "fenced_statements": self.scheduler.fenced_statements,
            },
            "pool": self._pool_stats(),
            "cache": cache_stats,
            "counters": self.counters.snapshot(),
            # Per-table pairs come from ServedRelation.stats(), which
            # reads (version, row_count) under the append lock: the
            # old unlocked len(base)/base.version reads here could
            # tear across a concurrent append.
            "tables": {
                served.name: {"rows": row_count, "version": version}
                for served in self._served.values()
                for version, row_count in (served.stats(),)
            },
        }
        replication = self._replication_stats()
        if replication is not None:
            body["replication"] = replication
        return body


class _InlineReply(Statement):
    """A pre-computed reply frame queued like a statement.

    Used for statement-level rejections: the error frame must leave in
    order with the session's other replies, so it rides the same queue
    — but it costs no worker and owes admission nothing.
    """

    def __init__(self, reply: Dict[str, Any]) -> None:
        super().__init__(run=lambda: reply, label="rejection")


class ServerRunner:
    """Host a :class:`QueryServer` on a dedicated event-loop thread.

    The blocking-world harness: tests, the swarm, the benchmark, and
    the CLI's programmatic users start a runner, talk to
    ``runner.port`` with :class:`~repro.serve.client.QueryClient`, and
    ``stop()`` it.  Usable as a context manager.
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_signal: Optional[asyncio.Future] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "runner not started"
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self, timeout: float = 10.0) -> "ServerRunner":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within the timeout")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop_signal = loop.create_future()
        self._stop_signal = stop_signal

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            await stop_signal
            await self.server.stop()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        def _signal() -> None:
            if not self._stop_signal.done():
                self._stop_signal.set_result(None)

        loop.call_soon_threadsafe(_signal)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServerRunner":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
