"""Admission control and the overload degradation ladder.

The server never takes on unbounded work.  Three bounds, enforced
here, keep it answerable under any client behavior:

1. **Sessions** — at most ``max_sessions`` concurrent connections; the
   next is refused at the door with a typed
   :class:`~repro.exec.errors.ServerOverloaded` (``reason="sessions"``).
2. **Per-session queue** — at most ``max_queue_depth`` statements
   queued behind a session's in-flight one; excess statements are
   refused (``reason="queue"``) while the session itself survives.
3. **The ladder** — admitted load degrades *gracefully* before it is
   refused.  The controller tracks outstanding statements (queued +
   running) as a ratio of worker capacity and maps it to a level:

   ========  ==================  =========================================
   level     threshold           effect on newly admitted statements
   ========  ==================  =========================================
   0 NORMAL  below ``shed``      full service: shared result cache on
   1 SHED    ``shed_load``       shed the shared cache once, stop
                                 routing new statements through it
   2 DEGRADE ``degrade_load``    additionally force the low-memory
                                 ``paged_tree`` strategy
   3 REJECT  ``reject_load``     refuse (``reason="overload"``) with a
                                 ``retry_after_ms`` hint
   ========  ==================  =========================================

   The cache is shed exactly once per overload excursion (re-armed when
   load returns to NORMAL), so a load spike cannot thrash the cache
   with repeated shed storms.

Everything is guarded by one lock: admission decisions are taken on
the event-loop thread, completions are reported from worker threads.
"""

from __future__ import annotations

import threading
from enum import IntEnum
from typing import Callable, Dict, Optional

from repro.cache.store import shed_default_cache
from repro.exec.errors import ServerOverloaded
from repro.serve.config import ServerConfig

__all__ = ["DegradationLevel", "AdmissionController"]


class DegradationLevel(IntEnum):
    """Rungs of the overload ladder, in order of increasing distress."""

    NORMAL = 0
    SHED_CACHE = 1
    FORCE_PAGED = 2
    REJECT = 3


class AdmissionController:
    """Bounded admission with load-proportional degradation."""

    def __init__(
        self,
        config: ServerConfig,
        *,
        shed: Optional[Callable[[], int]] = None,
    ) -> None:
        self.config = config
        #: The cache-shedding hook level 1 fires (injectable for tests).
        self._shed = shed if shed is not None else shed_default_cache
        self._lock = threading.Lock()
        self._sessions = 0  # ta: guarded-by(self._lock)
        self._outstanding = 0  # ta: guarded-by(self._lock)
        self._shed_armed = True  # ta: guarded-by(self._lock)
        # Tallies for the stats frame: bumped from both the event-loop
        # thread (admission) and worker threads (completion), so every
        # one of these read-modify-writes needs the lock.
        self.sessions_admitted = 0  # ta: guarded-by(self._lock)
        self.sessions_rejected = 0  # ta: guarded-by(self._lock)
        self.statements_admitted = 0  # ta: guarded-by(self._lock)
        self.statements_rejected_queue = 0  # ta: guarded-by(self._lock)
        self.statements_rejected_overload = 0  # ta: guarded-by(self._lock)
        self.cache_sheds = 0  # ta: guarded-by(self._lock)
        self.shed_bytes_released = 0  # ta: guarded-by(self._lock)
        self.degraded_statements = 0  # ta: guarded-by(self._lock)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def admit_session(self) -> int:
        """Claim a session slot, or raise ``ServerOverloaded``."""
        with self._lock:
            if self._sessions >= self.config.max_sessions:
                self.sessions_rejected += 1
                raise ServerOverloaded(
                    f"session limit of {self.config.max_sessions} reached",
                    retry_after_ms=self.config.retry_after_ms,
                    reason="sessions",
                )
            self._sessions += 1
            self.sessions_admitted += 1
            return self._sessions

    def release_session(self) -> None:
        with self._lock:
            self._sessions -= 1

    # ------------------------------------------------------------------
    # Statements and the ladder
    # ------------------------------------------------------------------

    def _load_locked(self) -> float:
        return self._outstanding / self.config.workers

    def _level_locked(self, load: float) -> DegradationLevel:
        if load >= self.config.reject_load:
            return DegradationLevel.REJECT
        if load >= self.config.degrade_load:
            return DegradationLevel.FORCE_PAGED
        if load >= self.config.shed_load:
            return DegradationLevel.SHED_CACHE
        return DegradationLevel.NORMAL

    def load(self) -> float:
        """Outstanding statements per worker, right now."""
        with self._lock:
            return self._load_locked()

    def level(self) -> DegradationLevel:
        """The ladder rung current load maps to (no side effects)."""
        with self._lock:
            return self._level_locked(self._load_locked())

    def admit_statement(self, queued_depth: int) -> DegradationLevel:
        """Admit one statement from a session with ``queued_depth``
        statements already waiting.

        Returns the degradation level the statement must run at, or
        raises :class:`ServerOverloaded` (``reason="queue"`` for a full
        per-session queue, ``reason="overload"`` at the top rung).
        Admission counts the statement as outstanding; the caller owns
        a matching :meth:`statement_done`, including for statements it
        later drops unrun.
        """
        shed_now = False
        try:
            with self._lock:
                if queued_depth >= self.config.max_queue_depth:
                    self.statements_rejected_queue += 1
                    raise ServerOverloaded(
                        f"session queue depth limit of "
                        f"{self.config.max_queue_depth} reached",
                        retry_after_ms=self.config.retry_after_ms,
                        reason="queue",
                    )
                # The level is judged as if this statement were already
                # queued: capacity is about what admitting it *creates*.
                level = self._level_locked(
                    (self._outstanding + 1) / self.config.workers
                )
                if level is DegradationLevel.REJECT:
                    self.statements_rejected_overload += 1
                    raise ServerOverloaded(
                        f"overloaded: {self._outstanding} statements "
                        f"outstanding against {self.config.workers} workers",
                        retry_after_ms=self.config.retry_after_ms,
                        reason="overload",
                    )
                self._outstanding += 1
                self.statements_admitted += 1
                if level >= DegradationLevel.SHED_CACHE and self._shed_armed:
                    self._shed_armed = False
                    shed_now = True
                    self.cache_sheds += 1
                if level >= DegradationLevel.FORCE_PAGED:
                    self.degraded_statements += 1
                return level
        finally:
            if shed_now:
                # Outside the lock: shedding walks the whole cache.
                released = self._shed()
                # The tally bump re-takes the lock: the unlocked
                # read-modify-write here raced concurrent shed
                # excursions and tore reads in snapshot() (found by
                # TA011 once the tallies were annotated).
                with self._lock:
                    self.shed_bytes_released += released

    def statement_done(self) -> None:
        """One admitted statement finished (or was dropped unrun)."""
        with self._lock:
            self._outstanding -= 1
            if self._level_locked(self._load_locked()) is DegradationLevel.NORMAL:
                self._shed_armed = True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The stats-frame view of admission state."""
        with self._lock:
            load = self._load_locked()
            return {
                "active_sessions": self._sessions,
                "max_sessions": self.config.max_sessions,
                "outstanding_statements": self._outstanding,
                "load": round(load, 4),
                "level": int(self._level_locked(load)),
                "sessions_admitted": self.sessions_admitted,
                "sessions_rejected": self.sessions_rejected,
                "statements_admitted": self.statements_admitted,
                "statements_rejected_queue": self.statements_rejected_queue,
                "statements_rejected_overload": self.statements_rejected_overload,
                "cache_sheds": self.cache_sheds,
                "shed_bytes_released": self.shed_bytes_released,
                "degraded_statements": self.degraded_statements,
            }
