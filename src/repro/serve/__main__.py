"""CLI entry point: ``python -m repro.serve``.

Starts a query server on the given address and serves until
interrupted::

    $ python -m repro.serve --seed --port 7474
    serving on 127.0.0.1:7474 (tables: employed) — Ctrl-C to stop

``--load PATH[:NAME]`` serves temporal CSVs; ``--seed`` serves the
paper's Employed relation.  The admission/degradation knobs mirror
:class:`~repro.serve.config.ServerConfig`.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.serve.config import ServerConfig
from repro.serve.server import QueryServer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent TSQL2-lite query server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--seed", action="store_true", help="serve Employed")
    parser.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="PATH[:NAME]",
        help="serve a temporal CSV (optionally as :NAME)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-sessions", type=int, default=32)
    parser.add_argument("--max-queue-depth", type=int, default=8)
    parser.add_argument(
        "--deadline-ms", type=float, default=None, help="per-statement deadline"
    )
    parser.add_argument(
        "--memory-budget-bytes",
        type=int,
        default=None,
        help="per-statement memory budget",
    )
    return parser


async def _serve(server: QueryServer) -> None:
    await server.start()
    tables = ", ".join(sorted(server.stats()["tables"])) or "(none)"
    print(
        f"serving on {server.config.host}:{server.port} "
        f"(tables: {tables}) — Ctrl-C to stop",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_sessions=args.max_sessions,
        max_queue_depth=args.max_queue_depth,
        deadline_ms=args.deadline_ms,
        memory_budget_bytes=args.memory_budget_bytes,
    )
    server = QueryServer(config)
    if args.seed:
        from repro.workload.employed import employed_relation

        server.register(employed_relation(), name="Employed")
    for spec in args.load:
        from repro.relation.io import read_csv

        path, _, name = spec.partition(":")
        relation = read_csv(path, name=name or "loaded", on_error="quarantine")
        server.register(relation, name=name or relation.name)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        print("stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
