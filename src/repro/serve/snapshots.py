"""Snapshot isolation for served relations.

A reader evaluating a statement while other sessions append must see a
*consistent* relation: either all of an append batch or none of it,
and never rows appearing mid-scan.  Served relations get this from the
append-only discipline plus prefix pinning:

* :class:`ServedRelation` is the single append point.  Appends go
  through one lock and map one client operation to exactly one version
  bump (:meth:`~repro.relation.relation.TemporalRelation.append_batch`),
  so a version number identifies an exact prefix of append batches.
* :meth:`ServedRelation.pin` captures ``(version, row_count,
  fingerprint)`` under that lock and wraps them in a
  :class:`SnapshotView` — a read-only view of the first ``row_count``
  rows.  Existing rows are immutable and appends only grow the row
  list, so the view's prefix stays byte-identical no matter how many
  appends land after the pin (CPython's list append never moves
  already-published elements under readers).

A :class:`SnapshotView` speaks the full result-cache protocol with the
**base relation's uid** and its own pinned version/fingerprint.  That
is what makes the shared server cache work across concurrent appends:
a result computed at version ``v`` pure-hits any later statement
pinned at ``v``, and a statement pinned at ``v+k`` append-delta
refreshes it over exactly the ``k`` batches in between
(:meth:`SnapshotView.triples_since` /
:meth:`SnapshotView.verify_append_chain` operate on the pinned
prefix).  No locks are held while evaluating — pinning is the only
synchronized step.

Snapshot correctness relies on the served base being append-only;
:class:`ServedRelation` exposes no reorder operation for exactly that
reason.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import islice
from typing import TYPE_CHECKING, Any, Callable, Iterator, List, Optional, Tuple

from repro.relation.relation import RelationStatistics, TemporalRelation
from repro.relation.tuples import TemporalTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.columns import ColumnSet
    from repro.core.interval import Interval

__all__ = ["SnapshotView", "ServedRelation", "PIN_MEMO_LIMIT"]

#: Snapshot views memoized per served relation (LRU by version).  Small:
#: under steady appends only the newest couple of versions are pinned.
PIN_MEMO_LIMIT = 8


class SnapshotView:
    """A read-only prefix of a relation, pinned at one version.

    Presents enough of the :class:`TemporalRelation` surface for the
    executor and the engine (scan, statistics, columns, sort) plus the
    full result-cache protocol, all restricted to the pinned prefix.
    Views are shared across worker threads — every method is safe to
    call concurrently.
    """

    supports_result_cache = True

    def __init__(
        self,
        base: TemporalRelation,
        version: int,
        row_count: int,
        fingerprint: int,
    ) -> None:
        self._base = base
        self.schema = base.schema
        self.name = f"{base.name}@v{version}"
        #: The *base* relation's uid: snapshots of one relation share
        #: cache entries, which is the whole point of pinning.
        self.uid = base.uid
        self.version = version
        self.fingerprint = fingerprint
        self._row_count = row_count
        self._stats_lock = threading.Lock()
        self.scan_count = 0  # ta: guarded-by(self._stats_lock)
        self._materialize_lock = threading.Lock()
        # Deliberately lock-free on the read side (double-checked
        # publication): _working() reads it unlocked on the fast path
        # and only takes _materialize_lock to build-and-publish once.
        # Safe under the GIL — the reference assignment is atomic and
        # the relation is fully built before it is published.
        self._materialized: Optional[TemporalRelation] = None  # ta: unguarded

    # ------------------------------------------------------------------
    # Row access (prefix-limited, copy-free)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def __iter__(self) -> Iterator[TemporalTuple]:
        return self._base.iter_prefix(self._row_count)

    def rows(self) -> List[TemporalTuple]:
        return list(self._base.iter_prefix(self._row_count))

    def scan(self) -> Iterator[TemporalTuple]:
        # Views are shared across worker threads; the unlocked += here
        # was a lost-update race between concurrent statements.
        with self._stats_lock:
            self.scan_count += 1
        return self._base.iter_prefix(self._row_count)

    def scan_triples(
        self, attribute: Optional[str] = None
    ) -> Iterator[Tuple[int, int, Any]]:
        extractor = self.value_extractor(attribute)
        with self._stats_lock:
            self.scan_count += 1
        for row in self._base.iter_prefix(self._row_count):
            yield (row.start, row.end, extractor(row))

    def value_extractor(
        self, attribute: Optional[str]
    ) -> Callable[[TemporalTuple], Any]:
        return self._base.value_extractor(attribute)

    # ------------------------------------------------------------------
    # Result-cache protocol (prefix-limited)
    # ------------------------------------------------------------------

    @property
    def append_watermark(self) -> int:
        # Served bases are append-only, so this is always 0 — delegated
        # rather than hard-coded so a reordered base (which would
        # invalidate every pinned prefix) poisons cache validity checks
        # instead of silently serving stale rows.
        return self._base.append_watermark

    def triples_since(
        self, index: int, attribute: Optional[str] = None
    ) -> List[Tuple[int, int, Any]]:
        extractor = self.value_extractor(attribute)
        tail = islice(self._base.iter_prefix(self._row_count), index, None)
        return [(row.start, row.end, extractor(row)) for row in tail]

    def verify_append_chain(self, row_count: int, fingerprint: int) -> bool:
        """Is this view's pinned fingerprint reachable by appending rows
        ``row_count:`` of the pinned prefix onto ``fingerprint``?"""
        from repro.relation.relation import fold_fingerprint

        if row_count > self._row_count:
            return False
        tail = islice(self._base.iter_prefix(self._row_count), row_count, None)
        for row in tail:
            fingerprint = fold_fingerprint(fingerprint, row)
        return fingerprint == self.fingerprint

    # ------------------------------------------------------------------
    # Derived structures (via a lazily materialized private copy)
    # ------------------------------------------------------------------

    def _working(self) -> TemporalRelation:
        """A private materialized copy of the pinned prefix.

        Statistics, column snapshots, and sort-first plans want a plain
        relation; building one per view (not per statement — views are
        memoized per version) keeps those paths unchanged.  Lazy and
        double-checked: concurrent statements sharing the view build it
        once.
        """
        materialized = self._materialized
        if materialized is None:
            with self._materialize_lock:
                materialized = self._materialized
                if materialized is None:
                    materialized = TemporalRelation(
                        self.schema,
                        self._base.iter_prefix(self._row_count),
                        name=self.name,
                    )
                    self._materialized = materialized
        return materialized

    def statistics(self) -> RelationStatistics:
        return self._working().statistics()

    def sorted_by_time(self, name: Optional[str] = None) -> TemporalRelation:
        return self._working().sorted_by_time(name)

    def columns(self, attribute: Optional[str] = None) -> "ColumnSet":
        return self._working().columns(attribute)

    def unique_timestamps(self) -> int:
        return self._working().unique_timestamps()

    @property
    def lifespan(self) -> Optional["Interval"]:
        return self._working().lifespan

    def __repr__(self) -> str:
        return (
            f"SnapshotView({self._base.name!r} uid={self.uid} "
            f"v{self.version}, {self._row_count} rows)"
        )


class ServedRelation:
    """One relation behind the server: locked appends, memoized pins."""

    def __init__(self, base: TemporalRelation, name: Optional[str] = None) -> None:
        self.base = base
        self.name = name or base.name
        self._lock = threading.Lock()
        self._pins: "OrderedDict[int, SnapshotView]" = OrderedDict()

    def pin(self) -> SnapshotView:
        """A snapshot view of the relation as of right now.

        The (version, row_count, fingerprint) triple is read under the
        append lock, so a pin can never observe a half-applied batch.
        Views are memoized per version: concurrent statements at the
        same version share one view (and its materialized copy).
        """
        with self._lock:
            version = self.base.version
            view = self._pins.get(version)
            if view is None:
                view = SnapshotView(
                    self.base, version, len(self.base), self.base.fingerprint
                )
                self._pins[version] = view
                while len(self._pins) > PIN_MEMO_LIMIT:
                    self._pins.popitem(last=False)
            else:
                self._pins.move_to_end(version)
            return view

    def stats(self) -> Tuple[int, int]:
        """``(version, row_count)`` read atomically under the append
        lock.

        The stats frame used to read ``base.version`` and
        ``len(base)`` separately without the lock — a concurrent
        append between the two reads produced a torn pair (version v
        with v+1's row count).
        """
        with self._lock:
            return self.base.version, len(self.base)

    def append_batch(self, rows: Any) -> Tuple[int, int]:
        """Append one batch of ``(values, start, end)`` rows atomically.

        Returns ``(version, row_count)`` after the append — the batch's
        identity in the version order every reader pins against.
        Validation failures reject the whole batch (the relation is
        untouched and the version does not move).
        """
        with self._lock:
            appended = self.base.append_batch(rows)
            if appended == 0:
                raise ValueError("append batch must contain at least one row")
            return self.base.version, len(self.base)

    def adopt_version(self, version: int) -> None:
        """Fast-forward the version counter without rows.

        Replica bootstrap edge case: the rows already match the
        primary but the locally-counted version lags the shipped one
        (e.g. after a restart whose ledger window was shorter than the
        batch history).  Only ever moves forward.
        """
        with self._lock:
            base = self.base
            if version > base.version:
                base.version = version

    def validate_batch(self, rows: Any) -> List[TemporalTuple]:
        """Validate ``(values, start, end)`` rows without appending.

        The replication primary validates *before* journaling — a
        malformed row must reject the whole batch before any byte of
        it becomes durable or ships.  Uses the relation's own row
        validation so accept/reject semantics match a plain append.
        """
        return [
            self.base._validated_row(values, start, end)
            for values, start, end in rows
        ]

    def append_replicated(self, rows: Any, version: int) -> Tuple[int, int]:
        """Apply one primary-shipped batch, adopting the primary's
        version number.

        A replica must hand out the *primary's* version order —
        read tokens and pinned snapshots compare versions across
        nodes, so a locally-counted version would break
        read-your-writes after failover.  ``append_batch`` bumps the
        local counter by one; the explicit assignment then aligns it
        with the shipped version (monotonicity enforced: replication
        never moves a version backwards).
        """
        with self._lock:
            base = self.base
            if version <= base.version:
                raise ValueError(
                    f"replicated version {version} must exceed the applied "
                    f"version {base.version}"
                )
            appended = base.append_batch(rows)
            if appended == 0:
                raise ValueError("append batch must contain at least one row")
            base.version = version
            return base.version, len(base)

    def __repr__(self) -> str:
        return f"ServedRelation({self.name!r}, v{self.base.version})"
