"""Per-connection session state.

A :class:`Session` is one accepted connection: its writer, its bounded
statement queue, and the single-in-flight flag the fair scheduler
keys on.  All mutation of session state happens on the event-loop
thread (the reader coroutine and scheduler callbacks); worker threads
only ever *compute* replies, never touch sessions.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict

from repro.serve.protocol import write_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.scheduler import Statement

__all__ = ["Session"]


class Session:
    """One client connection's serving state."""

    def __init__(self, sid: int, writer: asyncio.StreamWriter) -> None:
        self.sid = sid
        self.writer = writer
        #: Statements admitted but not yet started (the in-flight one is
        #: not in here).  Bounded by admission, drained by the scheduler.
        self.queue: Deque["Statement"] = deque()
        #: At most one statement of this session runs at a time — the
        #: invariant that keeps per-session replies in submission order.
        self.in_flight = False
        self.closed = False
        #: Completed statements, for fairness accounting and stats.
        self.statements_done = 0

    async def send(self, payload: Dict[str, Any]) -> bool:
        """Send one frame; False when the peer is gone.

        A departed client (killed mid-query, reset connection) must
        never take the server down or wedge a worker — the reply is
        simply dropped.
        """
        if self.closed:
            return False
        try:
            write_frame(self.writer, payload)
            await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True
            return False

    async def send_encoded(self, data: bytes) -> bool:
        """Send one pre-encoded frame; False when the peer is gone.

        The single-flight path encodes a reply exactly once and fans
        the same bytes out to every coalesced session — this is the
        fan-out half (see :class:`~repro.serve.scheduler.FairScheduler`).
        """
        if self.closed:
            return False
        try:
            self.writer.write(data)
            await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True
            return False

    def __repr__(self) -> str:
        return (
            f"Session(#{self.sid}, queued={len(self.queue)}, "
            f"in_flight={self.in_flight}, closed={self.closed})"
        )
