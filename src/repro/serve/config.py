"""Server configuration: every serving knob in one frozen dataclass.

The degradation thresholds are *load ratios* — outstanding statements
(queued + running, across all sessions) divided by worker count.  A
ratio of 1.0 means every worker is busy and nothing is queued; the
defaults shed the cache when the pool is three-quarters committed,
force the low-memory paged-tree path once statements queue past 1.5×
capacity, and reject outright at 3× (see
:mod:`repro.serve.admission` for the ladder itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """All knobs of one :class:`~repro.serve.server.QueryServer`.

    * ``host`` / ``port`` — listen address; port 0 asks the OS for a
      free port (the bound port is on ``QueryServer.port`` after
      ``start``).
    * ``max_sessions`` — admission bound on concurrent connections;
      connection ``max_sessions + 1`` is answered with a typed
      ``ServerOverloaded`` hello and closed.
    * ``max_queue_depth`` — per-session bound on statements queued
      behind the in-flight one; excess statements are rejected
      (``reason="queue"``) without dropping the session.
    * ``workers`` — thread-pool width; also the denominator of the
      load ratio.
    * ``deadline_ms`` / ``memory_budget_bytes`` — per-statement budgets
      every admitted statement runs under (None = unbounded), reusing
      the engine's :class:`~repro.exec.deadline.Deadline` and
      :class:`~repro.exec.budget.MemoryGuard` machinery.
    * ``shed_load`` / ``degrade_load`` / ``reject_load`` — ladder
      thresholds, as load ratios, in non-decreasing order.
    * ``retry_after_ms`` — the backoff hint stamped on every
      ``ServerOverloaded`` rejection.
    * ``debug_statement_delay_ms`` — test/bench hook: each worker
      sleeps this long before executing a statement, making queue
      buildup deterministic regardless of machine speed.  0 in
      production.
    * ``pool_workers`` — size of the resident shared-memory worker
      pool (:mod:`repro.exec.pool`) started with the server; 0 (the
      default) leaves the pool off and statements evaluate in-process
      exactly as before.
    * ``coalesce`` — single-flight execution of identical concurrent
      queries: statements with the same text against the same pinned
      relation version at the same degradation level share one
      evaluation and one encoded reply (see
      :class:`~repro.serve.scheduler.FairScheduler`).
    * ``role`` — the node's *initial* replication role, ``"primary"``
      (default: accepts writes) or ``"replica"`` (read-only: writes
      are refused with a typed ``NotPrimary``).  The live role can
      change at runtime (a replica promotes during failover); this
      knob only seeds it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 32
    max_queue_depth: int = 8
    workers: int = 4
    deadline_ms: Optional[float] = None
    memory_budget_bytes: Optional[int] = None
    shed_load: float = 0.75
    degrade_load: float = 1.5
    reject_load: float = 3.0
    retry_after_ms: int = 100
    debug_statement_delay_ms: float = 0.0
    pool_workers: int = 0
    coalesce: bool = True
    role: str = "primary"

    def __post_init__(self) -> None:
        if self.role not in ("primary", "replica"):
            raise ValueError("role must be 'primary' or 'replica'")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive when set")
        if not (0 < self.shed_load <= self.degrade_load <= self.reject_load):
            raise ValueError(
                "degradation thresholds must satisfy "
                "0 < shed_load <= degrade_load <= reject_load"
            )
        if self.retry_after_ms < 1:
            raise ValueError("retry_after_ms must be at least 1")
        if self.debug_statement_delay_ms < 0:
            raise ValueError("debug_statement_delay_ms must be >= 0")
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0 (0 disables the pool)")
