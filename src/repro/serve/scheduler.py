"""Fair round-robin scheduling of statements onto a worker pool.

Admitted statements wait in *per-session* queues; the scheduler walks
the sessions in a rotating ring and dispatches at most one statement
per session onto a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
Two invariants fall out of that shape:

* **Fairness** — a session that floods its queue cannot starve its
  neighbors: each ring pass takes one statement from each session with
  pending work, so a newcomer's first statement starts after at most
  one statement from every other active session, never behind the
  flooder's whole backlog.
* **Per-session ordering** — with at most one in-flight statement per
  session, replies leave in submission order without any sequencing
  machinery.

The scheduler owns no policy: admission decided *whether* a statement
runs and at what degradation level; the statement's ``run`` closure
(built by the server) decides *what* it does.  Completion callbacks
(``on_done``) fire on the event-loop thread after the reply is sent —
the server uses them to balance admission's outstanding count.

**Single-flight coalescing.**  A statement may carry a
``coalesce_key`` — the server stamps queries with
``(op, table, pinned version, text, degradation level)`` when the
reply is fully determined at admission time.  When a keyed statement
is dispatched while another statement with the same key is still in
flight, the newcomer does not run: it waits on the leader's flight,
receives the *same encoded reply bytes*, and costs no worker slot.
Every reply is encoded exactly once (``encode_frame``) and fanned out
with :meth:`~repro.serve.session.Session.send_encoded`; per-session
ordering is untouched because followers still occupy their session's
single in-flight slot until the shared bytes are sent.  Only leaders
count in ``statements_started``/``statements_finished``; followers
are tallied in ``coalesced_statements``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.serve.protocol import FrameError, encode_frame
from repro.serve.session import Session

__all__ = ["Statement", "FairScheduler"]


def _encode_reply(reply: Dict[str, Any]) -> bytes:
    """Encode one reply frame, downgrading oversize bodies to a typed
    error frame (a coalesced flight must always resolve to bytes)."""
    try:
        return encode_frame(reply)
    except FrameError as error:
        return encode_frame(
            {
                "ok": False,
                "error": {"type": "FrameError", "message": str(error)},
            }
        )


@dataclass
class Statement:
    """One admitted unit of work: a closure producing a reply frame.

    ``run`` executes on a worker thread and must return the reply
    payload (it catches its own taxonomy errors and encodes them as
    error frames — a worker thread never throws through the pool).
    ``on_done`` runs on the event-loop thread exactly once, whether the
    statement ran or was dropped with its session.
    """

    run: Callable[[], Dict[str, Any]]
    on_done: Optional[Callable[[], None]] = None
    label: str = "statement"
    #: Identity for single-flight coalescing, or None to always run.
    #: Statements dispatched while a same-key statement is in flight
    #: join its flight instead of executing.
    coalesce_key: Optional[Any] = None
    #: Write statements mutate served state (appends).  When the
    #: scheduler's write fence is up (a replica, or a deposed primary
    #: after failover), these are answered with the fence's typed
    #: error frame instead of running — including statements that were
    #: already queued when the fence went up.
    is_write: bool = False
    _completed: bool = field(default=False, repr=False)

    def finish(self) -> None:
        if not self._completed:
            self._completed = True
            if self.on_done is not None:
                self.on_done()


class FairScheduler:
    """Round-robin over sessions, bounded by a thread pool."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._ring: Deque[Session] = deque()
        self._wakeup = asyncio.Event()
        self._stopped = False
        self._inflight_tasks: set = set()
        #: Open flights by coalesce key; each resolves to the leader's
        #: encoded reply bytes (event-loop thread only).
        self._flights: Dict[Any, "asyncio.Future[bytes]"] = {}
        #: Write fence: when set, every dispatched write statement is
        #: answered with this factory's error frame instead of running.
        #: Written from the promotion/demotion path (any thread) and
        #: read by the dispatch loop — a single reference assignment,
        #: atomic under the GIL, and the factory itself is immutable
        #: once installed.
        self._write_fence: Optional[
            Callable[[], Dict[str, Any]]
        ] = None  # ta: unguarded
        self.statements_started = 0
        self.statements_finished = 0
        self.coalesced_statements = 0
        self.fenced_statements = 0

    # ------------------------------------------------------------------
    # Session membership (event-loop thread only)
    # ------------------------------------------------------------------

    def add_session(self, session: Session) -> None:
        self._ring.append(session)

    def remove_session(self, session: Session) -> None:
        try:
            self._ring.remove(session)
        except ValueError:
            pass

    def submit(self, session: Session, statement: Statement) -> None:
        """Queue one admitted statement and poke the dispatch loop."""
        session.queue.append(statement)
        self._wakeup.set()

    def fence_writes(
        self, reply_factory: Optional[Callable[[], Dict[str, Any]]]
    ) -> None:
        """Install (or with ``None`` lift) the write fence.

        While fenced, every write statement the loop dispatches —
        including ones queued *before* the fence went up — is answered
        with ``reply_factory()`` instead of executing.  This is the
        failover guard: a deposed primary or an unpromoted replica
        must refuse queued appends, not run them against a sealed
        journal.  Callable from any thread.
        """
        self._write_fence = reply_factory

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Dispatch until :meth:`stop`; run as one asyncio task."""
        slots = asyncio.Semaphore(self.workers)
        while not self._stopped:
            dispatched = self._next()
            if dispatched is None:
                self._wakeup.clear()
                # Re-check before sleeping: a submit between _next and
                # clear would otherwise be lost until the next poke.
                if self._has_work():
                    continue
                await self._wakeup.wait()
                continue
            session, statement = dispatched
            loop = asyncio.get_running_loop()
            fence = self._write_fence
            if fence is not None and statement.is_write:
                # Fenced write: reply typed, cost no worker slot.
                self.fenced_statements += 1
                task = loop.create_task(
                    self._refuse_one(session, statement, fence())
                )
                self._inflight_tasks.add(task)
                task.add_done_callback(self._inflight_tasks.discard)
                continue
            key = statement.coalesce_key
            if key is not None and key in self._flights:
                if self._stopped:
                    # Mirrors the leader path's post-acquire check: a
                    # statement dispatched during shutdown finishes
                    # without joining the flight, so no follower task
                    # is created outside the shutdown sequencing.
                    statement.finish()
                    break
                # Single-flight: an identical statement is already
                # running — wait for its bytes, cost no worker slot.
                self.coalesced_statements += 1
                task = loop.create_task(
                    self._join_flight(session, statement, self._flights[key])
                )
                self._inflight_tasks.add(task)
                task.add_done_callback(self._inflight_tasks.discard)
                continue
            await slots.acquire()
            if self._stopped:
                slots.release()
                statement.finish()
                break
            self.statements_started += 1
            flight: Optional["asyncio.Future[bytes]"] = None
            if key is not None:
                flight = loop.create_future()
                self._flights[key] = flight
            task = loop.create_task(
                self._run_one(session, statement, slots, key, flight)
            )
            self._inflight_tasks.add(task)
            task.add_done_callback(self._inflight_tasks.discard)

    def _has_work(self) -> bool:
        return any(
            not s.closed and not s.in_flight and s.queue for s in self._ring
        )

    def _next(self) -> Optional[Any]:
        """The next (session, statement) in ring order, if any.

        Each call resumes *after* the last dispatched session (the ring
        rotates), which is the round-robin guarantee.
        """
        for _ in range(len(self._ring)):
            session = self._ring[0]
            self._ring.rotate(-1)
            if session.closed or session.in_flight or not session.queue:
                continue
            statement = session.queue.popleft()
            session.in_flight = True
            return session, statement
        return None

    async def _run_one(
        self,
        session: Session,
        statement: Statement,
        slots: asyncio.Semaphore,
        key: Optional[Any] = None,
        flight: Optional["asyncio.Future[bytes]"] = None,
    ) -> None:
        loop = asyncio.get_running_loop()
        data = _encode_reply(
            {
                "ok": False,
                "error": {
                    "type": "CancelledError",
                    "message": f"{statement.label} cancelled during shutdown",
                },
            }
        )
        try:
            try:
                reply = await loop.run_in_executor(
                    self._executor, statement.run
                )
            except Exception as error:  # pragma: no cover - run() encodes its own
                reply = {
                    "ok": False,
                    "error": {
                        "type": type(error).__name__,
                        "message": (
                            f"internal error running {statement.label}: {error}"
                        ),
                    },
                }
            data = _encode_reply(reply)
        finally:
            # Resolve the flight no matter how the run ended (even a
            # shutdown cancellation): a follower awaiting it must
            # never hang.
            if flight is not None:
                self._flights.pop(key, None)
                if not flight.done():
                    flight.set_result(data)
            slots.release()
            session.in_flight = False
            session.statements_done += 1
            self.statements_finished += 1
            statement.finish()
            if session.queue:
                self._wakeup.set()
        await session.send_encoded(data)

    async def _refuse_one(
        self,
        session: Session,
        statement: Statement,
        reply: Dict[str, Any],
    ) -> None:
        """Answer a fenced write with a pre-built typed error frame."""
        data = _encode_reply(reply)
        session.in_flight = False
        session.statements_done += 1
        statement.finish()
        if session.queue:
            self._wakeup.set()
        await session.send_encoded(data)

    async def _join_flight(
        self,
        session: Session,
        statement: Statement,
        flight: "asyncio.Future[bytes]",
    ) -> None:
        """Follower half of a coalesced flight: reuse the leader's
        encoded bytes; no worker slot, no started/finished tally."""
        try:
            data = await asyncio.shield(flight)
        finally:
            session.in_flight = False
            session.statements_done += 1
            statement.finish()
            if session.queue:
                self._wakeup.set()
        await session.send_encoded(data)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def stop(self) -> None:
        """Stop dispatching, let in-flight statements drain, shut the
        pool down."""
        self._stopped = True
        self._wakeup.set()
        if self._inflight_tasks:
            await asyncio.gather(*list(self._inflight_tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)
