"""Fair round-robin scheduling of statements onto a worker pool.

Admitted statements wait in *per-session* queues; the scheduler walks
the sessions in a rotating ring and dispatches at most one statement
per session onto a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
Two invariants fall out of that shape:

* **Fairness** — a session that floods its queue cannot starve its
  neighbors: each ring pass takes one statement from each session with
  pending work, so a newcomer's first statement starts after at most
  one statement from every other active session, never behind the
  flooder's whole backlog.
* **Per-session ordering** — with at most one in-flight statement per
  session, replies leave in submission order without any sequencing
  machinery.

The scheduler owns no policy: admission decided *whether* a statement
runs and at what degradation level; the statement's ``run`` closure
(built by the server) decides *what* it does.  Completion callbacks
(``on_done``) fire on the event-loop thread after the reply is sent —
the server uses them to balance admission's outstanding count.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.serve.session import Session

__all__ = ["Statement", "FairScheduler"]


@dataclass
class Statement:
    """One admitted unit of work: a closure producing a reply frame.

    ``run`` executes on a worker thread and must return the reply
    payload (it catches its own taxonomy errors and encodes them as
    error frames — a worker thread never throws through the pool).
    ``on_done`` runs on the event-loop thread exactly once, whether the
    statement ran or was dropped with its session.
    """

    run: Callable[[], Dict[str, Any]]
    on_done: Optional[Callable[[], None]] = None
    label: str = "statement"
    _completed: bool = field(default=False, repr=False)

    def finish(self) -> None:
        if not self._completed:
            self._completed = True
            if self.on_done is not None:
                self.on_done()


class FairScheduler:
    """Round-robin over sessions, bounded by a thread pool."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._ring: Deque[Session] = deque()
        self._wakeup = asyncio.Event()
        self._stopped = False
        self._inflight_tasks: set = set()
        self.statements_started = 0
        self.statements_finished = 0

    # ------------------------------------------------------------------
    # Session membership (event-loop thread only)
    # ------------------------------------------------------------------

    def add_session(self, session: Session) -> None:
        self._ring.append(session)

    def remove_session(self, session: Session) -> None:
        try:
            self._ring.remove(session)
        except ValueError:
            pass

    def submit(self, session: Session, statement: Statement) -> None:
        """Queue one admitted statement and poke the dispatch loop."""
        session.queue.append(statement)
        self._wakeup.set()

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Dispatch until :meth:`stop`; run as one asyncio task."""
        slots = asyncio.Semaphore(self.workers)
        while not self._stopped:
            dispatched = self._next()
            if dispatched is None:
                self._wakeup.clear()
                # Re-check before sleeping: a submit between _next and
                # clear would otherwise be lost until the next poke.
                if self._has_work():
                    continue
                await self._wakeup.wait()
                continue
            session, statement = dispatched
            await slots.acquire()
            if self._stopped:
                slots.release()
                statement.finish()
                break
            self.statements_started += 1
            task = asyncio.get_running_loop().create_task(
                self._run_one(session, statement, slots)
            )
            self._inflight_tasks.add(task)
            task.add_done_callback(self._inflight_tasks.discard)

    def _has_work(self) -> bool:
        return any(
            not s.closed and not s.in_flight and s.queue for s in self._ring
        )

    def _next(self) -> Optional[Any]:
        """The next (session, statement) in ring order, if any.

        Each call resumes *after* the last dispatched session (the ring
        rotates), which is the round-robin guarantee.
        """
        for _ in range(len(self._ring)):
            session = self._ring[0]
            self._ring.rotate(-1)
            if session.closed or session.in_flight or not session.queue:
                continue
            statement = session.queue.popleft()
            session.in_flight = True
            return session, statement
        return None

    async def _run_one(
        self, session: Session, statement: Statement, slots: asyncio.Semaphore
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(self._executor, statement.run)
        except Exception as error:  # pragma: no cover - run() encodes its own
            reply = {
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": f"internal error running {statement.label}: {error}",
                },
            }
        finally:
            slots.release()
            session.in_flight = False
            session.statements_done += 1
            self.statements_finished += 1
            statement.finish()
            if session.queue:
                self._wakeup.set()
        await session.send(reply)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def stop(self) -> None:
        """Stop dispatching, let in-flight statements drain, shut the
        pool down."""
        self._stopped = True
        self._wakeup.set()
        if self._inflight_tasks:
            await asyncio.gather(*list(self._inflight_tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)
