"""Heap files: append-only paged storage for one temporal relation.

A :class:`HeapFile` stores fixed-width records (one per tuple, encoded
by :class:`~repro.storage.codec.FixedWidthCodec`) in page order.  At
the paper's 128-byte tuples, the Table 3 relation sizes — 1K tuples =
128 KB up to 64K tuples = 8 MB — map to 17 … 1041 pages.

The scan methods perform the *single segmented scan* all of the
paper's algorithms rely on: pages are fetched in order through the
buffer manager (counting I/O) and each record is decoded into a
tuple or a time-only triple.
"""

from __future__ import annotations

import io
import os
from array import array
from typing import Any, BinaryIO, Iterator, List, Optional, Tuple

from repro.core.columns import ColumnSet
from repro.core.interval import FOREVER, Interval
from repro.core.ordering import k_ordered_percentage, k_orderedness
from repro.relation.relation import (
    RelationStatistics,
    TemporalRelation,
    fold_fingerprint,
    next_relation_uid,
)
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple
from repro.storage.buffer import BufferManager
from repro.storage.codec import FixedWidthCodec
from repro.storage.journal import Journal, data_open, scratch_open

__all__ = ["HeapFile"]


class HeapFile:
    """An append-only paged file of fixed-width temporal tuples."""

    def __init__(
        self,
        schema: Schema,
        path: Optional[str] = None,
        buffer_pages: int = 64,
        journal: Optional[Journal] = None,
        io_tag: str = "data",
    ) -> None:
        """Open (creating if needed) a heap file.

        ``path=None`` keeps the file in memory (a ``BytesIO``), which
        tests and small examples use; benchmarks pass real paths.
        ``io_tag`` labels the handle for fault injection — ``"data"``
        for relations, ``"scratch"`` for sort runs and spills.

        With a ``journal`` attached, every append is write-ahead logged
        before its page is touched and :meth:`commit`/:meth:`flush`
        provide the acknowledgement points crash recovery honors.  Use
        :meth:`durable` rather than wiring a journal by hand — it runs
        recovery first, which a journal with surviving segments
        requires.
        """
        self.schema = schema
        self.codec = FixedWidthCodec(schema)
        self.path = path
        if path is None:
            self._handle: BinaryIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            opener = scratch_open if io_tag == "scratch" else data_open
            self._handle = opener(path, mode)
        self.journal = journal
        self.buffer = BufferManager(
            self._handle, self.codec.record_bytes, capacity=buffer_pages
        )
        self._tuple_count = self._count_existing()
        pages = self.buffer.page_count()
        self._tail_page_id: Optional[int] = pages - 1 if pages else None
        self.uid = next_relation_uid()
        #: Mutation counter mirroring :class:`TemporalRelation.version`:
        #: appends bump it, and code that rewrites pages in place must
        #: call :meth:`mark_mutated`.  Statistics cache by version, not
        #: tuple count, so an equal-cardinality rewrite still invalidates.
        self.version = 0
        self._statistics_cache: Optional[Tuple[int, RelationStatistics]] = None
        #: Version-keyed flat-column snapshots, one per attribute (None
        #: = timestamps only); any mutation invalidates by version.
        self._columns_cache: dict = {}
        #: Chained order-sensitive fingerprint over every stored row,
        #: maintained per append when journaled (COMMIT records carry
        #: it; recovery re-derives and compares it end to end).
        self._fingerprint = 0
        if journal is not None and self._tuple_count:
            for row in self.scan():
                self._fingerprint = fold_fingerprint(self._fingerprint, row)
        #: Set by :func:`repro.storage.recovery.recover` on durable opens.
        self.last_recovery: Optional[Any] = None

    def _count_existing(self) -> int:
        pages = self.buffer.page_count()
        total = 0
        for page_id in range(pages):
            total += self.buffer.get(page_id).record_count
        return total

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._tuple_count

    @property
    def page_count(self) -> int:
        return self.buffer.page_count()

    @property
    def records_per_page(self) -> int:
        from repro.storage.page import PAGE_FOOTER_BYTES, PAGE_HEADER_BYTES, PAGE_SIZE

        return (
            PAGE_SIZE - PAGE_HEADER_BYTES - PAGE_FOOTER_BYTES
        ) // self.codec.record_bytes

    @property
    def fingerprint(self) -> int:
        """Chained fingerprint over every stored row (journaled mode)."""
        return self._fingerprint

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, row: TemporalTuple) -> None:
        """Encode and store one tuple at the end of the file.

        Journaled files observe strict write-ahead order: the record
        reaches the journal before any data page is touched, so a crash
        at any instant leaves the journal a superset of the pages.
        """
        record = self.codec.encode(row)
        if self.journal is not None:
            self.journal.log_append(record)
        self._fingerprint = fold_fingerprint(self._fingerprint, row)
        if self._tail_page_id is not None:
            page = self.buffer.get(self._tail_page_id)
            if not page.is_full:
                page.append(record)
                self._tuple_count += 1
                self.version += 1
                return
        page_id, page = self.buffer.allocate()
        page.append(record)
        self._tail_page_id = page_id
        self._tuple_count += 1
        self.version += 1

    def append_all(self, rows) -> None:
        for row in rows:
            self.append(row)

    def mark_mutated(self) -> None:
        """Declare an in-place page rewrite (e.g. a reorder).

        Appends track themselves; anything that mutates existing pages
        through the buffer must call this so version-keyed derivations
        — cached :meth:`statistics`, planner decisions built on them —
        recompute instead of serving the pre-rewrite order facts.
        """
        self.version += 1
        self._statistics_cache = None
        self._columns_cache.clear()

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[TemporalTuple]:
        """One sequential, page-ordered scan decoding full tuples."""
        decode = self.codec.decode
        for page_id in range(self.buffer.page_count()):
            page = self.buffer.get(page_id)
            for record in page.records():
                yield decode(record)

    def scan_triples(
        self, attribute: Optional[str] = None
    ) -> Iterator[Tuple[int, int, Any]]:
        """One scan yielding ``(start, end, value)`` — the evaluator feed.

        With ``attribute=None`` only the timestamps are decoded (the
        COUNT fast path: the paper's aggregate ignores the other 120
        bytes of each record).
        """
        if attribute is None:
            timestamps_only = self.codec.decode_timestamps_only
            for page_id in range(self.buffer.page_count()):
                page = self.buffer.get(page_id)
                for record in page.records():
                    start, end = timestamps_only(record)
                    yield (start, end, None)
            return
        position = self.schema.position_of(attribute)
        for row in self.scan():
            yield (row.start, row.end, row.values[position])

    def scan_columns(self, attribute: Optional[str] = None) -> ColumnSet:
        """One scan batch-decoding whole pages into flat columns.

        The zero-tuple fast path: each page's record region is
        unpacked in a single ``struct`` call
        (:meth:`~repro.storage.codec.FixedWidthCodec.decode_page_columns`)
        and extended onto growing ``array('q')`` columns — no
        TemporalTuple, no per-record triple, nothing per row but array
        slots.  ``attribute=None`` skips every attribute byte (the
        COUNT path); otherwise exactly that attribute's bytes are
        decoded into the value column.
        """
        from repro.storage.page import PAGE_HEADER_BYTES

        position = (
            None if attribute is None else self.schema.position_of(attribute)
        )
        record_bytes = self.codec.record_bytes
        decode_page = self.codec.decode_page_columns
        starts = array("q")
        ends = array("q")
        values: Optional[List[Any]] = None if position is None else []
        batches = 0
        for page_id in range(self.buffer.page_count()):
            page = self.buffer.get(page_id)
            count = page.record_count
            if not count:
                continue
            region = memoryview(page.data)[
                PAGE_HEADER_BYTES : PAGE_HEADER_BYTES + count * record_bytes
            ]
            page_starts, page_ends, page_values = decode_page(
                region, count, position
            )
            starts.extend(page_starts)
            ends.extend(page_ends)
            if values is not None and page_values is not None:
                values.extend(page_values)
            batches += 1
        return ColumnSet(starts, ends, values, batches=max(1, batches))

    def columns(self, attribute: Optional[str] = None) -> ColumnSet:
        """A version-keyed flat-column snapshot of the whole file.

        Mirrors :meth:`TemporalRelation.columns`: the first call per
        (version, attribute) pays one :meth:`scan_columns`; repeats at
        the same version share the snapshot.  Callers must treat the
        columns as read-only.
        """
        cached = self._columns_cache.get(attribute)
        if cached is not None and cached[0] == self.version:
            snapshot: ColumnSet = cached[1]
            return snapshot
        snapshot = self.scan_columns(attribute)
        self._columns_cache[attribute] = (self.version, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def statistics(self) -> RelationStatistics:
        """Planner statistics from one timestamps-only scan.

        Matches :meth:`TemporalRelation.statistics` field for field, so
        a heap file can feed ``strategy="auto"`` directly.  Cached by
        :attr:`version` — appends and declared in-place rewrites
        (:meth:`mark_mutated`) invalidate, rescans do not.  (The old
        tuple-count key went stale on equal-cardinality reorders, and a
        stale ``is_totally_ordered`` mis-plans every later query.)
        """
        if (
            self._statistics_cache is not None
            and self._statistics_cache[0] == self.version
        ):
            return self._statistics_cache[1]
        starts = []
        stamps = set()
        lo = FOREVER
        hi = 0
        for start, end, _ in self.scan_triples():
            starts.append((start, end))
            stamps.add(start)
            stamps.add(end)
            lo = min(lo, start)
            hi = max(hi, end)
        stamps.discard(FOREVER)
        span = Interval(lo, hi) if starts else None
        span_length = span.duration if span is not None else 0
        long_lived = sum(
            1
            for start, end in starts
            if span_length and (end - start + 1) >= 0.2 * span_length
        )
        k = k_orderedness(starts)
        stats = RelationStatistics(
            tuple_count=len(starts),
            unique_timestamps=len(stamps),
            long_lived_count=long_lived,
            lifespan=span,
            is_totally_ordered=(k == 0),
            k=k,
            k_ordered_percentage=k_ordered_percentage(starts, k) if k else 0.0,
        )
        self._statistics_cache = (self.version, stats)
        return stats

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        relation: TemporalRelation,
        path: Optional[str] = None,
        buffer_pages: int = 64,
    ) -> "HeapFile":
        """Materialise an in-memory relation onto pages."""
        heap = cls(relation.schema, path=path, buffer_pages=buffer_pages)
        heap.append_all(relation)
        heap.flush()
        return heap

    def to_relation(self, name: str = "from_heap") -> TemporalRelation:
        """Read the whole file back into an in-memory relation."""
        return TemporalRelation(self.schema, self.scan(), name=name)

    # ------------------------------------------------------------------
    # Durability lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Acknowledge every append so far (journaled files only).

        Writes a COMMIT record carrying the current count and chained
        fingerprint; under the default fsync policy, the acknowledged
        appends now survive any crash even though their data pages may
        still be dirty in the buffer pool.
        """
        if self.journal is not None:
            self.journal.commit(self._tuple_count, self._fingerprint)

    def _committed_tail_records(self) -> List[bytes]:
        """The committed records on the partial tail page (for rotation)."""
        rpp = self.records_per_page
        base = (self._tuple_count // rpp) * rpp
        if base == self._tuple_count:
            return []
        page = self.buffer.get(base // rpp)
        return [page.read(slot) for slot in range(self._tuple_count - base)]

    def flush(self) -> None:
        """Make every append durable in the *data file*.

        Journaled files run the full commit protocol: journal COMMIT
        (acknowledge), write-back + fsync the data pages, then rotate
        the journal — old segments are deleted, and the committed
        records still on the rewritable partial tail page are re-logged
        so no later torn page write can lose them.
        """
        if self.journal is None:
            self.buffer.flush()
            return
        self.commit()
        self.buffer.sync()
        self.journal.mark_durable(
            self._tuple_count,
            self._fingerprint,
            self.records_per_page,
            self._committed_tail_records(),
        )

    def close(self) -> None:
        self.flush()
        self._handle.close()
        if self.journal is not None:
            self.journal.close()

    def abandon(self) -> None:
        """Drop the OS handles without flushing — a process-death stand-in.

        Dirty buffer pages are discarded and the journal is left
        unrotated, exactly as a crash would leave them; tests and the
        durability bench reopen with :meth:`durable` to exercise
        recovery.
        """
        self._handle.close()
        if self.journal is not None:
            self.journal.close()

    @classmethod
    def durable(
        cls,
        schema: Schema,
        path: str,
        buffer_pages: int = 64,
        fsync_policy: Optional[str] = None,
    ) -> "HeapFile":
        """Open a crash-safe heap file at ``path`` with its journal.

        Routes through :func:`repro.storage.recovery.recover`: if
        journal segments survive from a previous (possibly crashed)
        process, they are replayed and reconciled against the data file
        before the first new append is accepted.
        """
        from repro.storage.recovery import recover

        return recover(
            schema, path, buffer_pages=buffer_pages, fsync_policy=fsync_policy
        )

    def __enter__(self) -> "HeapFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def size_bytes(self) -> int:
        """Total file size — Table 3's '128K … 8M' figures."""
        from repro.storage.page import PAGE_SIZE

        return self.buffer.page_count() * PAGE_SIZE
