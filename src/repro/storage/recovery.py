"""Crash recovery and scrubbing for journaled heap files.

:func:`recover` is the only sanctioned way to open a journaled heap
file (callers reach it through :meth:`HeapFile.durable`).  It restores
the invariant the write-ahead protocol promises: **every acknowledged
append is present, nothing else is** —

1. **Replay** the journal segments (:meth:`Journal.replay`), obtaining
   the last committed ``(count, fingerprint)``, the journal's retained
   append copies, and the latest evaluator checkpoint.
2. **Validate** the data file's committed *full* pages.  The journal's
   page-aligned retention base splits the file: pages below
   ``base // records_per_page`` hold only committed, never-again-
   rewritten records, so they must be present, full, and checksum-clean
   — a corrupt page there means acknowledged data is unrecoverable
   (:class:`~repro.exec.errors.RecoveryError`).  Pages at or above the
   split hold exactly the records the journal retains copies of, so
   whatever state a torn page write left them in is irrelevant.
3. **Rebuild** the tail: the records ``[base, committed)`` are
   rewritten from the journal copies as freshly sealed pages, the file
   is truncated after them (discarding uncommitted appends — they were
   never acknowledged), and the data file is fsynced.
4. **Verify end to end**: the chained relation fingerprint
   (:func:`~repro.relation.relation.fold_fingerprint`) is recomputed
   from a full scan of the repaired file and compared against the one
   the COMMIT record carried.  A mismatch — bytes that survived every
   CRC but are still wrong — raises ``RecoveryError`` rather than
   serving silently wrong rows.
5. **Re-arm**: a fresh journal segment is sealed over the recovered
   state (deleting the replayed segments), and the heap file is
   returned ready for new appends, with a :class:`RecoveryReport`
   attached as ``heap.last_recovery``.

:func:`scrub_data` / :func:`scrub_journal` are the read-only halves —
an fsck that reports page and journal health without repairing,
backing the ``python -m repro.storage scrub`` CLI.
"""

from __future__ import annotations

import os
import struct
from typing import List, Optional, Tuple

from repro.exec.errors import RecoveryError, StorageCorruption
from repro.metrics.counters import OperationCounters
from repro.relation.relation import fingerprint_rows
from repro.relation.schema import Schema
from repro.storage.codec import FixedWidthCodec
from repro.storage.heapfile import HeapFile
from repro.storage.journal import Journal, JournalState, data_open, journal_segments
from repro.storage.page import (
    PAGE_FOOTER_BYTES,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    Page,
    PageError,
)

__all__ = [
    "RecoveryReport",
    "ScrubReport",
    "recover",
    "journal_path_for",
    "scrub_data",
    "scrub_journal",
    "scrub",
]


def journal_path_for(path: str) -> str:
    """The journal name-stem for data file ``path``."""
    return path + ".journal"


class RecoveryReport:
    """What one recovery pass found and did."""

    __slots__ = (
        "path",
        "segments_replayed",
        "records_scanned",
        "committed_count",
        "committed_fingerprint",
        "epoch",
        "discarded_appends",
        "torn_tail",
        "rebuilt_records",
        "rebuilt_pages",
        "fingerprint_verified",
        "checkpoint",
        "statements",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        #: Journal segment files replayed.
        self.segments_replayed = 0
        #: Complete journal records parsed.
        self.records_scanned = 0
        #: Appends restored (the acknowledged prefix).
        self.committed_count = 0
        #: Head of the chained fingerprint the last COMMIT acknowledged
        #: — the value replica divergence is diagnosed against.
        self.committed_fingerprint = 0
        #: Highest epoch any replayed segment header carried.
        self.epoch = 0
        #: Journaled appends past the last COMMIT, dropped.
        self.discarded_appends = 0
        #: Whether the journal ended in a torn record.
        self.torn_tail = False
        #: Records rewritten into the data file from journal copies.
        self.rebuilt_records = 0
        #: Pages those records were sealed into.
        self.rebuilt_pages = 0
        #: Whether the end-to-end fingerprint check ran and passed.
        self.fingerprint_verified = False
        #: Latest committed evaluator checkpoint payload, if any.
        self.checkpoint: Optional[bytes] = None
        #: Replayed exactly-once ledger entries ``(sid, version,
        #: row_count)``, restricted to the committed prefix.
        self.statements: List[Tuple[str, int, int]] = []

    def summary(self) -> str:
        return (
            f"recovered {self.path}: {self.committed_count} committed rows "
            f"across {self.segments_replayed} segment(s), "
            f"{self.discarded_appends} uncommitted discarded, "
            f"{self.rebuilt_records} rebuilt from journal"
            f"{' (torn tail cut)' if self.torn_tail else ''}, "
            f"fingerprint {'verified' if self.fingerprint_verified else 'UNVERIFIED'} "
            f"(head {self.committed_fingerprint:#x}), epoch {self.epoch}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoveryReport({self.summary()!r})"


def _read_full_page_records(
    path: str, page_id: int, codec: FixedWidthCodec, records_per_page: int
) -> List[bytes]:
    """The records of one committed full page, or raise RecoveryError."""
    with open(path, "rb") as handle:  # ta: ignore[TA009]
        handle.seek(page_id * PAGE_SIZE)
        raw = handle.read(PAGE_SIZE)
    if len(raw) != PAGE_SIZE:
        raise RecoveryError(
            f"data file {path} is missing committed page {page_id} — "
            "acknowledged rows are unrecoverable"
        )
    try:
        page = Page(codec.record_bytes, bytearray(raw))
    except PageError as exc:
        raise RecoveryError(
            f"committed page {page_id} of {path} is corrupt and below the "
            f"journal's retention base, so no copy exists: {exc}"
        ) from exc
    if page.record_count != records_per_page:
        raise RecoveryError(
            f"committed page {page_id} of {path} holds "
            f"{page.record_count} records where {records_per_page} were "
            "acknowledged — rows are missing"
        )
    return list(page.records())


def _rebuild_tail(
    path: str,
    first_page: int,
    records: List[bytes],
    record_bytes: int,
    records_per_page: int,
) -> int:
    """Seal ``records`` into pages from ``first_page`` on, truncate, fsync.

    Returns the number of pages written.
    """
    mode = "r+b" if os.path.exists(path) else "w+b"
    handle = data_open(path, mode)
    try:
        handle.seek(first_page * PAGE_SIZE)
        pages = 0
        for start in range(0, len(records), records_per_page):
            page = Page(record_bytes)
            for record in records[start : start + records_per_page]:
                page.append(record)
            handle.write(page.to_bytes())
            pages += 1
        handle.truncate((first_page + pages) * PAGE_SIZE)
        from repro.exec.faults import fsync_handle

        fsync_handle(handle)
        return pages
    finally:
        handle.close()


def recover(
    schema: Schema,
    path: str,
    *,
    buffer_pages: int = 64,
    fsync_policy: Optional[str] = None,
    counters: Optional[OperationCounters] = None,
) -> HeapFile:
    """Open the heap file at ``path`` crash-safely (see module docs).

    Raises :class:`~repro.exec.errors.StorageCorruption` when the
    journal itself is corrupt beyond a legitimate torn tail, and
    :class:`~repro.exec.errors.RecoveryError` when acknowledged rows
    cannot be restored or the restored rows fail the fingerprint check.
    """
    codec = FixedWidthCodec(schema)
    jpath = journal_path_for(path)
    report = RecoveryReport(path)
    records_per_page = (
        PAGE_SIZE - PAGE_HEADER_BYTES - PAGE_FOOTER_BYTES
    ) // codec.record_bytes

    segments = journal_segments(jpath)
    if not segments:
        return _adopt_unjournaled(
            schema, path, jpath, buffer_pages, fsync_policy, report
        )

    state = Journal.replay(jpath)
    report.segments_replayed = len(state.segments)
    report.records_scanned = state.records_scanned
    report.torn_tail = state.torn_tail
    committed = state.committed_count or 0
    fingerprint = state.committed_fingerprint or 0
    report.committed_count = committed
    report.committed_fingerprint = fingerprint
    report.epoch = state.epoch
    report.discarded_appends = max(0, state.logged_count - committed)
    report.checkpoint = state.checkpoint
    # Ledger entries past the committed prefix acknowledge rows that
    # never became durable; replaying them would let a retry dedup
    # against a batch the recovery just discarded.
    report.statements = [
        entry for entry in state.statements if entry[2] <= committed
    ]
    if counters is not None:
        counters.records_replayed += state.records_scanned

    if committed < state.base:
        raise RecoveryError(
            f"journal for {path} retains from append {state.base} but only "
            f"{committed} are committed — the journal is inconsistent",
            report=report,
        )

    # Committed full pages below the retention split must be intact.
    split_page = state.base // records_per_page
    rows: List[bytes] = []
    for page_id in range(split_page):
        rows.extend(
            _read_full_page_records(path, page_id, codec, records_per_page)
        )

    # Everything from the split on is rebuilt from journal copies.
    tail = state.appends[: committed - state.base]
    report.rebuilt_records = len(tail)
    report.rebuilt_pages = _rebuild_tail(
        path, split_page, tail, codec.record_bytes, records_per_page
    )
    rows.extend(tail)

    # End-to-end verification: the chained fingerprint over the restored
    # rows must equal the one the COMMIT acknowledged.
    check = fingerprint_rows(codec.decode(raw) for raw in rows)
    if check != fingerprint:
        raise RecoveryError(
            f"post-recovery fingerprint {check:#x} does not match the "
            f"committed fingerprint {fingerprint:#x} for {path} — the "
            "restored rows are not the acknowledged rows",
            report=report,
        )
    report.fingerprint_verified = True

    journal = Journal.resume(
        jpath, state, record_bytes=codec.record_bytes, fsync_policy=fsync_policy
    )
    heap = HeapFile(schema, path, buffer_pages=buffer_pages, journal=journal)
    if len(heap) != committed:
        raise RecoveryError(
            f"repaired data file holds {len(heap)} rows, expected "
            f"{committed}",
            report=report,
        )
    heap._fingerprint = fingerprint
    from repro.analysis import invariants  # deferred: avoid import cycle

    if invariants.invariants_enabled():
        invariants.verify_recovered_relation(
            heap.scan(), (codec.decode(raw) for raw in rows)
        )
    heap.flush()  # seal a fresh segment; drop the replayed ones
    heap.last_recovery = report
    return heap


def _adopt_unjournaled(
    schema: Schema,
    path: str,
    jpath: str,
    buffer_pages: int,
    fsync_policy: Optional[str],
    report: RecoveryReport,
) -> HeapFile:
    """First durable open: no journal exists yet (fresh or legacy file)."""
    codec = FixedWidthCodec(schema)
    journal = Journal(jpath, record_bytes=codec.record_bytes, fsync_policy=fsync_policy)
    heap = HeapFile(schema, path, buffer_pages=buffer_pages, journal=journal)
    # Pre-existing rows were never journaled; declare them logged so the
    # sealing flush below can commit them and re-log the partial tail
    # page, after which they are protected like any journaled append.
    journal.base = journal.record_count = len(heap)
    report.committed_count = len(heap)
    heap.flush()
    heap.last_recovery = report
    return heap


# ----------------------------------------------------------------------
# Scrubbing (read-only fsck)
# ----------------------------------------------------------------------


class ScrubReport:
    """Read-only health summary of a data file and its journal."""

    __slots__ = (
        "path",
        "pages_checked",
        "records_seen",
        "legacy_pages",
        "corrupt_pages",
        "trailing_bytes",
        "journal_segments",
        "journal_records",
        "journal_torn_tail",
        "journal_committed",
        "journal_fingerprint",
        "journal_epoch",
        "journal_statements",
        "errors",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self.pages_checked = 0
        self.records_seen = 0
        #: Version-0 pages (no checksum to verify).
        self.legacy_pages = 0
        #: ``(page_id, reason)`` for every page that failed validation.
        self.corrupt_pages: List[Tuple[int, str]] = []
        #: Bytes past the last whole page (a torn page write).
        self.trailing_bytes = 0
        self.journal_segments = 0
        self.journal_records = 0
        self.journal_torn_tail = False
        self.journal_committed: Optional[int] = None
        #: Chained-fingerprint head of the last COMMIT — comparing this
        #: across a primary and its replicas from the CLI is how
        #: replication divergence is diagnosed without a server.
        self.journal_fingerprint: Optional[int] = None
        #: Highest epoch any segment header carries.
        self.journal_epoch = 0
        #: Exactly-once ledger entries the journal retains.
        self.journal_statements = 0
        #: Journal-level corruption messages.
        self.errors: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.corrupt_pages and not self.errors

    def lines(self) -> List[str]:
        """Human-readable findings, one per line."""
        out = [
            f"{self.path}: {self.pages_checked} pages, "
            f"{self.records_seen} records"
            + (f", {self.legacy_pages} legacy (unchecksummed)" if self.legacy_pages else "")
        ]
        if self.trailing_bytes:
            out.append(
                f"  torn trailing write: {self.trailing_bytes} bytes past "
                "the last whole page"
            )
        for page_id, reason in self.corrupt_pages:
            out.append(f"  page {page_id}: {reason}")
        if self.journal_segments:
            out.append(
                f"  journal: {self.journal_segments} segment(s), "
                f"{self.journal_records} records, committed="
                f"{self.journal_committed}"
                + (" (torn tail)" if self.journal_torn_tail else "")
            )
            fingerprint = (
                f"{self.journal_fingerprint:#x}"
                if self.journal_fingerprint is not None
                else "(none)"
            )
            out.append(
                f"  journal head: fingerprint {fingerprint}, "
                f"epoch {self.journal_epoch}, "
                f"{self.journal_statements} ledger statement(s)"
            )
        for error in self.errors:
            out.append(f"  journal error: {error}")
        out.append("clean" if self.ok else "CORRUPT")
        return out


def _detect_record_bytes(raw: bytes) -> Optional[int]:
    """The record width the first page header declares, if plausible."""
    if len(raw) < PAGE_HEADER_BYTES:
        return None
    _count, width, _version = struct.unpack_from(">IHH", raw, 0)
    usable = PAGE_SIZE - PAGE_HEADER_BYTES - PAGE_FOOTER_BYTES
    return width if 0 < width <= usable else None


def scrub_data(path: str, record_bytes: Optional[int] = None) -> ScrubReport:
    """Verify every page of ``path`` without modifying anything."""
    report = ScrubReport(path)
    if not os.path.exists(path):
        report.errors.append(f"data file {path} does not exist")
        return report
    with open(path, "rb") as handle:  # ta: ignore[TA009]
        blob = handle.read()
    report.trailing_bytes = len(blob) % PAGE_SIZE
    pages = len(blob) // PAGE_SIZE
    if record_bytes is None and pages:
        record_bytes = _detect_record_bytes(blob[:PAGE_SIZE])
        if record_bytes is None:
            report.corrupt_pages.append((0, "unreadable page header"))
            return report
    for page_id in range(pages):
        raw = blob[page_id * PAGE_SIZE : (page_id + 1) * PAGE_SIZE]
        report.pages_checked += 1
        try:
            page = Page(int(record_bytes or 0), bytearray(raw))
        except PageError as exc:
            report.corrupt_pages.append((page_id, str(exc)))
            continue
        if page.version < 1:
            report.legacy_pages += 1
        report.records_seen += page.record_count
    return report


def scrub_journal(path: str, report: ScrubReport) -> None:
    """Verify the journal for data file ``path`` into ``report``."""
    jpath = journal_path_for(path)
    segments = journal_segments(jpath)
    report.journal_segments = len(segments)
    if not segments:
        return
    try:
        state = Journal.replay(jpath)
    except StorageCorruption as exc:
        report.errors.append(str(exc))
        return
    report.journal_records = state.records_scanned
    report.journal_torn_tail = state.torn_tail
    report.journal_committed = state.committed_count
    report.journal_fingerprint = state.committed_fingerprint
    report.journal_epoch = state.epoch
    report.journal_statements = len(state.statements)


def scrub(path: str, record_bytes: Optional[int] = None) -> ScrubReport:
    """Full read-only check: data pages plus journal."""
    report = scrub_data(path, record_bytes)
    scrub_journal(path, report)
    return report
