"""``python -m repro.storage`` — storage maintenance commands.

``scrub PATH [PATH ...]``
    Read-only fsck: verify every page checksum of each data file and
    the CRC chain of its write-ahead journal.  Exit status 0 when all
    files are clean, 1 when any corruption was found, 2 on usage
    errors.  ``--record-bytes N`` overrides the width the first page
    header declares (useful when page 0 itself is suspect).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.storage.recovery import scrub

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage",
        description="Storage maintenance for repro heap files.",
    )
    commands = parser.add_subparsers(dest="command")
    scrub_cmd = commands.add_parser(
        "scrub", help="verify page checksums and journal CRCs (read-only)"
    )
    scrub_cmd.add_argument("paths", nargs="+", metavar="PATH")
    scrub_cmd.add_argument(
        "--record-bytes",
        type=int,
        default=None,
        help="record width; defaults to what the first page header declares",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command != "scrub":
        parser.print_help(sys.stderr)
        return 2
    if args.record_bytes is not None and args.record_bytes <= 0:
        print("error: --record-bytes must be positive", file=sys.stderr)
        return 2
    corrupt = False
    for path in args.paths:
        report = scrub(path, args.record_bytes)
        for line in report.lines():
            print(line)
        if not report.ok:
            corrupt = True
    return 1 if corrupt else 0


if __name__ == "__main__":
    sys.exit(main())
