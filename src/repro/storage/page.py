"""Fixed-size pages holding fixed-width records.

The storage substrate uses classic database pages: the file is an array
of :data:`PAGE_SIZE`-byte pages, each holding as many fixed-width
records as fit after an 8-byte header.  Because records are
constant-size (see :mod:`repro.storage.codec`), no slot directory is
needed — the header stores only the live record count and the record
width, and records pack densely from the front.

Header layout (big-endian):

====== ===== ==========================
offset bytes field
====== ===== ==========================
0      4     record count
4      2     record width in bytes
6      2     reserved (zero)
====== ===== ==========================
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

__all__ = ["PAGE_SIZE", "PAGE_HEADER_BYTES", "Page", "PageError"]

#: Bytes per page.  8 KiB is a conventional database page size; at the
#: paper's 128-byte tuples one page holds 63 records.
PAGE_SIZE = 8192

PAGE_HEADER_BYTES = 8

_HEADER = struct.Struct(">IHH")


class PageError(ValueError):
    """Raised for malformed pages or out-of-range slots."""


class Page:
    """One in-memory page image with record-level accessors."""

    __slots__ = ("data", "record_bytes", "dirty")

    def __init__(self, record_bytes: int, data: Optional[bytearray] = None) -> None:
        if record_bytes <= 0 or record_bytes > PAGE_SIZE - PAGE_HEADER_BYTES:
            raise PageError(f"record width {record_bytes} does not fit a page")
        self.record_bytes = record_bytes
        self.dirty = False
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self._set_header(0)
            self.dirty = True
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page image must be {PAGE_SIZE} bytes")
            self.data = bytearray(data)
            count, width, _reserved = _HEADER.unpack_from(self.data, 0)
            if width != record_bytes:
                raise PageError(
                    f"page declares {width}-byte records, expected {record_bytes}"
                )
            if count > self.capacity:
                raise PageError(f"page declares {count} records, over capacity")

    def _set_header(self, count: int) -> None:
        _HEADER.pack_into(self.data, 0, count, self.record_bytes, 0)

    # ------------------------------------------------------------------
    # Capacity and counts
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Records that fit on one page."""
        return (PAGE_SIZE - PAGE_HEADER_BYTES) // self.record_bytes

    @property
    def record_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def is_full(self) -> bool:
        return self.record_count >= self.capacity

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------

    def _offset(self, slot: int) -> int:
        return PAGE_HEADER_BYTES + slot * self.record_bytes

    def append(self, record: bytes) -> int:
        """Store a record in the next free slot; returns the slot index."""
        if len(record) != self.record_bytes:
            raise PageError(
                f"record is {len(record)} bytes, page stores {self.record_bytes}"
            )
        slot = self.record_count
        if slot >= self.capacity:
            raise PageError("page is full")
        offset = self._offset(slot)
        self.data[offset : offset + self.record_bytes] = record
        self._set_header(slot + 1)
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        """The record stored in ``slot``."""
        if not 0 <= slot < self.record_count:
            raise PageError(f"slot {slot} out of range (page has {self.record_count})")
        offset = self._offset(slot)
        return bytes(self.data[offset : offset + self.record_bytes])

    def records(self) -> Iterator[bytes]:
        """All live records in slot order."""
        for slot in range(self.record_count):
            yield self.read(slot)

    def to_bytes(self) -> bytes:
        return bytes(self.data)
