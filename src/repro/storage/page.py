"""Fixed-size pages holding fixed-width records, with torn-write detection.

The storage substrate uses classic database pages: the file is an array
of :data:`PAGE_SIZE`-byte pages, each holding as many fixed-width
records as fit between an 8-byte header and an 8-byte integrity footer.
Because records are constant-size (see :mod:`repro.storage.codec`), no
slot directory is needed — the header stores only the live record
count, the record width and the format version, and records pack
densely from the front.

Header layout (big-endian):

====== ===== ==========================
offset bytes field
====== ===== ==========================
0      4     record count
4      2     record width in bytes
6      2     format version (0 = legacy, unchecksummed)
====== ===== ==========================

Footer layout (big-endian, last 8 bytes of the page):

============= ===== ==========================================
offset        bytes field
============= ===== ==========================================
PAGE_SIZE - 8 4     magic ``PAGE_MAGIC``
PAGE_SIZE - 4 4     CRC-32 of bytes ``[0, PAGE_SIZE - 4)``
============= ===== ==========================================

The checksum covers the header, every record slot, the free space
*and* the footer magic, and is stamped when the page image is
serialised (:meth:`Page.to_bytes`).  A torn write — the classic crash
failure where the kernel persists only a prefix of the 8 KiB page —
leaves the old footer behind the new header, so the CRC mismatches and
the reader raises :class:`~repro.exec.errors.StorageCorruption` instead
of decoding garbage.  Version-0 pages (written before the durable
format) carry no footer and are accepted without verification, so old
heap files stay readable.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.exec.errors import StorageCorruption
from repro.storage.codec import content_checksum

__all__ = [
    "PAGE_SIZE",
    "PAGE_HEADER_BYTES",
    "PAGE_FOOTER_BYTES",
    "PAGE_MAGIC",
    "PAGE_VERSION",
    "Page",
    "PageError",
    "PageCorruption",
]

#: Bytes per page.  8 KiB is a conventional database page size; at the
#: paper's 128-byte tuples one page holds 63 records.
PAGE_SIZE = 8192

PAGE_HEADER_BYTES = 8

#: Trailing integrity footer: 4-byte magic + 4-byte CRC-32.
PAGE_FOOTER_BYTES = 8

#: ``"TApg"`` — marks a checksummed (version >= 1) page image.
PAGE_MAGIC = 0x54417067

#: Format version stamped into pages this writer produces.
PAGE_VERSION = 1

_HEADER = struct.Struct(">IHH")
_FOOTER = struct.Struct(">II")


class PageError(ValueError):
    """Raised for malformed pages or out-of-range slots."""


class PageCorruption(StorageCorruption, PageError):
    """A page image failed its checksum or structural validation.

    Subclasses both :class:`PageError` (so pre-durability callers that
    catch it keep working) and
    :class:`~repro.exec.errors.StorageCorruption` (so traffic-serving
    callers can branch on the taxonomy).
    """


class Page:
    """One in-memory page image with record-level accessors."""

    __slots__ = ("data", "record_bytes", "dirty", "version")

    def __init__(
        self,
        record_bytes: int,
        data: Optional[bytearray] = None,
        *,
        verify: bool = True,
    ) -> None:
        usable = PAGE_SIZE - PAGE_HEADER_BYTES - PAGE_FOOTER_BYTES
        if record_bytes <= 0 or record_bytes > usable:
            raise PageError(f"record width {record_bytes} does not fit a page")
        self.record_bytes = record_bytes
        self.dirty = False
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self.version = PAGE_VERSION
            self._set_header(0)
            self.dirty = True
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page image must be {PAGE_SIZE} bytes")
            self.data = bytearray(data)
            count, width, version = _HEADER.unpack_from(self.data, 0)
            self.version = version
            if verify and version >= 1:
                self._verify_checksum()
            if width != record_bytes:
                raise PageError(
                    f"page declares {width}-byte records, expected {record_bytes}"
                )
            if count > self.capacity:
                raise PageError(f"page declares {count} records, over capacity")

    def _set_header(self, count: int) -> None:
        _HEADER.pack_into(self.data, 0, count, self.record_bytes, self.version)

    def _verify_checksum(self) -> None:
        """Check the footer of a version >= 1 image; raise on mismatch."""
        magic, stored = _FOOTER.unpack_from(self.data, PAGE_SIZE - PAGE_FOOTER_BYTES)
        if magic != PAGE_MAGIC:
            raise PageCorruption(
                "page footer magic missing on a version "
                f"{self.version} page — torn write or truncated image"
            )
        computed = content_checksum(memoryview(self.data)[: PAGE_SIZE - 4])
        if computed != stored:
            raise PageCorruption(
                f"page checksum mismatch: stored {stored:#010x}, "
                f"computed {computed:#010x} — the page is torn or corrupt"
            )

    # ------------------------------------------------------------------
    # Capacity and counts
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Records that fit on one page."""
        return (PAGE_SIZE - PAGE_HEADER_BYTES - PAGE_FOOTER_BYTES) // self.record_bytes

    @property
    def record_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def is_full(self) -> bool:
        return self.record_count >= self.capacity

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------

    def _offset(self, slot: int) -> int:
        return PAGE_HEADER_BYTES + slot * self.record_bytes

    def append(self, record: bytes) -> int:
        """Store a record in the next free slot; returns the slot index."""
        if len(record) != self.record_bytes:
            raise PageError(
                f"record is {len(record)} bytes, page stores {self.record_bytes}"
            )
        slot = self.record_count
        if slot >= self.capacity:
            raise PageError("page is full")
        offset = self._offset(slot)
        self.data[offset : offset + self.record_bytes] = record
        # Mutating a legacy image upgrades it: the rewrite will be
        # sealed with a footer, so the page becomes verifiable.
        self.version = max(self.version, PAGE_VERSION)
        self._set_header(slot + 1)
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        """The record stored in ``slot``."""
        if not 0 <= slot < self.record_count:
            raise PageError(f"slot {slot} out of range (page has {self.record_count})")
        offset = self._offset(slot)
        return bytes(self.data[offset : offset + self.record_bytes])

    def records(self) -> Iterator[bytes]:
        """All live records in slot order."""
        for slot in range(self.record_count):
            yield self.read(slot)

    def to_bytes(self) -> bytes:
        """The sealed page image: header + records + checksummed footer.

        Version-0 images that were never mutated serialise verbatim
        (no footer is invented for bytes this writer did not produce);
        anything this writer touched carries a fresh footer and CRC.
        """
        if self.version < 1:
            return bytes(self.data)
        _FOOTER.pack_into(self.data, PAGE_SIZE - PAGE_FOOTER_BYTES, PAGE_MAGIC, 0)
        checksum = content_checksum(memoryview(self.data)[: PAGE_SIZE - 4])
        _FOOTER.pack_into(
            self.data, PAGE_SIZE - PAGE_FOOTER_BYTES, PAGE_MAGIC, checksum
        )
        return bytes(self.data)
