"""Fixed-width record codec for temporal tuples.

The paper's experiments store 128-byte tuples: a 6-byte name, 4-byte
salary, two 4-byte timestamps and 110 bytes of payload the aggregate
never examines (Section 6).  :class:`FixedWidthCodec` reproduces that
layout for any :class:`~repro.relation.schema.Schema`:

* ``str``  attributes — UTF-8, NUL-padded to the declared width;
* ``int``  attributes — 4-byte big-endian signed;
* ``float`` attributes — 8-byte IEEE-754 double;
* the two timestamps — 4-byte big-endian unsigned, **saturating**:
  ``0xFFFF_FFFF`` encodes :data:`~repro.core.interval.FOREVER`, exactly
  the paper's "4 byte timestamps … sufficiently large for our
  relation's lifespan" convention;
* padding — NUL bytes.

Records are constant-size (``schema.record_bytes``), which keeps page
arithmetic trivial and matches the 128 KB–8 MB relation sizes quoted in
Table 3.

The module also owns the byte-level integrity primitive the durable
storage format builds on: :func:`content_checksum`, a CRC-32 over an
arbitrary byte region.  Pages seal themselves with it
(:mod:`repro.storage.page`) and the write-ahead journal CRCs every
record payload (:mod:`repro.storage.journal`), so a torn or bit-flipped
write is *detected* instead of silently decoded into wrong tuples.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.core.interval import FOREVER
from repro.exec.errors import StorageCorruption
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple

__all__ = [
    "CodecError",
    "FixedWidthCodec",
    "TIMESTAMP_BYTES",
    "TIMESTAMP_FOREVER",
    "content_checksum",
]

#: On-disk bytes per timestamp (paper Section 6).
TIMESTAMP_BYTES = 4

#: The saturated on-disk encoding of FOREVER.
TIMESTAMP_FOREVER = 0xFFFF_FFFF


def content_checksum(data: "bytes | bytearray | memoryview") -> int:
    """CRC-32 of ``data`` as an unsigned 32-bit integer.

    The storage layer's single integrity primitive: page footers and
    journal-record headers both store this, so scrub and recovery share
    one notion of "these bytes survived the disk".
    """
    return zlib.crc32(bytes(data)) & 0xFFFF_FFFF


class CodecError(ValueError):
    """Raised when a value cannot be encoded in its declared width."""


class FixedWidthCodec:
    """Encode/decode temporal tuples as fixed-width byte records."""

    def __init__(self, schema: Schema) -> None:
        for attribute in schema.attributes:
            if attribute.type == "int" and attribute.width != 4:
                raise CodecError(
                    f"int attribute {attribute.name!r} must be 4 bytes wide"
                )
            if attribute.type == "float" and attribute.width != 8:
                raise CodecError(
                    f"float attribute {attribute.name!r} must be 8 bytes wide"
                )
        self.schema = schema
        self.record_bytes = schema.record_bytes
        # Compiled batch formats for decode_page_columns, keyed by
        # (attribute position, record count); pages come in exactly two
        # counts (full and tail), so this stays tiny.
        self._column_structs: Dict[Tuple[Optional[int], int], struct.Struct] = {}

    # ------------------------------------------------------------------
    # Timestamps
    # ------------------------------------------------------------------

    @staticmethod
    def encode_timestamp(instant: int) -> bytes:
        """4-byte unsigned, saturating at FOREVER."""
        if instant >= FOREVER:
            return struct.pack(">I", TIMESTAMP_FOREVER)
        if not 0 <= instant < TIMESTAMP_FOREVER:
            raise CodecError(
                f"timestamp {instant} does not fit in {TIMESTAMP_BYTES} bytes"
            )
        return struct.pack(">I", instant)

    @staticmethod
    def decode_timestamp(raw: bytes) -> int:
        value = struct.unpack(">I", raw)[0]
        if value == TIMESTAMP_FOREVER:
            return FOREVER
        return value

    # ------------------------------------------------------------------
    # Whole records
    # ------------------------------------------------------------------

    def encode(self, row: TemporalTuple) -> bytes:
        """One tuple -> ``record_bytes`` bytes."""
        parts: List[bytes] = []
        for attribute, value in zip(self.schema.attributes, row.values):
            if attribute.type == "str":
                raw = value.encode("utf-8")
                if len(raw) > attribute.width:
                    raise CodecError(
                        f"string {value!r} exceeds the {attribute.width}-byte "
                        f"width of attribute {attribute.name!r}"
                    )
                parts.append(raw.ljust(attribute.width, b"\x00"))
            elif attribute.type == "int":
                try:
                    parts.append(struct.pack(">i", value))
                except struct.error as exc:
                    raise CodecError(
                        f"int {value!r} does not fit attribute {attribute.name!r}"
                    ) from exc
            else:  # float
                parts.append(struct.pack(">d", value))
        parts.append(self.encode_timestamp(row.start))
        parts.append(self.encode_timestamp(row.end))
        parts.append(b"\x00" * self.schema.padding)
        record = b"".join(parts)
        if len(record) != self.record_bytes:
            raise CodecError(
                f"encoded {len(record)} bytes for a {self.record_bytes}-byte record"
            )
        return record

    def decode(self, record: bytes) -> TemporalTuple:
        """``record_bytes`` bytes -> one tuple."""
        if len(record) != self.record_bytes:
            raise CodecError(
                f"expected {self.record_bytes}-byte record, got {len(record)}"
            )
        values: List[Any] = []
        offset = 0
        for attribute in self.schema.attributes:
            raw = record[offset : offset + attribute.width]
            offset += attribute.width
            if attribute.type == "str":
                values.append(raw.rstrip(b"\x00").decode("utf-8"))
            elif attribute.type == "int":
                values.append(struct.unpack(">i", raw)[0])
            else:
                values.append(struct.unpack(">d", raw)[0])
        start = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        offset += TIMESTAMP_BYTES
        end = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        return TemporalTuple(tuple(values), start, end)

    def decode_timestamps_only(self, record: bytes) -> Tuple[int, int]:
        """Just the valid-time bounds (fast path for time-only scans).

        Length-validates up front: a truncated record raises a typed
        :class:`~repro.exec.errors.StorageCorruption` instead of a bare
        ``struct.error`` from halfway through the unpack.
        """
        if len(record) != self.record_bytes:
            raise StorageCorruption(
                f"truncated record: expected {self.record_bytes} bytes, "
                f"got {len(record)}"
            )
        offset = sum(a.width for a in self.schema.attributes)
        start = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        end = self.decode_timestamp(
            record[offset + TIMESTAMP_BYTES : offset + 2 * TIMESTAMP_BYTES]
        )
        return start, end

    # ------------------------------------------------------------------
    # Batch column decode (the page-to-row zero-tuple pipeline)
    # ------------------------------------------------------------------

    def _column_unit(self, position: Optional[int]) -> str:
        """One record's struct codes for a column decode.

        Everything the decode does not need is a pad run (``x`` codes),
        so a whole page unpacks in a single C call with no intermediate
        per-record objects: ``position=None`` reads just the two
        timestamps, an attribute position additionally reads that one
        attribute and skips its neighbours.
        """
        widths = [a.width for a in self.schema.attributes]
        padding = self.schema.padding
        if position is None:
            before = sum(widths)
            value_code = ""
            after = 0
        else:
            attribute = self.schema.attributes[position]
            before = sum(widths[:position])
            after = sum(widths[position + 1 :])
            if attribute.type == "int":
                value_code = "i"
            elif attribute.type == "float":
                value_code = "d"
            else:
                value_code = f"{attribute.width}s"
        parts = []
        if before:
            parts.append(f"{before}x")
        parts.append(value_code)
        if after:
            parts.append(f"{after}x")
        parts.append("II")
        if padding:
            parts.append(f"{padding}x")
        return "".join(parts)

    def _column_struct(self, position: Optional[int], count: int) -> struct.Struct:
        key = (position, count)
        compiled = self._column_structs.get(key)
        if compiled is None:
            compiled = struct.Struct(">" + self._column_unit(position) * count)
            self._column_structs[key] = compiled
        return compiled

    def decode_page_columns(
        self,
        region: "bytes | bytearray | memoryview",
        count: int,
        position: Optional[int] = None,
    ) -> Tuple["array[int]", "array[int]", Optional[List[Any]]]:
        """Batch-decode ``count`` records into flat columns.

        ``region`` holds exactly the packed records of one page (header
        and footer already sliced off).  One ``struct`` call unpacks
        the whole page; the flat result is strided into ``array('q')``
        start/end columns plus an optional value column — zero
        intermediate per-record tuples or TemporalTuple objects.
        Saturated on-disk timestamps (``0xFFFF_FFFF``) are widened back
        to :data:`~repro.core.interval.FOREVER` in place.
        """
        values: Optional[List[Any]]
        if count == 0:
            return array("q"), array("q"), ([] if position is not None else None)
        if len(region) != count * self.record_bytes:
            raise StorageCorruption(
                f"page region holds {len(region)} bytes, expected "
                f"{count} x {self.record_bytes}-byte records"
            )
        flat = self._column_struct(position, count).unpack(region)
        if position is None:
            starts = array("q", flat[0::2])
            ends = array("q", flat[1::2])
            values = None
        else:
            raw_values = flat[0::3]
            starts = array("q", flat[1::3])
            ends = array("q", flat[2::3])
            if self.schema.attributes[position].type == "str":
                values = [v.rstrip(b"\x00").decode("utf-8") for v in raw_values]
            else:
                values = list(raw_values)
        # `in` scans at C speed; the per-element widen loop only runs
        # on pages that actually store a saturated timestamp.
        if TIMESTAMP_FOREVER in starts:
            for index, value in enumerate(starts):  # ta: hot
                if value == TIMESTAMP_FOREVER:
                    starts[index] = FOREVER
        if TIMESTAMP_FOREVER in ends:
            for index, value in enumerate(ends):  # ta: hot
                if value == TIMESTAMP_FOREVER:
                    ends[index] = FOREVER
        return starts, ends, values
