"""Fixed-width record codec for temporal tuples.

The paper's experiments store 128-byte tuples: a 6-byte name, 4-byte
salary, two 4-byte timestamps and 110 bytes of payload the aggregate
never examines (Section 6).  :class:`FixedWidthCodec` reproduces that
layout for any :class:`~repro.relation.schema.Schema`:

* ``str``  attributes — UTF-8, NUL-padded to the declared width;
* ``int``  attributes — 4-byte big-endian signed;
* ``float`` attributes — 8-byte IEEE-754 double;
* the two timestamps — 4-byte big-endian unsigned, **saturating**:
  ``0xFFFF_FFFF`` encodes :data:`~repro.core.interval.FOREVER`, exactly
  the paper's "4 byte timestamps … sufficiently large for our
  relation's lifespan" convention;
* padding — NUL bytes.

Records are constant-size (``schema.record_bytes``), which keeps page
arithmetic trivial and matches the 128 KB–8 MB relation sizes quoted in
Table 3.

The module also owns the byte-level integrity primitive the durable
storage format builds on: :func:`content_checksum`, a CRC-32 over an
arbitrary byte region.  Pages seal themselves with it
(:mod:`repro.storage.page`) and the write-ahead journal CRCs every
record payload (:mod:`repro.storage.journal`), so a torn or bit-flipped
write is *detected* instead of silently decoded into wrong tuples.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, List, Tuple

from repro.core.interval import FOREVER
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple

__all__ = [
    "CodecError",
    "FixedWidthCodec",
    "TIMESTAMP_BYTES",
    "TIMESTAMP_FOREVER",
    "content_checksum",
]

#: On-disk bytes per timestamp (paper Section 6).
TIMESTAMP_BYTES = 4

#: The saturated on-disk encoding of FOREVER.
TIMESTAMP_FOREVER = 0xFFFF_FFFF


def content_checksum(data: "bytes | bytearray | memoryview") -> int:
    """CRC-32 of ``data`` as an unsigned 32-bit integer.

    The storage layer's single integrity primitive: page footers and
    journal-record headers both store this, so scrub and recovery share
    one notion of "these bytes survived the disk".
    """
    return zlib.crc32(bytes(data)) & 0xFFFF_FFFF


class CodecError(ValueError):
    """Raised when a value cannot be encoded in its declared width."""


class FixedWidthCodec:
    """Encode/decode temporal tuples as fixed-width byte records."""

    def __init__(self, schema: Schema) -> None:
        for attribute in schema.attributes:
            if attribute.type == "int" and attribute.width != 4:
                raise CodecError(
                    f"int attribute {attribute.name!r} must be 4 bytes wide"
                )
            if attribute.type == "float" and attribute.width != 8:
                raise CodecError(
                    f"float attribute {attribute.name!r} must be 8 bytes wide"
                )
        self.schema = schema
        self.record_bytes = schema.record_bytes

    # ------------------------------------------------------------------
    # Timestamps
    # ------------------------------------------------------------------

    @staticmethod
    def encode_timestamp(instant: int) -> bytes:
        """4-byte unsigned, saturating at FOREVER."""
        if instant >= FOREVER:
            return struct.pack(">I", TIMESTAMP_FOREVER)
        if not 0 <= instant < TIMESTAMP_FOREVER:
            raise CodecError(
                f"timestamp {instant} does not fit in {TIMESTAMP_BYTES} bytes"
            )
        return struct.pack(">I", instant)

    @staticmethod
    def decode_timestamp(raw: bytes) -> int:
        value = struct.unpack(">I", raw)[0]
        if value == TIMESTAMP_FOREVER:
            return FOREVER
        return value

    # ------------------------------------------------------------------
    # Whole records
    # ------------------------------------------------------------------

    def encode(self, row: TemporalTuple) -> bytes:
        """One tuple -> ``record_bytes`` bytes."""
        parts: List[bytes] = []
        for attribute, value in zip(self.schema.attributes, row.values):
            if attribute.type == "str":
                raw = value.encode("utf-8")
                if len(raw) > attribute.width:
                    raise CodecError(
                        f"string {value!r} exceeds the {attribute.width}-byte "
                        f"width of attribute {attribute.name!r}"
                    )
                parts.append(raw.ljust(attribute.width, b"\x00"))
            elif attribute.type == "int":
                try:
                    parts.append(struct.pack(">i", value))
                except struct.error as exc:
                    raise CodecError(
                        f"int {value!r} does not fit attribute {attribute.name!r}"
                    ) from exc
            else:  # float
                parts.append(struct.pack(">d", value))
        parts.append(self.encode_timestamp(row.start))
        parts.append(self.encode_timestamp(row.end))
        parts.append(b"\x00" * self.schema.padding)
        record = b"".join(parts)
        if len(record) != self.record_bytes:
            raise CodecError(
                f"encoded {len(record)} bytes for a {self.record_bytes}-byte record"
            )
        return record

    def decode(self, record: bytes) -> TemporalTuple:
        """``record_bytes`` bytes -> one tuple."""
        if len(record) != self.record_bytes:
            raise CodecError(
                f"expected {self.record_bytes}-byte record, got {len(record)}"
            )
        values: List[Any] = []
        offset = 0
        for attribute in self.schema.attributes:
            raw = record[offset : offset + attribute.width]
            offset += attribute.width
            if attribute.type == "str":
                values.append(raw.rstrip(b"\x00").decode("utf-8"))
            elif attribute.type == "int":
                values.append(struct.unpack(">i", raw)[0])
            else:
                values.append(struct.unpack(">d", raw)[0])
        start = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        offset += TIMESTAMP_BYTES
        end = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        return TemporalTuple(tuple(values), start, end)

    def decode_timestamps_only(self, record: bytes) -> Tuple[int, int]:
        """Just the valid-time bounds (fast path for time-only scans)."""
        offset = sum(a.width for a in self.schema.attributes)
        start = self.decode_timestamp(record[offset : offset + TIMESTAMP_BYTES])
        end = self.decode_timestamp(
            record[offset + TIMESTAMP_BYTES : offset + 2 * TIMESTAMP_BYTES]
        )
        return start, end
