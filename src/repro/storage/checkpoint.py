"""Journaled evaluator checkpoints: resumable long-running aggregation.

A k-ordered aggregation over a large heap file streams for a long time,
and before this module a crash threw the whole scan away.  The k-ordered
evaluator's garbage collection makes its mid-stream state *small* —
after every gc pass the live tree holds only the not-yet-final constant
intervals plus a ``2k + 1`` window of start times — so snapshotting it
is cheap.  :func:`checkpointed_evaluate` therefore periodically captures
:meth:`KOrderedTreeEvaluator.capture_state` (tree preorder-encoded with
the same codec the paged tree spills with), pickles it, and journals it
as a CHECKPOINT record (synced per the journal's fsync policy).

After a crash, :func:`resume_evaluation` takes the checkpoint that
recovery surfaced (``heap.last_recovery.checkpoint``), restores the
evaluator, skips exactly the ``consumed`` triples the snapshot already
folded in, and streams the rest — emitting byte-identical rows to an
uninterrupted run.  When the surviving tree is larger than a caller's
memory budget allows, the restore can be redirected into
:class:`~repro.core.paged_tree.PagedAggregationTreeEvaluator` via
``from_partial_tree``, finishing the aggregation under a hard node
budget with disk spills instead of failing.

The snapshot records the source relation's row count and fingerprint
watermark; resuming against a heap whose committed prefix no longer
covers the snapshot raises
:class:`~repro.exec.errors.RecoveryError` instead of silently merging
state from a different input.
"""

from __future__ import annotations

import itertools
import pickle
from typing import TYPE_CHECKING, Any, Optional

from repro.core.kordered_tree import KOrderedTreeEvaluator
from repro.core.result import TemporalAggregateResult
from repro.exec.errors import RecoveryError
from repro.storage.heapfile import HeapFile
from repro.storage.journal import Journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.counters import OperationCounters

__all__ = [
    "CHECKPOINT_FORMAT",
    "encode_checkpoint",
    "decode_checkpoint",
    "checkpointed_evaluate",
    "resume_evaluation",
]

#: Bumped whenever the snapshot dict's shape changes; resume refuses
#: payloads from a different format rather than guessing.
CHECKPOINT_FORMAT = 1

#: Default triples between checkpoints.
DEFAULT_INTERVAL = 4096


def encode_checkpoint(
    evaluator: KOrderedTreeEvaluator, heap: HeapFile, attribute: Optional[str]
) -> bytes:
    """Serialise the evaluator's mid-stream state as a journal payload."""
    state = evaluator.capture_state()
    state["format"] = CHECKPOINT_FORMAT
    state["source_rows"] = len(heap)
    state["source_uid"] = heap.uid
    state["attribute"] = attribute
    state["aggregate"] = evaluator.aggregate.name
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def decode_checkpoint(payload: bytes) -> dict:
    """Parse and format-check a CHECKPOINT journal payload."""
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise RecoveryError(f"checkpoint payload is unreadable: {exc}") from exc
    if not isinstance(state, dict) or state.get("format") != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint has format {state.get('format') if isinstance(state, dict) else '?'}, "
            f"this build reads format {CHECKPOINT_FORMAT}"
        )
    return state


def checkpointed_evaluate(
    heap: HeapFile,
    evaluator: KOrderedTreeEvaluator,
    *,
    attribute: Optional[str] = None,
    checkpoint_every: int = DEFAULT_INTERVAL,
    journal: Optional[Journal] = None,
    counters: "Optional[OperationCounters]" = None,
) -> TemporalAggregateResult:
    """Evaluate ``heap`` with periodic journaled checkpoints.

    Identical output to ``evaluator.evaluate(heap.scan_triples(...))``;
    the only addition is a CHECKPOINT record every ``checkpoint_every``
    consumed triples, making the scan resumable after a crash.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    journal = journal if journal is not None else heap.journal
    if journal is None:
        raise ValueError(
            "checkpointed evaluation needs a journal; open the heap "
            "with HeapFile.durable()"
        )
    evaluator.begin()
    since_checkpoint = 0
    for start, end, value in heap.scan_triples(attribute):
        evaluator.step(start, end, value)
        since_checkpoint += 1
        if since_checkpoint >= checkpoint_every:
            journal.log_checkpoint(encode_checkpoint(evaluator, heap, attribute))
            if counters is not None:
                counters.checkpoints_written += 1
            since_checkpoint = 0
    return evaluator.finish()


def resume_evaluation(
    heap: HeapFile,
    evaluator: KOrderedTreeEvaluator,
    payload: bytes,
    *,
    attribute: Optional[str] = None,
    checkpoint_every: int = DEFAULT_INTERVAL,
    node_budget: Optional[int] = None,
    journal: Optional[Journal] = None,
    counters: "Optional[OperationCounters]" = None,
) -> TemporalAggregateResult:
    """Continue a checkpointed aggregation after a crash.

    ``payload`` is the CHECKPOINT journal record recovery surfaced
    (``heap.last_recovery.checkpoint``).  The evaluator is restored,
    the already-consumed prefix of the scan is skipped, and the
    remainder streams normally — with fresh checkpoints, so a second
    crash resumes from even later.

    With ``node_budget``, the restored tree is handed to
    :class:`~repro.core.paged_tree.PagedAggregationTreeEvaluator` via
    ``from_partial_tree`` and the tail of the scan finishes under that
    hard budget (spilling to disk); rows already emitted by garbage
    collection before the checkpoint are prepended unchanged.
    """
    state = decode_checkpoint(payload)
    if state.get("attribute") != attribute:
        raise RecoveryError(
            f"checkpoint aggregated attribute {state.get('attribute')!r}, "
            f"resume requested {attribute!r}"
        )
    if state.get("aggregate") != evaluator.aggregate.name:
        raise RecoveryError(
            f"checkpoint used aggregate {state.get('aggregate')!r}, "
            f"this evaluator computes {evaluator.aggregate.name!r}"
        )
    consumed = int(state.get("consumed", 0))
    if consumed > len(heap):
        raise RecoveryError(
            f"checkpoint consumed {consumed} rows but the recovered heap "
            f"holds only {len(heap)} — the snapshot references rows that "
            "were never acknowledged"
        )
    evaluator.restore_state(state)
    remaining = itertools.islice(heap.scan_triples(attribute), consumed, None)

    if node_budget is not None:
        from repro.core.paged_tree import PagedAggregationTreeEvaluator

        emitted = list(evaluator._emitted)
        evaluator._emitted = []
        paged = PagedAggregationTreeEvaluator.from_partial_tree(
            evaluator, node_budget
        )
        for start, end, value in remaining:
            paged.counters.tuples += 1
            paged.insert(start, end, value)
        rows = emitted + paged.traverse().rows
        return TemporalAggregateResult(rows, check=False)

    journal = journal if journal is not None else heap.journal
    since_checkpoint = 0
    for start, end, value in remaining:
        evaluator.step(start, end, value)
        since_checkpoint += 1
        if journal is not None and since_checkpoint >= checkpoint_every:
            journal.log_checkpoint(encode_checkpoint(evaluator, heap, attribute))
            if counters is not None:
                counters.checkpoints_written += 1
            since_checkpoint = 0
    return evaluator.finish()
