"""External merge sort of heap files by valid time.

The paper's bottom line — "the simplest strategy is to first sort the
underlying relation, then apply the k-ordered aggregation tree
algorithm with k = 1" (abstract, Section 7) — makes the sort itself
part of the reproduced system.  This module implements the classic
two-phase external merge sort over :class:`~repro.storage.heapfile.HeapFile`:

1. **Run formation** — read the input in memory-bounded chunks of
   ``run_pages`` pages, sort each chunk by ``(start, end)`` (the
   paper's *totally ordered by time*), write each as a sorted run;
2. **K-way merge** — stream all runs through a heap into the output
   file.

Every page touched goes through the buffer managers, so the I/O cost
the Section 6.3 optimizer weighs against tree memory is measured, not
guessed (see :class:`SortStatistics`).

Failure behavior: the sort either returns a complete sorted output or
raises :class:`~repro.exec.errors.StorageError` — a disk error mid-run
or mid-merge never yields a partially sorted file, and the scratch run
files are removed on every exit path (the fault-injection tests drive
EIO into arbitrary scratch writes to hold this to account).
"""

from __future__ import annotations

import heapq
import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.exec.errors import StorageError
from repro.relation.tuples import TemporalTuple, timestamp_sort_key
from repro.storage.heapfile import HeapFile
from repro.storage.journal import scratch_unlink

__all__ = ["SortStatistics", "external_sort"]


@dataclass
class SortStatistics:
    """What the sort cost: runs formed and pages moved."""

    runs: int = 0
    tuples: int = 0
    run_page_writes: int = 0
    run_page_reads: int = 0
    output_page_writes: int = 0
    temp_paths: List[str] = field(default_factory=list)

    @property
    def total_page_io(self) -> int:
        return self.run_page_writes + self.run_page_reads + self.output_page_writes


def _chunks(heap: HeapFile, tuples_per_run: int) -> Iterator[List[TemporalTuple]]:
    chunk: List[TemporalTuple] = []
    for row in heap.scan():
        chunk.append(row)
        if len(chunk) >= tuples_per_run:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def external_sort(
    heap: HeapFile,
    run_pages: int = 16,
    output_path: Optional[str] = None,
    temp_dir: Optional[str] = None,
    statistics: Optional[SortStatistics] = None,
) -> HeapFile:
    """Sort a heap file by (start, end) into a new heap file.

    ``run_pages`` bounds the memory of run formation (the sort never
    holds more than ``run_pages`` pages of tuples at once).  Runs live
    in ``temp_dir`` when given (and are deleted afterwards), else in
    memory; the output file lives at ``output_path`` or in memory.
    """
    if run_pages < 1:
        raise ValueError("run_pages must be at least 1")
    stats = statistics if statistics is not None else SortStatistics()
    tuples_per_run = max(1, run_pages * heap.records_per_page)

    runs: List[HeapFile] = []
    output: Optional[HeapFile] = None
    try:
        # Phase 1: sorted runs.
        for chunk in _chunks(heap, tuples_per_run):
            chunk.sort(key=timestamp_sort_key)
            if temp_dir is not None:
                fd, path = tempfile.mkstemp(suffix=".run", dir=temp_dir)
                os.close(fd)
                stats.temp_paths.append(path)
            else:
                path = None
            run = HeapFile(heap.schema, path=path, buffer_pages=2, io_tag="scratch")
            runs.append(run)
            run.append_all(chunk)
            run.flush()
            stats.runs += 1
            stats.tuples += len(chunk)
            stats.run_page_writes += run.buffer.stats.page_writes

        # Phase 2: k-way merge.
        output = HeapFile(heap.schema, path=output_path, buffer_pages=2)
        merge_heap: List[tuple] = []
        scanners = [run.scan() for run in runs]
        for index, scanner in enumerate(scanners):
            first = next(scanner, None)
            if first is not None:
                heapq.heappush(merge_heap, (timestamp_sort_key(first), index, first))
        while merge_heap:
            _key, index, row = heapq.heappop(merge_heap)
            output.append(row)
            following = next(scanners[index], None)
            if following is not None:
                heapq.heappush(
                    merge_heap, (timestamp_sort_key(following), index, following)
                )
        output.flush()
    except OSError as exc:
        # Never hand back a partially sorted file: drop the output too,
        # then surface the failure as the typed storage error.
        if output is not None and output_path is not None:
            try:
                output.close()
            except OSError:
                pass  # the disk is already failing; removal below still runs
            scratch_unlink(output_path)
        raise StorageError(
            f"external sort failed after {stats.runs} run(s): {exc}"
        ) from exc
    finally:
        for run in runs:
            stats.run_page_reads += run.buffer.stats.page_reads
            try:
                run.close()
            except OSError:
                pass  # a failing scratch disk must not block cleanup
        for path in stats.temp_paths:
            scratch_unlink(path)

    stats.output_page_writes = output.buffer.stats.page_writes
    return output
