"""A small LRU buffer manager over a page file.

The paper's cost discussion (Section 6.3) weighs main memory against
disk I/O — "if memory is cheaper than disk I/O, then the aggregation
tree is the best approach; … if the disk access time necessary to sort
the relation is less costly than the memory the aggregation tree
requires, then the k-ordered aggregation tree is the best approach."
To make that trade-off measurable, all storage access goes through a
:class:`BufferManager` that caches a bounded number of pages and counts
physical reads, writes, hits and misses.

Eviction is least-recently-used with write-back: dirty pages are
written only when evicted or flushed.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import BinaryIO, Dict

from repro.exec.faults import fsync_handle
from repro.storage.page import PAGE_SIZE, Page, PageCorruption, PageError

__all__ = ["BufferManager", "IOStatistics"]


class IOStatistics:
    """Physical and logical I/O counts for one buffer manager."""

    __slots__ = ("page_reads", "page_writes", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"IOStatistics({parts})"


class BufferManager:
    """LRU page cache with write-back over one open page file."""

    def __init__(self, handle: BinaryIO, record_bytes: int, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self._handle = handle
        self._record_bytes = record_bytes
        self._capacity = capacity
        self._cache: "OrderedDict[int, Page]" = OrderedDict()
        self.stats = IOStatistics()

    # ------------------------------------------------------------------
    # Page file geometry
    # ------------------------------------------------------------------

    def page_count(self) -> int:
        """Pages currently in the file (cached new pages included)."""
        self._handle.seek(0, os.SEEK_END)
        on_disk = self._handle.tell() // PAGE_SIZE
        beyond = max((pid + 1 for pid in self._cache), default=0)
        return max(on_disk, beyond)

    # ------------------------------------------------------------------
    # Fetch / allocate
    # ------------------------------------------------------------------

    def get(self, page_id: int) -> Page:
        """Fetch a page, reading from disk on a miss."""
        if page_id in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self.stats.misses += 1
        self._handle.seek(page_id * PAGE_SIZE)
        raw = self._handle.read(PAGE_SIZE)
        if len(raw) != PAGE_SIZE:
            raise PageError(f"page {page_id} is beyond the end of the file")
        self.stats.page_reads += 1
        try:
            page = Page(self._record_bytes, bytearray(raw))
        except PageCorruption as exc:
            if exc.page_id is None:
                exc.page_id = page_id
            raise
        page.dirty = False
        self._admit(page_id, page)
        return page

    def allocate(self) -> "tuple[int, Page]":
        """Create a fresh page at the end of the file."""
        page_id = self.page_count()
        page = Page(self._record_bytes)
        self._admit(page_id, page)
        return page_id, page

    def _admit(self, page_id: int, page: Page) -> None:
        self._cache[page_id] = page
        self._cache.move_to_end(page_id)
        while len(self._cache) > self._capacity:
            victim_id, victim = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self._write(victim_id, victim)

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------

    def _write(self, page_id: int, page: Page) -> None:
        self._handle.seek(page_id * PAGE_SIZE)
        self._handle.write(page.to_bytes())
        self.stats.page_writes += 1
        page.dirty = False

    def mark_dirty(self, page_id: int) -> None:
        """Note an in-place mutation of a cached page."""
        self._cache[page_id].dirty = True

    def flush(self) -> None:
        """Write every dirty cached page back to disk."""
        for page_id, page in self._cache.items():
            if page.dirty:
                self._write(page_id, page)
        self._handle.flush()

    def sync(self) -> None:
        """Flush every dirty page, then fsync the underlying file.

        This is the data-file half of the commit protocol: the journal
        guarantees nothing about pages the kernel is still holding in
        its own cache, so durable checkpoints call :meth:`sync` before
        the journal marks its records reclaimable.
        """
        self.flush()
        fsync_handle(self._handle)

    def drop_cache(self) -> None:
        """Flush, then empty the cache (used by tests to force misses)."""
        self.flush()
        self._cache.clear()
