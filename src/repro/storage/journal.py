"""Write-ahead journal for heap-file appends and metadata mutations.

The durability protocol is classic WAL.  Before a tuple touches a data
page, its encoded record is journaled; an append is *acknowledged* only
once a COMMIT record naming it has been written (and synced, per
policy).  After a crash, :mod:`repro.storage.recovery` replays the
journal: appends at or below the last COMMIT are restored into the data
file, appends past it are discarded (never acknowledged, so nothing was
promised), and a torn tail — the partial record a power cut leaves at
the end of the live segment — is recognised by CRC and cut off.

Record format (big-endian), written in a **single** ``write`` call so a
torn write always tears *inside* one record::

    ====== ===== ==========================================
    offset bytes field
    ====== ===== ==========================================
    0      2     magic ``JOURNAL_MAGIC`` ("JR")
    2      1     record kind
    3      1     flags (reserved, 0)
    4      4     payload length
    8      4     CRC-32 of the payload
    12     —     payload
    ====== ===== ==========================================

Kinds:

``SEGMENT_HEADER``
    First record of every segment.  Payload ``>QHIxx``: the append
    index of the first APPEND this segment will carry (``base``), the
    record width (so scrub can validate APPEND lengths without the
    schema), and the **epoch** the writer held when it opened the
    segment.  The epoch is the replication fencing token
    (:mod:`repro.replicate`): a promoted replica bumps it, and a
    deposed primary's stale-epoch segments are diagnosable from scrub.
    Pre-epoch segments wrote zeros in these bytes, so they decode as
    epoch 0.
``APPEND``
    Payload is the raw fixed-width record, exactly the bytes the data
    page will hold.
``COMMIT``
    Payload ``>QQ``: total acknowledged append count and the chained
    relation fingerprint after that many appends
    (:func:`repro.relation.relation.fold_fingerprint`), giving recovery
    an end-to-end integrity check that is independent of both the
    journal CRCs and the page checksums.
``CHECKPOINT``
    Opaque evaluator state (:mod:`repro.storage.checkpoint`); recovery
    surfaces the latest one so a killed aggregation resumes instead of
    restarting.
``STATEMENT``
    Exactly-once bookkeeping for the replication layer.  Payload
    ``>QQ`` (relation version, row count after the statement) followed
    by the UTF-8 statement id.  Logged between a batch's APPENDs and
    its COMMIT, so replaying the journal (or shipping it to a replica)
    rebuilds the dedup ledger alongside the rows: a client retrying an
    acknowledged append after a failover receives its original
    ``(version, row_count)`` instead of a second application.

**Segments and rotation.**  The journal lives next to the data file as
``<path>.journal.NNNNNN``.  Once the data file has been synced
(:meth:`Journal.mark_durable`), journal copies of full, durable pages
are dead weight — but the *tail partial page* is rewritten in place by
later appends, and a torn rewrite there can destroy previously
committed records.  Rotation therefore retains from the page-aligned
base ``(committed // records_per_page) * records_per_page``: a fresh
segment is started, the committed records still on the partial tail
page are re-logged into it, a COMMIT seals it, and only then are the
old segments deleted.  Every committed byte is thus always recoverable
from data-file-plus-journal, with the journal bounded by one page of
records plus the un-rotated tail.

**Sanctioned file API.**  All storage-layer file I/O that mutates disk
must go through :func:`data_open` / :func:`scratch_open` /
:func:`scratch_unlink` (lint rule TA009 enforces this): they label the
handles for the fault-injection harness (:mod:`repro.exec.faults`), so
the crash matrix can kill the process at every write the storage layer
performs.

Environment knobs:

``REPRO_JOURNAL_FSYNC``
    ``always`` (sync every record), ``commit`` (sync at COMMIT — the
    default; an acknowledged append survives a crash), or ``never``
    (benchmark baseline; a crash may lose acknowledged appends).
``REPRO_JOURNAL_SEGMENT_BYTES``
    Soft segment-size target before :meth:`mark_durable` is advised
    (default 4 MiB).  Rotation only happens when the caller invokes it,
    keeping the write path free of hidden syncs.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple

from repro.exec.errors import StorageCorruption
from repro.exec.faults import fsync_handle, wrap_handle
from repro.storage.codec import content_checksum

__all__ = [
    "JOURNAL_MAGIC",
    "SEGMENT_HEADER",
    "APPEND",
    "COMMIT",
    "CHECKPOINT",
    "STATEMENT",
    "encode_statement_payload",
    "decode_statement_payload",
    "Journal",
    "JournalStats",
    "JournalState",
    "data_open",
    "scratch_open",
    "scratch_unlink",
    "journal_segments",
]

#: ``"JR"`` — leads every journal record.
JOURNAL_MAGIC = 0x4A52

SEGMENT_HEADER = 1
APPEND = 2
COMMIT = 3
CHECKPOINT = 4
STATEMENT = 5

_KINDS = (SEGMENT_HEADER, APPEND, COMMIT, CHECKPOINT, STATEMENT)

_RECORD_HEADER = struct.Struct(">HBBII")
# base u64, record width u16, epoch u32, 2 pad bytes.  Pre-epoch
# writers packed ">QH6x" — six zero bytes — so their segments decode
# as epoch 0, which is exactly the "never replicated" epoch.
_SEGMENT_PAYLOAD = struct.Struct(">QHIxx")
_COMMIT_PAYLOAD = struct.Struct(">QQ")
_STATEMENT_PREFIX = struct.Struct(">QQ")


def encode_statement_payload(sid: str, version: int, row_count: int) -> bytes:
    """One STATEMENT record payload: dedup-ledger entry bytes."""
    return _STATEMENT_PREFIX.pack(version, row_count) + sid.encode("utf-8")


def decode_statement_payload(payload: bytes) -> Tuple[str, int, int]:
    """``(sid, version, row_count)`` from a STATEMENT payload."""
    if len(payload) < _STATEMENT_PREFIX.size:
        raise StorageCorruption(
            f"STATEMENT payload of {len(payload)} bytes is shorter than "
            f"its {_STATEMENT_PREFIX.size}-byte fixed prefix"
        )
    version, row_count = _STATEMENT_PREFIX.unpack_from(payload, 0)
    sid = payload[_STATEMENT_PREFIX.size :].decode("utf-8", errors="replace")
    return sid, version, row_count

#: Refuse to believe a single journal record payload above this — a
#: corrupt length field must not trigger a gigabyte allocation.
_MAX_PAYLOAD = 64 * 1024 * 1024

_FSYNC_POLICIES = ("always", "commit", "never")
_DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: STATEMENT entries re-logged across rotations: the durable dedup
#: window.  A client can only retry statements it still remembers, so
#: a few hundred per journal bounds the tail risk comfortably.
STATEMENT_RETENTION = 256


def _fsync_policy_from_env() -> str:
    policy = os.environ.get("REPRO_JOURNAL_FSYNC", "commit").strip().lower()
    return policy if policy in _FSYNC_POLICIES else "commit"


def _segment_bytes_from_env() -> int:
    raw = os.environ.get("REPRO_JOURNAL_SEGMENT_BYTES", "")
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_SEGMENT_BYTES
    return value if value > 0 else _DEFAULT_SEGMENT_BYTES


# ----------------------------------------------------------------------
# Sanctioned file primitives (the only direct opens in the storage layer)
# ----------------------------------------------------------------------


def data_open(path: str, mode: str) -> BinaryIO:
    """Open a heap-file data file, labelled ``"data"`` for fault injection."""
    return wrap_handle(open(path, mode), "data")  # ta: ignore[TA009]


def scratch_open(path: str, mode: str) -> BinaryIO:
    """Open a scratch file (sort runs, spills), labelled ``"scratch"``."""
    return wrap_handle(open(path, mode), "scratch")  # ta: ignore[TA009]


def scratch_unlink(path: str) -> None:
    """Remove a scratch file, tolerating its absence (cleanup paths)."""
    try:
        os.unlink(path)  # ta: ignore[TA009]
    except FileNotFoundError:
        pass


def _journal_open(path: str, mode: str) -> BinaryIO:
    return wrap_handle(open(path, mode), "journal")  # ta: ignore[TA009]


def journal_segments(path: str) -> List[str]:
    """Existing segment files for journal ``path``, in sequence order."""
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    found: List[Tuple[int, str]] = []
    if not os.path.isdir(directory):
        return []
    for entry in os.listdir(directory):
        if entry.startswith(prefix):
            suffix = entry[len(prefix) :]
            if suffix.isdigit():
                found.append((int(suffix), os.path.join(directory, entry)))
    found.sort()
    return [segment for _, segment in found]


# ----------------------------------------------------------------------
# Record encode / decode
# ----------------------------------------------------------------------


def encode_record(kind: int, payload: bytes) -> bytes:
    """One journal record as a single contiguous byte string."""
    if kind not in _KINDS:
        raise ValueError(f"unknown journal record kind {kind}")
    return (
        _RECORD_HEADER.pack(
            JOURNAL_MAGIC, kind, 0, len(payload), content_checksum(payload)
        )
        + payload
    )


def _parse_record(blob: bytes, offset: int) -> "Optional[Tuple[int, bytes, int]]":
    """``(kind, payload, next_offset)`` or None if bytes at ``offset``
    are not one complete, CRC-valid record."""
    end = len(blob)
    if offset + _RECORD_HEADER.size > end:
        return None
    magic, kind, _flags, length, crc = _RECORD_HEADER.unpack_from(blob, offset)
    if magic != JOURNAL_MAGIC or kind not in _KINDS or length > _MAX_PAYLOAD:
        return None
    start = offset + _RECORD_HEADER.size
    if start + length > end:
        return None
    payload = blob[start : start + length]
    if content_checksum(payload) != crc:
        return None
    return kind, payload, start + length


def _valid_record_after(blob: bytes, offset: int) -> bool:
    """Does any complete, CRC-valid record start at or after ``offset``?

    Distinguishes a torn tail (garbage, then nothing) from corruption in
    the middle of the log (garbage, then valid records — bit rot, not a
    crash, and must be refused rather than silently truncated).
    """
    probe = blob.find(struct.pack(">H", JOURNAL_MAGIC), offset)
    while probe != -1:
        if _parse_record(blob, probe) is not None:
            return True
        probe = blob.find(struct.pack(">H", JOURNAL_MAGIC), probe + 1)
    return False


class JournalStats:
    """Write-side activity counts for one journal."""

    __slots__ = (
        "records_written",
        "appends_logged",
        "commits",
        "checkpoints",
        "syncs",
        "rotations",
        "bytes_written",
    )

    def __init__(self) -> None:
        self.records_written = 0
        self.appends_logged = 0
        self.commits = 0
        self.checkpoints = 0
        self.syncs = 0
        self.rotations = 0
        self.bytes_written = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"JournalStats({parts})"


class JournalState:
    """What replay found: the recoverable suffix of the append history."""

    __slots__ = (
        "base",
        "appends",
        "committed_count",
        "committed_fingerprint",
        "checkpoint",
        "torn_tail",
        "records_scanned",
        "segments",
        "epoch",
        "statements",
    )

    def __init__(self) -> None:
        #: Append index of ``appends[0]`` (page-aligned retention base).
        self.base = 0
        #: Raw record bytes for appends ``base, base+1, …`` in order.
        self.appends: List[bytes] = []
        #: Last committed append count, or None if no COMMIT survived.
        self.committed_count: Optional[int] = None
        #: Fingerprint chained over the first ``committed_count`` appends.
        self.committed_fingerprint: Optional[int] = None
        #: Latest CHECKPOINT payload that survived (validated at resume).
        self.checkpoint: Optional[bytes] = None
        #: True when the final segment ended in a torn record.
        self.torn_tail = False
        #: Complete records parsed across all segments.
        self.records_scanned = 0
        #: Segment paths that were replayed, in order.
        self.segments: List[str] = []
        #: Highest epoch any surviving segment header carries.
        self.epoch = 0
        #: Replayed ``(sid, version, row_count)`` dedup-ledger entries,
        #: in log order (the replication layer filters to committed).
        self.statements: List[Tuple[str, int, int]] = []

    @property
    def logged_count(self) -> int:
        """Total appends the journal has copies of (committed or not)."""
        return self.base + len(self.appends)


class Journal:
    """Append-only, segmented write-ahead journal for one heap file."""

    def __init__(
        self,
        path: str,
        *,
        record_bytes: int,
        fsync_policy: Optional[str] = None,
        segment_bytes: Optional[int] = None,
        epoch: int = 0,
    ) -> None:
        if fsync_policy is not None and fsync_policy not in _FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync_policy!r}; known: "
                f"{', '.join(_FSYNC_POLICIES)}"
            )
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.path = path
        self.record_bytes = record_bytes
        self.fsync_policy = fsync_policy or _fsync_policy_from_env()
        self.segment_bytes = segment_bytes or _segment_bytes_from_env()
        #: Fencing token stamped into every segment header this journal
        #: opens.  Bumped by replica promotion (:meth:`bump_epoch`).
        self.epoch = epoch
        #: Recent ``(sid, version, row_count)`` entries, re-logged into
        #: every rotation segment so the dedup window survives space
        #: reclamation (bounded by :data:`STATEMENT_RETENTION`).
        self._statements: List[Tuple[str, int, int]] = []
        self.stats = JournalStats()
        self._handle: Optional[BinaryIO] = None
        self._segment_path: Optional[str] = None
        self._segment_seq = 0
        self._segment_size = 0
        #: Total appends logged (base + records in live segments).
        self.record_count = 0
        #: Append index of the first journaled record still retained.
        self.base = 0
        self.committed_count = 0
        self.committed_fingerprint = 0
        existing = journal_segments(path)
        if existing:
            last = os.path.basename(existing[-1])
            self._segment_seq = int(last.rsplit(".", 1)[1])

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def _open_segment(self, base: int) -> None:
        self._segment_seq += 1
        self._segment_path = f"{self.path}.{self._segment_seq:06d}"
        self._handle = _journal_open(self._segment_path, "wb")
        self._segment_size = 0
        self._write_record(
            SEGMENT_HEADER,
            _SEGMENT_PAYLOAD.pack(base, self.record_bytes, self.epoch),
        )

    def _ensure_segment(self) -> None:
        if self._handle is None:
            # A fresh segment continues the append history: its header
            # names the index of the first APPEND it will carry.  (Not
            # ``self.base`` — after a resume that would masquerade as an
            # unsealed rotation and replay would ignore the segment.)
            self._open_segment(self.record_count)

    def _write_record(self, kind: int, payload: bytes) -> None:
        assert self._handle is not None
        blob = encode_record(kind, payload)
        self._handle.write(blob)
        self._segment_size += len(blob)
        self.stats.records_written += 1
        self.stats.bytes_written += len(blob)
        if self.fsync_policy == "always":
            self.sync()

    def sync(self) -> None:
        """Force journaled records to stable storage."""
        if self._handle is not None:
            fsync_handle(self._handle)
            self.stats.syncs += 1

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    def log_append(self, record: bytes) -> int:
        """Journal one encoded tuple; returns its append index.

        Must be called **before** the record touches a data page — that
        ordering *is* the write-ahead property.
        """
        if len(record) != self.record_bytes:
            raise ValueError(
                f"journal expects {self.record_bytes}-byte records, "
                f"got {len(record)}"
            )
        self._ensure_segment()
        index = self.record_count
        self._write_record(APPEND, record)
        self.record_count += 1
        self.stats.appends_logged += 1
        return index

    def commit(self, count: int, fingerprint: int) -> None:
        """Acknowledge every append below ``count``.

        Once this returns (under the default ``commit`` fsync policy),
        those appends survive any crash: they are on stable journal
        storage even if the data pages never made it.
        """
        if count > self.record_count:
            raise ValueError(
                f"cannot commit {count} appends; only {self.record_count} logged"
            )
        self._ensure_segment()
        self._write_record(COMMIT, _COMMIT_PAYLOAD.pack(count, fingerprint))
        if self.fsync_policy == "commit":
            self.sync()
        self.committed_count = count
        self.committed_fingerprint = fingerprint
        self.stats.commits += 1

    def log_checkpoint(self, payload: bytes) -> None:
        """Journal an opaque evaluator checkpoint."""
        self._ensure_segment()
        self._write_record(CHECKPOINT, payload)
        if self.fsync_policy in ("always", "commit"):
            self.sync()
        self.stats.checkpoints += 1

    def log_statement(self, sid: str, version: int, row_count: int) -> None:
        """Journal one exactly-once dedup-ledger entry.

        Called between a batch's APPENDs and its COMMIT so the ledger
        entry becomes durable (and ships to replicas) atomically with
        the rows it acknowledges: the sealing COMMIT covers both.
        """
        self._ensure_segment()
        self._write_record(
            STATEMENT, encode_statement_payload(sid, version, row_count)
        )
        self._statements.append((sid, version, row_count))
        del self._statements[:-STATEMENT_RETENTION]

    def recent_statements(self) -> List[Tuple[str, int, int]]:
        """The retained dedup-ledger entries, oldest first.

        What the shipper sends a bootstrapping replica so its dedup
        window matches the primary's durable one.
        """
        return list(self._statements)

    def bump_epoch(self, epoch: int) -> None:
        """Seal the live segment and continue under a higher epoch.

        Replica promotion: the journal is sealed at the last committed
        record (a fresh segment re-asserts the committed count and
        fingerprint under the new epoch, synced before this returns),
        and every record written from here on carries ``epoch``.  A
        deposed primary's journal keeps its old epoch, which is what
        makes its resurrection diagnosable from scrub.
        """
        if epoch <= self.epoch:
            raise ValueError(
                f"epoch must move forward: {epoch} <= current {self.epoch}"
            )
        old_handle = self._handle
        self._handle = None
        self.epoch = epoch
        self._open_segment(self.record_count)
        self._write_record(
            COMMIT,
            _COMMIT_PAYLOAD.pack(self.committed_count, self.committed_fingerprint),
        )
        self.sync()
        if old_handle is not None:
            old_handle.close()

    @property
    def should_rotate(self) -> bool:
        """Has the live segment outgrown the configured soft target?"""
        return self._segment_size >= self.segment_bytes

    def mark_durable(
        self,
        committed_count: int,
        fingerprint: int,
        records_per_page: int,
        tail_records: Sequence[bytes],
    ) -> None:
        """Reclaim journal space after the data file has been synced.

        The caller asserts that the first ``committed_count`` records
        are durable in the data file.  Retention restarts at the
        page-aligned base — full pages are immutable once written, but
        the partial tail page will be rewritten in place by future
        appends, so its ``tail_records`` (exactly the committed records
        from that base) are re-logged into the fresh segment before the
        old segments are deleted.  A crash anywhere inside this method
        leaves either the old segments or the new complete one; never
        neither.
        """
        base = (committed_count // records_per_page) * records_per_page
        expected_tail = committed_count - base
        if len(tail_records) != expected_tail:
            raise ValueError(
                f"rotation needs the {expected_tail} committed tail records "
                f"from index {base}, got {len(tail_records)}"
            )
        old_handle = self._handle
        old_segments = journal_segments(self.path)
        self._open_segment(base)
        for record in tail_records:
            self._write_record(APPEND, record)
        for sid, version, row_count in self._statements:
            self._write_record(
                STATEMENT, encode_statement_payload(sid, version, row_count)
            )
        self._write_record(
            COMMIT, _COMMIT_PAYLOAD.pack(committed_count, fingerprint)
        )
        self.sync()
        if old_handle is not None:
            old_handle.close()
        for segment in old_segments:
            if segment != self._segment_path:
                os.unlink(segment)  # ta: ignore[TA009]
        self.base = base
        self.record_count = committed_count
        self.committed_count = committed_count
        self.committed_fingerprint = fingerprint
        self.stats.rotations += 1

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_segment(
        segment: str, *, is_last: bool
    ) -> "Tuple[List[Tuple[int, bytes]], bool]":
        """All complete records of one segment, plus a torn-tail flag.

        Raises :class:`~repro.exec.errors.StorageCorruption` when a
        record fails its CRC *and* valid records follow it (bit rot in
        the middle of the log, which no crash produces) or when the
        failure is in a non-final segment; a failure at the very end of
        the last segment is the legitimate torn tail and merely
        truncates.
        """
        with open(segment, "rb") as handle:  # ta: ignore[TA009]
            blob = handle.read()
        records: List[Tuple[int, bytes]] = []
        offset = 0
        while offset < len(blob):
            parsed = _parse_record(blob, offset)
            if parsed is None:
                if not is_last or _valid_record_after(blob, offset + 1):
                    raise StorageCorruption(
                        f"journal record at offset {offset} of {segment} "
                        "failed its CRC with valid records beyond it — "
                        "the journal is corrupt, not torn",
                        path=segment,
                    )
                return records, True
            kind, payload, offset = parsed
            records.append((kind, payload))
        return records, False

    @staticmethod
    def replay(path: str) -> JournalState:
        """Reconstruct the append history from every surviving segment.

        A segment whose header rewinds the append index below what the
        prior segments already cover is a *rotation* segment; it becomes
        authoritative only if it reached its sealing COMMIT — a rotation
        the crash interrupted earlier is ignored, because the old
        segments it was about to replace are still intact and complete.
        """
        state = JournalState()
        segments = journal_segments(path)
        state.segments = segments
        first = True
        for position, segment in enumerate(segments):
            records, torn = Journal._parse_segment(
                segment, is_last=position == len(segments) - 1
            )
            if torn:
                state.torn_tail = True
            if not records:
                continue
            kind, payload = records[0]
            if kind != SEGMENT_HEADER:
                raise StorageCorruption(
                    f"segment {segment} does not start with a header",
                    path=segment,
                )
            base, _width, segment_epoch = _SEGMENT_PAYLOAD.unpack(payload)
            state.epoch = max(state.epoch, segment_epoch)
            expected = base if first else state.base + len(state.appends)
            if base > expected:
                raise StorageCorruption(
                    f"segment {segment} starts at append {base} but only "
                    f"{expected} appends precede it — a journal segment "
                    "is missing",
                    path=segment,
                )
            if base < expected:
                # Rotation: this segment re-logs committed records the
                # old segments already hold.  Adopt it only if it was
                # sealed; an unsealed rotation means the crash hit
                # before the old segments became deletable, so they are
                # still the authoritative copy.
                if not any(k == COMMIT for k, _ in records[1:]):
                    continue
                if base <= state.base:
                    state.base = base
                    state.appends = []
                else:
                    del state.appends[base - state.base :]
            elif first:
                state.base = base
            first = False
            for kind, payload in records[1:]:
                state.records_scanned += 1
                if kind == SEGMENT_HEADER:
                    raise StorageCorruption(
                        f"duplicate segment header in {segment}",
                        path=segment,
                    )
                if kind == APPEND:
                    state.appends.append(payload)
                elif kind == COMMIT:
                    count, fingerprint = _COMMIT_PAYLOAD.unpack(payload)
                    state.committed_count = count
                    state.committed_fingerprint = fingerprint
                elif kind == STATEMENT:
                    state.statements.append(decode_statement_payload(payload))
                else:  # CHECKPOINT — the latest one wins; resume-time
                    # validation guards against rows it references that
                    # never became durable.
                    state.checkpoint = payload
            state.records_scanned += 1  # the header itself
        return state

    @classmethod
    def resume(
        cls,
        path: str,
        state: JournalState,
        *,
        record_bytes: int,
        fsync_policy: Optional[str] = None,
        segment_bytes: Optional[int] = None,
    ) -> "Journal":
        """Re-arm a journal whose history ``state`` was just replayed.

        Only :mod:`repro.storage.recovery` should call this: a journal
        with existing segments must be replayed (and the data file
        reconciled) before new records may be appended, or the append
        indexes would restart from zero and corrupt the history.
        """
        journal = cls(
            path,
            record_bytes=record_bytes,
            fsync_policy=fsync_policy,
            segment_bytes=segment_bytes,
            epoch=state.epoch,
        )
        journal.base = state.base
        journal.record_count = state.logged_count
        journal.committed_count = state.committed_count or 0
        journal.committed_fingerprint = state.committed_fingerprint or 0
        journal._statements = list(state.statements[-STATEMENT_RETENTION:])
        return journal

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
