"""Zone maps: per-page time bounds for windowed scans.

Section 6.3 notes the linked list "would have quite adequate
performance" when only a small window of the timeline is of interest
(the single-year example).  The storage-side complement of that
observation is *page skipping*: if each page's minimum start and
maximum end timestamps are known, a windowed query need only read the
pages whose time bounds overlap the window.  After the paper's
recommended external sort the relation's pages are time-clustered and
a narrow window touches a handful of them.

:class:`ZoneMap` materialises those bounds in one sequential pass (or
incrementally, page by page) and then serves:

* :meth:`pages_overlapping` — the page ids a window must read,
* :meth:`scan_window_triples` — a scan that skips every other page
  (skips are counted, so benches can report the saved I/O),
* :func:`windowed_aggregate` — a convenience that evaluates any core
  algorithm over just the qualifying tuples and clips the result.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.base import coerce_aggregate
from repro.core.engine import make_evaluator
from repro.core.interval import Interval
from repro.core.result import TemporalAggregateResult
from repro.storage.heapfile import HeapFile

__all__ = ["ZoneMap", "windowed_aggregate"]


class ZoneMap:
    """Per-page ``(min_start, max_end)`` bounds over one heap file."""

    def __init__(self, heap: HeapFile) -> None:
        self.heap = heap
        self._bounds: Dict[int, Tuple[int, int]] = {}
        self.pages_skipped = 0
        self.pages_scanned = 0
        self.rebuild()

    def rebuild(self) -> None:
        """(Re)compute bounds with one sequential pass."""
        self._bounds.clear()
        timestamps_only = self.heap.codec.decode_timestamps_only
        for page_id in range(self.heap.buffer.page_count()):
            page = self.heap.buffer.get(page_id)
            low: Optional[int] = None
            high: Optional[int] = None
            for record in page.records():
                start, end = timestamps_only(record)
                low = start if low is None else min(low, start)
                high = end if high is None else max(high, end)
            if low is not None and high is not None:
                self._bounds[page_id] = (low, high)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def page_bounds(self, page_id: int) -> Optional[Tuple[int, int]]:
        """Bounds for one page, or None for an empty page."""
        return self._bounds.get(page_id)

    def pages_overlapping(self, window: Interval) -> List[int]:
        """Page ids whose time bounds intersect ``window``."""
        return [
            page_id
            for page_id, (low, high) in sorted(self._bounds.items())
            if low <= window.end and window.start <= high
        ]

    # ------------------------------------------------------------------
    # Windowed scanning
    # ------------------------------------------------------------------

    def scan_window_triples(
        self, window: Interval, attribute: Optional[str] = None
    ) -> Iterator[Tuple[int, int, Any]]:
        """Triples of tuples overlapping ``window``; other pages skipped.

        Resets and accumulates :attr:`pages_skipped` /
        :attr:`pages_scanned` for the scan.
        """
        heap = self.heap
        if attribute is None:
            position = None
        else:
            position = heap.schema.position_of(attribute)
        qualifying = set(self.pages_overlapping(window))
        self.pages_skipped = len(self._bounds) - len(qualifying)
        self.pages_scanned = len(qualifying)
        decode = heap.codec.decode
        timestamps_only = heap.codec.decode_timestamps_only
        for page_id in sorted(qualifying):
            page = heap.buffer.get(page_id)
            for record in page.records():
                start, end = timestamps_only(record)
                if start > window.end or end < window.start:
                    continue
                if position is None:
                    yield (start, end, None)
                else:
                    yield (start, end, decode(record).values[position])

    def __repr__(self) -> str:
        return f"ZoneMap({len(self._bounds)} pages over {self.heap.path or 'memory'})"


def windowed_aggregate(
    heap: HeapFile,
    aggregate,
    window: Interval,
    attribute: Optional[str] = None,
    *,
    zone_map: Optional[ZoneMap] = None,
    strategy: str = "aggregation_tree",
) -> TemporalAggregateResult:
    """Aggregate over ``window`` only, reading only qualifying pages.

    Equivalent to evaluating the whole relation and
    :meth:`~repro.core.result.TemporalAggregateResult.restrict`-ing,
    but touching just the pages the zone map admits.
    """
    aggregate = coerce_aggregate(aggregate)
    zone_map = zone_map if zone_map is not None else ZoneMap(heap)
    triples = list(zone_map.scan_window_triples(window, attribute))
    evaluator = make_evaluator(strategy, aggregate)
    return evaluator.evaluate(triples).restrict(window)
