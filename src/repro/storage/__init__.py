"""Paged storage substrate: codec, pages, buffer manager, heap files,
external sort.

The paper evaluates over on-disk relations of 128-byte tuples scanned
sequentially (Section 6); this package provides that substrate so the
algorithms and benchmarks can run storage-backed, with physical I/O
counted by the buffer manager.
"""

from repro.storage.buffer import BufferManager, IOStatistics
from repro.storage.codec import (
    CodecError,
    FixedWidthCodec,
    TIMESTAMP_BYTES,
    TIMESTAMP_FOREVER,
)
from repro.storage.external_sort import SortStatistics, external_sort
from repro.storage.heapfile import HeapFile
from repro.storage.page import PAGE_HEADER_BYTES, PAGE_SIZE, Page, PageError
from repro.storage.randomized_scan import randomized_scan, randomized_scan_triples
from repro.storage.zonemap import ZoneMap, windowed_aggregate

__all__ = [
    "CodecError",
    "FixedWidthCodec",
    "TIMESTAMP_BYTES",
    "TIMESTAMP_FOREVER",
    "Page",
    "PageError",
    "PAGE_SIZE",
    "PAGE_HEADER_BYTES",
    "BufferManager",
    "IOStatistics",
    "HeapFile",
    "SortStatistics",
    "external_sort",
    "randomized_scan",
    "randomized_scan_triples",
    "ZoneMap",
    "windowed_aggregate",
]
