"""Paged storage substrate: codec, pages, buffer manager, heap files,
external sort — now crash-safe.

The paper evaluates over on-disk relations of 128-byte tuples scanned
sequentially (Section 6); this package provides that substrate so the
algorithms and benchmarks can run storage-backed, with physical I/O
counted by the buffer manager.

Durability (GUIDE.md §12): pages carry CRC-32 footers
(:mod:`repro.storage.page`), appends are write-ahead journaled
(:mod:`repro.storage.journal`), crashes recover via
:mod:`repro.storage.recovery` (reached through
:meth:`HeapFile.durable`), long aggregations checkpoint through
:mod:`repro.storage.checkpoint`, and ``python -m repro.storage scrub``
is the read-only fsck.
"""

from repro.storage.buffer import BufferManager, IOStatistics
from repro.storage.checkpoint import checkpointed_evaluate, resume_evaluation
from repro.storage.codec import (
    CodecError,
    FixedWidthCodec,
    TIMESTAMP_BYTES,
    TIMESTAMP_FOREVER,
    content_checksum,
)
from repro.storage.external_sort import SortStatistics, external_sort
from repro.storage.heapfile import HeapFile
from repro.storage.journal import Journal, JournalState, JournalStats
from repro.storage.page import (
    PAGE_FOOTER_BYTES,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    Page,
    PageCorruption,
    PageError,
)
from repro.storage.randomized_scan import randomized_scan, randomized_scan_triples
from repro.storage.recovery import (
    RecoveryReport,
    ScrubReport,
    recover,
    scrub,
)
from repro.storage.zonemap import ZoneMap, windowed_aggregate

__all__ = [
    "CodecError",
    "FixedWidthCodec",
    "TIMESTAMP_BYTES",
    "TIMESTAMP_FOREVER",
    "content_checksum",
    "Page",
    "PageError",
    "PageCorruption",
    "PAGE_SIZE",
    "PAGE_HEADER_BYTES",
    "PAGE_FOOTER_BYTES",
    "BufferManager",
    "IOStatistics",
    "HeapFile",
    "Journal",
    "JournalState",
    "JournalStats",
    "RecoveryReport",
    "ScrubReport",
    "recover",
    "scrub",
    "checkpointed_evaluate",
    "resume_evaluation",
    "SortStatistics",
    "external_sort",
    "randomized_scan",
    "randomized_scan_triples",
    "ZoneMap",
    "windowed_aggregate",
]
