"""Page-group randomized scanning (paper Section 7).

Section 7 suggests a cheap defence against the aggregation tree's
sorted-input degeneration: *"the relation's pages randomized when they
are read to avoid linearizing the aggregation tree.  This
randomization could be performed on each group of pages read into
memory, and therefore would not affect the I/O time."*

:func:`randomized_scan_triples` implements exactly that: pages are
still fetched **in file order** (sequential I/O, same page read count
as a plain scan), but the tuples of each ``group_pages``-page window
are shuffled before being handed to the evaluator.  Within-group
shuffling bounds the reordering distance, so the stream stays
``k``-ordered for ``k < group_pages · records_per_page`` — the plain
tree stops degenerating, and the k-ordered tree even remains
applicable if desired.

``benchmarks/test_ablation_randomized_scan.py`` quantifies the win.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Optional, Tuple

from repro.storage.heapfile import HeapFile

__all__ = ["randomized_scan_triples", "randomized_scan"]


def randomized_scan(
    heap: HeapFile, group_pages: int = 8, seed: int = 0
) -> Iterator:
    """Scan full tuples with per-group shuffling (sequential page I/O)."""
    if group_pages < 1:
        raise ValueError("group_pages must be at least 1")
    rng = random.Random(seed)
    decode = heap.codec.decode
    total_pages = heap.buffer.page_count()
    for group_start in range(0, total_pages, group_pages):
        group = []
        for page_id in range(group_start, min(group_start + group_pages, total_pages)):
            page = heap.buffer.get(page_id)
            group.extend(decode(record) for record in page.records())
        rng.shuffle(group)
        yield from group


def randomized_scan_triples(
    heap: HeapFile,
    attribute: Optional[str] = None,
    group_pages: int = 8,
    seed: int = 0,
) -> Iterator[Tuple[int, int, Any]]:
    """Like :meth:`HeapFile.scan_triples`, shuffled per page group."""
    if attribute is None:
        extract = lambda row: None
    else:
        position = heap.schema.position_of(attribute)
        extract = lambda row: row.values[position]
    for row in randomized_scan(heap, group_pages=group_pages, seed=seed):
        yield (row.start, row.end, extract(row))
