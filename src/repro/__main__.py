"""``python -m repro`` — a 10-second demonstration.

Prints the paper's worked example (Table 1) and points at the real
entry points: the TSQL2 shell, the workload generator and the
benchmark harness.
"""

import repro
from repro import employed_relation, temporal_aggregate


def main() -> int:
    print(f"repro {repro.__version__} — Kline & Snodgrass, "
          "'Computing Temporal Aggregates' (ICDE 1995)\n")
    employed = employed_relation()
    print("The Employed relation (paper Figure 1):")
    print(employed.pretty())
    print()
    result, decision = temporal_aggregate(employed, "count", explain=True)
    print("SELECT COUNT(Name) FROM Employed  ->  Table 1:")
    print(result.pretty())
    print()
    print(f"planner: {decision.describe()}")
    print()
    print("next steps:")
    print("  python -m repro.tsql2 --seed        # interactive TSQL2 shell")
    print("  python -m repro.workload out.csv    # generate paper workloads")
    print("  python -m repro.bench all           # regenerate the evaluation")
    print("  docs/GUIDE.md                       # the user guide")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
