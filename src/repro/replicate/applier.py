"""Replica-side application of shipped journal batches.

:class:`ReplicatedTable` is the unit both roles share: one durable
heap file (journal attached, opened through crash recovery) plus the
in-memory :class:`~repro.serve.snapshots.ServedRelation` the query
server actually serves.  The heap is the durability truth — every
shipped batch is journaled and COMMITted there *before* it becomes
visible to readers through the served relation, so a replica killed
mid-replay recovers to a committed prefix and resumes from its
cursor.

:class:`ReplicaApplier` executes the ``rep.*`` ops a shipper sends:

* **hello** — epoch fencing first (a lower-epoch shipper is a deposed
  primary and gets a typed ``StaleEpoch``), then the per-table cursor
  ``(applied_count, applied_version, fingerprint)`` the shipper
  resumes from.
* **sync** — catch-up chunks.  Rows land in the heap as they arrive
  (journaled, so progress survives a crash), but nothing is committed
  or published until the final chunk's fingerprint matches the
  primary's.  A divergent or abandoned sync is rolled back *in place*
  (``_discard_uncommitted`` reopens the heap through the same crash
  recovery that would run after a restart), so the cursor a reconnect
  reports always describes the committed prefix — never an inflated
  in-memory state that would permanently fail the primary's prefix
  check.
* **ship** — one incremental batch.  The chained fingerprint is
  verified *before* any mutation; duplicate deliveries (version at or
  below the applied cursor) are acknowledged idempotently without
  touching anything, which is what makes the shipper's retry loop
  safe.
* **heartbeat** — liveness for the failover monitor.

Every mutation of one table happens under ``table.lock`` (reentrant:
the primary's ship path resyncs a behind replica while already
holding it).  The invariant the lock protects end to end:
``len(table.heap) == row count of table.served.base`` and both carry
the same chained fingerprint, except inside an unfinished sync where
the heap may run ahead (uncommitted).
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.exec.errors import ReplicationError
from repro.relation.relation import (
    TemporalRelation,
    fingerprint_rows,
    fold_fingerprint,
)
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple
from repro.serve.snapshots import ServedRelation
from repro.storage.heapfile import HeapFile
from repro.replicate.wire import decode_rows, require_int, optional_str

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.replicate.node import ReplicationNode

__all__ = ["ReplicatedTable", "ReplicaApplier"]


class ReplicatedTable:
    """One replicated relation: durable heap + served in-memory mirror."""

    def __init__(self, name: str, schema: Schema, path: str) -> None:
        self.name = name
        self.schema = schema
        self.path = path
        #: The replication stream identity read tokens bind to — shared
        #: across every node serving this table (unlike relation uids,
        #: which are per-process).
        self.stream_uid = f"rep:{name.lower()}"
        #: Reentrant: the primary's ship path may resync a behind
        #: replica while already holding the lock for the append.
        self.lock = threading.RLock()
        self.heap: Optional[HeapFile] = None
        self.served: Optional[ServedRelation] = None
        self._fsync_policy: Optional[str] = None
        #: Rows buffered between a sync's first and final chunk; only
        #: published to the served relation when the fingerprint holds.
        self._sync_rows: List[TemporalTuple] = []  # ta: guarded-by(self.lock)

    def open(self, fsync_policy: Optional[str] = None) -> List[Tuple[str, int, int]]:
        """Recover the heap, rebuild the served mirror, and return the
        recovered dedup-ledger entries (for the node's dedup window).

        The served relation's version is bootstrapped from the last
        committed STATEMENT record — version numbers must survive
        restarts, or read tokens handed out before a crash would
        compare against a reset counter.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fsync_policy = fsync_policy
        heap = HeapFile.durable(self.schema, self.path, fsync_policy=fsync_policy)
        report = heap.last_recovery
        statements: List[Tuple[str, int, int]] = (
            list(report.statements) if report is not None else []
        )
        if statements:
            version = statements[-1][1]
        else:
            # Pre-replication data with no ledger: treat the whole
            # content as one batch.  Fresh files start at version 0.
            version = 1 if len(heap) else 0
        relation = TemporalRelation(self.schema, heap.scan(), name=self.name)
        relation.version = version
        self.heap = heap
        self.served = ServedRelation(relation, name=self.name)
        return statements

    def cursor(self) -> Dict[str, Any]:
        """The shipper-resume cursor: applied rows/version/fingerprint."""
        assert self.heap is not None and self.served is not None
        with self.lock:
            version, _ = self.served.stats()
            return {
                "applied_count": len(self.heap),
                "applied_version": version,
                "fingerprint": self.heap.fingerprint,
            }

    def reset_to_committed(self) -> List[Tuple[str, int, int]]:
        """Roll the in-memory state back to the durable committed
        prefix: abandon the live handles (a crash stand-in — nothing
        uncommitted is flushed) and reopen through recovery, which
        discards journal appends past the last COMMIT.  Returns the
        recovered dedup ledger.  Callers already hold the reentrant
        ``self.lock``; re-entering keeps the guard explicit.
        """
        assert self.heap is not None
        with self.lock:
            self._sync_rows = []
            self.heap.abandon()
            return self.open(self._fsync_policy)

    def close(self) -> None:
        if self.heap is not None:
            self.heap.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplicatedTable({self.name!r})"


def _maybe_rotate(table: ReplicatedTable) -> None:
    """Reclaim journal space once the live segment outgrows its target
    (full flush: data-file sync, then rotation)."""
    heap = table.heap
    assert heap is not None
    if heap.journal is not None and heap.journal.should_rotate:
        heap.flush()


class ReplicaApplier:
    """Executes ``rep.*`` frames against a node's replicated tables."""

    def __init__(
        self, node: "ReplicationNode", tables: Dict[str, ReplicatedTable]
    ) -> None:
        self._node = node
        self._tables = tables
        self.batches_applied = 0
        self.duplicates_ignored = 0
        self.rows_applied = 0
        #: Times a table was rolled back to its committed prefix after
        #: an abandoned or diverged sync.
        self.rollbacks = 0

    # ------------------------------------------------------------------
    # Rollback to the committed prefix
    # ------------------------------------------------------------------

    def _discard_uncommitted(self, table: ReplicatedTable) -> None:
        """Drop any uncommitted rows a failed or abandoned sync left in
        the in-memory heap, restoring ``len(heap)``/``fingerprint`` to
        the committed prefix.  Without this the replica's cursor would
        report the inflated state and every subsequent reconnect would
        fail the primary's prefix check ("rebuild the replica") until a
        process restart.  Caller holds ``table.lock``.
        """
        heap = table.heap
        assert heap is not None
        dirty = bool(table._sync_rows)
        if (
            heap.journal is not None
            and len(heap) != (heap.journal.committed_count or 0)
        ):
            dirty = True
        if not dirty:
            return
        self._node.reload_table(table)
        self.rollbacks += 1

    # ------------------------------------------------------------------
    # Lookup / validation
    # ------------------------------------------------------------------

    def _table(self, frame: Dict[str, Any]) -> ReplicatedTable:
        name = frame.get("table")
        if not isinstance(name, str):
            raise ReplicationError("replication frame needs a 'table' name")
        table = self._tables.get(name.lower())
        if table is None:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise ReplicationError(
                f"unknown replicated table {name!r}; replicated: {known}"
            )
        return table

    # ------------------------------------------------------------------
    # rep.hello
    # ------------------------------------------------------------------

    def apply_hello(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._node.observe_epoch(require_int(frame, "epoch"))
        endpoint = optional_str(frame, "endpoint")
        if endpoint is not None:
            self._node.note_primary(endpoint)
        tables_reply: Dict[str, Any] = {}
        for name, info in dict(frame.get("tables") or {}).items():
            table = self._table({"table": name})
            assert table.heap is not None
            width = require_int(dict(info), "record_bytes")
            if width != table.heap.codec.record_bytes:
                raise ReplicationError(
                    f"stream {name!r} ships {width}-byte records but this "
                    f"replica stores {table.heap.codec.record_bytes}-byte "
                    "records — schema mismatch"
                )
            with table.lock:
                # A sync the previous primary abandoned mid-stream left
                # uncommitted rows inflating the heap; report the
                # committed prefix or this shipper can never resume.
                self._discard_uncommitted(table)
                tables_reply[name] = table.cursor()
        self._node.note_heartbeat()
        return {
            "ok": True,
            "op": "rep.hello",
            "epoch": self._node.epoch,
            "tables": tables_reply,
        }

    # ------------------------------------------------------------------
    # rep.ship — one incremental committed batch
    # ------------------------------------------------------------------

    def apply_ship(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._node.observe_epoch(require_int(frame, "epoch"))
        table = self._table(frame)
        heap, served = table.heap, table.served
        assert heap is not None and served is not None
        version = require_int(frame, "version")
        sid = optional_str(frame, "sid")
        self._node.note_heartbeat()
        with table.lock:
            # A ship means no sync is in flight on this table (rep.*
            # ops serialize on one worker; the shipper never
            # interleaves the two) — leftovers are an abandoned sync.
            self._discard_uncommitted(table)
            heap, served = table.heap, table.served
            assert heap is not None and served is not None
            applied_version, _ = served.stats()
            if version <= applied_version:
                # Duplicate delivery (shipper retry after a torn frame
                # or reconnect): already applied, acknowledge as such.
                self.duplicates_ignored += 1
                return {
                    "ok": True,
                    "op": "rep.ship",
                    "table": table.name,
                    "applied_count": len(heap),
                    "applied_version": applied_version,
                    "duplicate": True,
                }
            base_count = require_int(frame, "base_count")
            if version != applied_version + 1 or base_count != len(heap):
                raise ReplicationError(
                    f"replica holds {table.name!r} at v{applied_version}/"
                    f"{len(heap)} rows but the batch expects v{version} on "
                    f"{base_count} rows — resync required"
                )
            records = decode_rows(
                frame.get("rows") or [], heap.codec.record_bytes
            )
            if not records:
                raise ReplicationError("ship batch carries no rows")
            rows = [heap.codec.decode(record) for record in records]
            # Verify the chained fingerprint BEFORE mutating anything:
            # a divergent batch must leave no trace.
            expect = heap.fingerprint
            for row in rows:
                expect = fold_fingerprint(expect, row)
            if expect != require_int(frame, "fingerprint"):
                raise ReplicationError(
                    f"shipped batch v{version} diverges from this replica's "
                    f"fingerprint chain for {table.name!r} — refusing to "
                    "apply (scrub both journals to locate the fork)"
                )
            for row in rows:
                heap.append(row)
            row_count = len(heap)
            if row_count != require_int(frame, "row_count"):
                # The appends above are uncommitted; drop them before
                # raising so the cursor stays on the committed prefix.
                self._discard_uncommitted(table)
                raise ReplicationError(
                    f"batch v{version} lands at {row_count} rows, but the "
                    f"primary acknowledged {frame.get('row_count')}"
                )
            if sid is not None and heap.journal is not None:
                heap.journal.log_statement(sid, version, row_count)
            heap.commit()
            served.append_replicated(
                [(list(row.values), row.start, row.end) for row in rows],
                version,
            )
            if sid is not None:
                self._node.dedup_record(sid, version, row_count)
            _maybe_rotate(table)
        self.batches_applied += 1
        self.rows_applied += len(records)
        return {
            "ok": True,
            "op": "rep.ship",
            "table": table.name,
            "applied_count": row_count,
            "applied_version": version,
            "duplicate": False,
        }

    # ------------------------------------------------------------------
    # rep.sync — catch-up chunks
    # ------------------------------------------------------------------

    def apply_sync(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._node.observe_epoch(require_int(frame, "epoch"))
        table = self._table(frame)
        heap, served = table.heap, table.served
        assert heap is not None and served is not None
        self._node.note_heartbeat()
        with table.lock:
            base_count = require_int(frame, "base_count")
            expected_base = len(heap)
            if base_count != expected_base:
                # A misaligned chunk aborts the whole sync: roll back
                # to the committed prefix so the next attempt (which
                # resumes from our cursor) starts clean.
                self._discard_uncommitted(table)
                raise ReplicationError(
                    f"sync chunk for {table.name!r} starts at row "
                    f"{base_count} but this replica holds {expected_base}"
                )
            records = decode_rows(
                frame.get("rows") or [], heap.codec.record_bytes
            )
            rows = [heap.codec.decode(record) for record in records]
            for row in rows:
                heap.append(row)
            table._sync_rows.extend(rows)
            if not bool(frame.get("final", True)):
                return {
                    "ok": True,
                    "op": "rep.sync",
                    "table": table.name,
                    "applied_count": len(heap),
                    "final": False,
                }
            # Final chunk: verify end-to-end, commit, publish.
            version = require_int(frame, "version")
            row_count = require_int(frame, "row_count")
            fingerprint = require_int(frame, "fingerprint")
            synced = table._sync_rows
            table._sync_rows = []
            if len(heap) != row_count or heap.fingerprint != fingerprint:
                reached, reached_fp = len(heap), heap.fingerprint
                # Roll back to the committed prefix before raising: the
                # uncommitted appends would otherwise inflate the
                # cursor and wedge every future reconnect behind the
                # prefix check.
                self._discard_uncommitted(table)
                raise ReplicationError(
                    f"sync of {table.name!r} diverged: replica reaches "
                    f"{reached} rows / fingerprint "
                    f"{reached_fp:#x}, primary acknowledged "
                    f"{row_count} rows / {fingerprint:#x}"
                )
            for sid, stmt_version, stmt_rows in frame.get("statements") or []:
                if heap.journal is not None:
                    heap.journal.log_statement(
                        str(sid), int(stmt_version), int(stmt_rows)
                    )
                self._node.dedup_record(
                    str(sid), int(stmt_version), int(stmt_rows)
                )
            heap.commit()
            applied_version, _ = served.stats()
            if synced and version > applied_version:
                served.append_replicated(
                    [(list(row.values), row.start, row.end) for row in synced],
                    version,
                )
            else:
                served.adopt_version(version)
            self.rows_applied += len(synced)
            _maybe_rotate(table)
            return {
                "ok": True,
                "op": "rep.sync",
                "table": table.name,
                "applied_count": len(heap),
                "applied_version": version,
                "final": True,
            }

    # ------------------------------------------------------------------
    # rep.heartbeat
    # ------------------------------------------------------------------

    def apply_heartbeat(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._node.observe_epoch(require_int(frame, "epoch"))
        self._node.note_heartbeat()
        return {
            "ok": True,
            "op": "rep.heartbeat",
            "epoch": self._node.epoch,
            "applied": {
                table.name: table.cursor()["applied_count"]
                for table in self._tables.values()
            },
        }

    # ------------------------------------------------------------------
    # Prefix verification (shipper-side helper, but lives with the
    # fingerprint logic)
    # ------------------------------------------------------------------

    @staticmethod
    def prefix_fingerprint(heap: HeapFile, count: int) -> int:
        """Chained fingerprint over the first ``count`` stored rows."""
        from itertools import islice

        return fingerprint_rows(islice(heap.scan(), count))
