"""Failover-aware client: bounded retry, exactly-once appends.

:class:`ReplicatedClient` wraps :class:`~repro.serve.client.QueryClient`
with the replication-era failure handling a caller should not have to
hand-roll:

* **Endpoint rotation** — it holds a list of node endpoints.  A dead
  or unreachable node (``ConnectionClosed``, ``OSError``,
  ``ServerUnavailable``) drops the session and rotates to the next
  endpoint with the supervisor's deterministic jittered backoff.  A
  typed ``NotPrimary`` rotates too, preferring the refusing node's
  ``primary_hint`` when it names a known endpoint; ``StaleEpoch``
  (the node we spoke to was deposed) likewise.
* **Exactly-once appends** — every append carries a statement id
  ``"{client_id}:{seq}"``.  If the acknowledgement is lost to a
  failover, the retry re-sends the *same* sid; whichever node applied
  it first answers from its dedup ledger with the original
  ``(version, row_count)`` instead of applying twice.  The ledger is
  journaled and shipped, so the guarantee spans the failover.
* **Read-your-writes** — acknowledged appends record a
  ``(stream_uid, version)`` token per table; subsequent queries carry
  it, so a lagging replica refuses (``ReplicaLagExceeded``) rather
  than silently serving a snapshot older than the caller's own write.
  The client honours the refusal's ``retry_after_ms`` and retries the
  same node (the batch is in flight to it).

The retry budget is total across rotations, not per endpoint —
``ServerUnavailable`` after the budget means the deployment, not one
node, is down.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, TypeVar

from repro.exec.errors import (
    NotPrimary,
    ReplicaLagExceeded,
    ServerUnavailable,
    StaleEpoch,
)
from repro.exec.supervision import RetryPolicy
from repro.serve.client import QueryClient, QueryReply
from repro.serve.protocol import ConnectionClosed, FrameError

__all__ = ["ReplicatedClient", "FAILOVER_RETRY"]

T = TypeVar("T")

#: Failover retry budget: generous attempts with quick, bounded
#: backoff — a failover needs the promote plus one reconnect, and a
#: dead deployment should fail in about a second, not a minute.
FAILOVER_RETRY = RetryPolicy(max_attempts=12, base_delay=0.05, max_delay=0.4)

#: A lag refusal is progress, not failure — but a replica that never
#: catches up must not spin forever.
MAX_LAG_RETRIES = 50


class ReplicatedClient:
    """One logical session against a replicated deployment."""

    def __init__(
        self,
        endpoints: List[str],
        *,
        client_id: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        connect_retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.endpoints = list(endpoints)
        self.client_id = client_id
        self.timeout = timeout
        self.retry = retry if retry is not None else FAILOVER_RETRY
        #: Per-dial policy handed to QueryClient: one attempt per
        #: endpoint per rotation — the *outer* loop owns the budget.
        self._connect_retry = (
            connect_retry
            if connect_retry is not None
            else RetryPolicy(max_attempts=1, base_delay=0.02, max_delay=0.1)
        )
        self._seq = 0
        self._index = 0
        self._client: Optional[QueryClient] = None
        #: stream uid -> highest acknowledged version (read tokens).
        self.tokens: Dict[str, int] = {}
        self.rotations = 0
        self.lag_retries = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> str:
        return self.endpoints[self._index % len(self.endpoints)]

    def _connected(self) -> QueryClient:
        if self._client is None:
            host, _, port = self.endpoint.rpartition(":")
            self._client = QueryClient(
                host,
                int(port),
                timeout=self.timeout,
                retry=self._connect_retry,
            )
        return self._client

    def _drop(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def _rotate(self, hint: Optional[str] = None) -> None:
        """Move to the next endpoint — or straight to ``hint`` when the
        refusing node told us who the primary is."""
        self._drop()
        self.rotations += 1
        if hint is not None and hint in self.endpoints:
            self._index = self.endpoints.index(hint)
        else:
            self._index = (self._index + 1) % len(self.endpoints)

    def _statement(self, fn: Callable[[QueryClient], T]) -> T:
        """Run one statement with rotation, backoff, and lag retries."""
        policy = self.retry
        lag_retries = 0
        attempt = 0
        last: Optional[BaseException] = None
        while attempt < policy.max_attempts:
            attempt += 1
            try:
                return fn(self._connected())
            except ReplicaLagExceeded as error:
                # The node is valid, just behind our token: brief pause,
                # same node.  Does not consume the rotation budget.
                attempt -= 1
                lag_retries += 1
                self.lag_retries += 1
                if lag_retries > MAX_LAG_RETRIES:
                    raise
                time.sleep(max(error.retry_after_ms, 1) / 1000.0)
                continue
            except NotPrimary as error:
                last = error
                self._rotate(error.primary_hint)
            except StaleEpoch as error:
                last = error
                self._rotate()
            except (
                ConnectionClosed,
                FrameError,
                OSError,
                ServerUnavailable,
            ) as error:
                last = error
                self._rotate()
            if attempt < policy.max_attempts:
                time.sleep(policy.backoff(self._index, attempt))
        raise ServerUnavailable(
            f"no usable node among {self.endpoints} after "
            f"{policy.max_attempts} attempt(s): {last}",
            endpoint=self.endpoint,
            attempts=policy.max_attempts,
            cause=last,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def append(self, table: str, rows: List[List[Any]]) -> tuple:
        """Exactly-once append: one sid across every retry."""
        self._seq += 1
        sid = f"{self.client_id}:{self._seq}"

        def run(client: QueryClient) -> tuple:
            version, row_count = client.append(table, rows, sid=sid)
            uid = client.streams.get(table)
            if uid:
                if version > self.tokens.get(uid, -1):
                    self.tokens[uid] = version
            return version, row_count

        return self._statement(run)

    def query(self, text: str, *, table: Optional[str] = None) -> QueryReply:
        """Query with the read token for ``table`` (when we hold one)."""

        def run(client: QueryClient) -> QueryReply:
            token = None
            if table is not None:
                uid = client.streams.get(table)
                if uid and uid in self.tokens:
                    token = (uid, self.tokens[uid])
            reply = client.query(text, token=token)
            if table is not None:
                uid = client.streams.get(table)
                if uid and reply.pinned_version > self.tokens.get(uid, -1):
                    self.tokens[uid] = reply.pinned_version
            return reply

        return self._statement(run)

    def stats(self) -> Dict[str, Any]:
        return self._statement(lambda client: client.stats())

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ReplicatedClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
