"""Kill-the-primary acceptance harness.

The replication claim is end-to-end: under concurrent client load,
SIGKILL the primary mid-append, promote a replica, and afterwards

* every append any client ever saw acknowledged is present on the
  promoted node, exactly once, in server version order;
* every query any client ran — before, during, or after the failover
  — returned rows identical to a serial replay at its pinned version
  (checked with the swarm harness's own oracle);
* all five of the paper's aggregates (COUNT, SUM, MIN, MAX, AVG) over
  the survivor match a serial engine run over the replayed relation;
* the promoted node carries a strictly higher epoch, and a
  *resurrected* old primary — restarted from its own surviving files
  — is fenced with a typed ``StaleEpoch`` before it can acknowledge
  anything (split-brain check).

The primary runs as a real subprocess (``python -m repro.replicate``)
so the kill is a genuine SIGKILL mid-syscall, not a cooperative stop;
the replica runs in-process so the harness can inspect its state
directly.  Promotion is explicit (the ``rep.promote`` op), not
lease-based — deterministic tests must not wait out wall-clock
leases.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exec.errors import StaleEpoch
from repro.relation.relation import TemporalRelation
from repro.relation.schema import EMPLOYED_SCHEMA
from repro.serve.client import QueryClient
from repro.serve.config import ServerConfig
from repro.serve.server import ServerRunner
from repro.serve.swarm import ClientReport, verify_swarm
from repro.tsql2.executor import Database
from repro.replicate.client import ReplicatedClient
from repro.replicate.node import ReplicationNode, TableSpec

__all__ = ["ChaosReport", "run_failover_chaos", "AGGREGATE_QUERIES"]

#: Shared replication token the chaos nodes authenticate with — the
#: run doubles as coverage that an authenticated cluster replicates,
#: promotes, and fences exactly like an open one.
CHAOS_SECRET = "chaos-repl-token"

#: The five aggregates of the source paper, as served queries.
AGGREGATE_QUERIES = (
    "SELECT COUNT(name) FROM jobs",
    "SELECT SUM(salary) FROM jobs",
    "SELECT MIN(salary) FROM jobs",
    "SELECT MAX(salary) FROM jobs",
    "SELECT AVG(salary) FROM jobs",
)


@dataclass
class ChaosReport:
    """Everything the failover run observed and verified."""

    acked_appends: int = 0
    acked_rows: int = 0
    verified_queries: int = 0
    failover_epoch: int = 0
    old_epoch: int = 0
    rotations: int = 0
    lag_retries: int = 0
    resurrected_fenced: bool = False
    resurrected_refusal: str = ""
    aggregate_rows: Dict[str, List[tuple]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)


def _client_script(
    endpoints: List[str],
    client_id: int,
    appends: int,
    report: ClientReport,
    counter: "_AckCounter",
    errors: List[str],
    retry_totals: List[Tuple[int, int]],
) -> None:
    """One chaos client: interleaved exactly-once appends and tokened
    queries, surviving the failover via the replicated client."""
    client = ReplicatedClient(endpoints, client_id=f"chaos-{client_id}")
    try:
        for i in range(appends):
            rows = (
                (f"c{client_id}_{i}"[:8], 1000 + client_id * 100 + i,
                 10 * i + client_id, 10 * i + client_id + 25),
            )
            version, row_count = client.append(
                "jobs", [list(row) for row in rows]
            )
            report.appends.append(("jobs", rows, version, row_count))
            counter.bump()
            if i % 3 == client_id % 3:
                text = AGGREGATE_QUERIES[(client_id + i) % len(AGGREGATE_QUERIES)]
                reply = client.query(text, table="jobs")
                report.queries.append((text, reply))
    except Exception as error:  # noqa: BLE001 - reported, then re-checked
        errors.append(f"client {client_id}: {type(error).__name__}: {error}")
    finally:
        retry_totals.append((client.rotations, client.lag_retries))
        client.close()


class _AckCounter:
    """Global acknowledged-append counter the kill trigger watches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0  # ta: guarded-by(self._lock)

    def bump(self) -> None:
        with self._lock:
            self.count += 1

    def value(self) -> int:
        with self._lock:
            return self.count


def _spawn_primary(
    data_dir: str, replica_endpoint: str, fsync: str = "commit"
) -> Tuple[subprocess.Popen, str]:
    """Start the primary subprocess; returns (process, endpoint)."""
    src_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..")
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.replicate",
            "primary",
            "--data",
            data_dir,
            "--port",
            "0",
            "--peer",
            replica_endpoint,
            "--table",
            "jobs",
            "--fsync",
            fsync,
            "--secret",
            CHAOS_SECRET,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("REPLICATE READY"):
            break
        if not line and process.poll() is not None:
            raise RuntimeError("primary subprocess died before READY")
    else:
        process.kill()
        raise RuntimeError("primary subprocess never reported READY")
    fields = dict(
        part.split("=", 1) for part in line.split() if "=" in part
    )
    return process, f"{fields['host']}:{fields['port']}"


def run_failover_chaos(
    data_root: str,
    *,
    clients: int = 10,
    appends_per_client: int = 12,
    kill_after_acks: int = 40,
) -> ChaosReport:
    """Run the whole scenario; raises ``AssertionError`` on any broken
    guarantee, returns the :class:`ChaosReport` otherwise."""
    chaos = ChaosReport()
    primary_dir = os.path.join(data_root, "primary")
    replica_dir = os.path.join(data_root, "replica0")
    os.makedirs(primary_dir, exist_ok=True)
    os.makedirs(replica_dir, exist_ok=True)

    replica = ReplicationNode(
        ServerConfig(port=0, role="replica", workers=4),
        tables=[
            TableSpec(
                "jobs", EMPLOYED_SCHEMA, os.path.join(replica_dir, "jobs.heap")
            )
        ],
        fsync_policy="commit",
        repl_secret=CHAOS_SECRET,
    )
    runner = ServerRunner(replica).start()
    replica_endpoint = f"{runner.host}:{runner.port}"
    process, primary_endpoint = _spawn_primary(primary_dir, replica_endpoint)
    endpoints = [primary_endpoint, replica_endpoint]

    reports = [ClientReport(client_id=i) for i in range(clients)]
    counter = _AckCounter()
    retry_totals: List[Tuple[int, int]] = []
    threads = [
        threading.Thread(
            target=_client_script,
            args=(endpoints, i, appends_per_client, reports[i], counter,
                  chaos.errors, retry_totals),
            name=f"chaos-client-{i}",
        )
        for i in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()

        # Let the swarm land enough acknowledged appends, then SIGKILL
        # the primary mid-traffic.
        deadline = time.monotonic() + 60.0
        while counter.value() < kill_after_acks:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"only {counter.value()} acks before the kill deadline"
                )
            time.sleep(0.002)
        chaos.old_epoch = 0
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10.0)

        # Promote the replica explicitly (the deterministic path).
        with QueryClient(runner.host, runner.port) as admin:
            admin.send({"op": "rep.promote", "auth": CHAOS_SECRET})
            promoted = admin.recv()
            chaos.failover_epoch = int(promoted["epoch"])

        for thread in threads:
            thread.join(timeout=120.0)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            raise AssertionError(f"chaos clients wedged: {alive}")
        if chaos.errors:
            raise AssertionError(
                "chaos clients failed: " + "; ".join(chaos.errors)
            )
    finally:
        if process.poll() is None:
            process.kill()
        if process.stdout is not None:
            process.stdout.close()

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    assert replica.role == "primary", replica.role
    assert chaos.failover_epoch > chaos.old_epoch

    # Zero acknowledged loss: replay every acknowledged batch in server
    # version order; the promoted node must hold exactly those rows.
    acked = sorted(
        (
            (version, rows, row_count)
            for report in reports
            for (_t, rows, version, row_count) in report.appends
        ),
        key=lambda item: item[0],
    )
    chaos.acked_appends = len(acked)
    versions = [version for version, _r, _c in acked]
    assert len(set(versions)) == len(versions), (
        f"duplicate acknowledged versions (exactly-once broken): {versions}"
    )
    serial = TemporalRelation(EMPLOYED_SCHEMA, name="jobs")
    for version, rows, row_count in acked:
        serial.append_batch(
            [(list(row[:-2]), row[-2], row[-1]) for row in rows]
        )
        assert serial.version == version, (
            f"acknowledged versions are not contiguous: replay reached "
            f"v{serial.version}, next acknowledged batch is v{version}"
        )
        assert len(serial) == row_count, (
            f"acknowledged v{version} claims {row_count} rows, replay "
            f"reaches {len(serial)}"
        )
    chaos.acked_rows = len(serial)
    table = replica.tables["jobs"]
    assert table.served is not None and table.heap is not None
    survivor = table.served.base
    assert len(survivor) == len(serial), (
        f"promoted node holds {len(survivor)} rows, clients were "
        f"acknowledged for {len(serial)} — acknowledged commits lost or "
        "invented"
    )
    assert survivor.fingerprint == serial.fingerprint, (
        "promoted node's rows diverge from the acknowledged history"
    )
    assert table.heap.fingerprint == serial.fingerprint

    # Every query, at its pinned version, against the swarm oracle.
    chaos.verified_queries = verify_swarm(
        lambda: TemporalRelation(EMPLOYED_SCHEMA, name="jobs"),
        reports,
        "jobs",
    )

    # The five aggregates, served by the survivor vs the serial engine.
    database = Database()
    database.register(serial, name="jobs")
    with ReplicatedClient(
        [replica_endpoint], client_id="chaos-verify"
    ) as verify_client:
        for text in AGGREGATE_QUERIES:
            reply = verify_client.query(text, table="jobs")
            served_rows = [tuple(row) for row in reply.rows]
            serial_rows = [tuple(row) for row in database.execute(text).rows]
            assert served_rows == serial_rows, (
                f"{text!r}: served {served_rows[:3]} != serial "
                f"{serial_rows[:3]}"
            )
            chaos.aggregate_rows[text] = served_rows

    # Resurrect the deposed primary from its own surviving files: it
    # must fence itself on first contact and refuse writes typed.
    resurrected = ReplicationNode(
        ServerConfig(port=0, role="primary", workers=2),
        tables=[
            TableSpec(
                "jobs", EMPLOYED_SCHEMA, os.path.join(primary_dir, "jobs.heap")
            )
        ],
        peers=[replica_endpoint],
        fsync_policy="commit",
        repl_secret=CHAOS_SECRET,
    )
    res_runner = ServerRunner(resurrected).start()
    try:
        chaos.resurrected_fenced = resurrected.role == "fenced"
        assert chaos.resurrected_fenced, (
            f"resurrected primary is {resurrected.role!r}, expected fenced"
        )
        with QueryClient(res_runner.host, res_runner.port) as old_client:
            try:
                old_client.append("jobs", [["zombie", 1, 0, 1]])
            except StaleEpoch as error:
                chaos.resurrected_refusal = (
                    f"StaleEpoch(epoch={error.epoch}, "
                    f"observed_epoch={error.observed_epoch})"
                )
            else:
                raise AssertionError(
                    "deposed primary acknowledged a write after failover"
                )
    finally:
        res_runner.stop()
        runner.stop()

    chaos.rotations = sum(r for r, _l in retry_totals)
    chaos.lag_retries = sum(l for _r, l in retry_totals)
    return chaos


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.replicate.chaos",
        description="SIGKILL a live primary mid-append under load, "
        "promote a replica, and verify zero acknowledged-commit loss.",
    )
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--appends-per-client", type=int, default=12)
    parser.add_argument("--kill-after-acks", type=int, default=40)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        report = run_failover_chaos(
            root,
            clients=args.clients,
            appends_per_client=args.appends_per_client,
            kill_after_acks=args.kill_after_acks,
        )
    print(
        f"acked appends survived: {report.acked_appends} "
        f"({report.acked_rows} rows)\n"
        f"queries verified against serial replay: {report.verified_queries}\n"
        f"failover epoch: {report.old_epoch} -> {report.failover_epoch}\n"
        f"client rotations: {report.rotations}, "
        f"lag retries: {report.lag_retries}\n"
        f"resurrected primary fenced: {report.resurrected_fenced} "
        f"[{report.resurrected_refusal}]"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
