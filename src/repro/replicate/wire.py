"""Wire format for journal shipping.

Replication reuses the serving layer's length-prefixed JSON frame
protocol (:mod:`repro.serve.protocol`) — the shipper is just another
client of the replica's query server, speaking ``rep.*`` ops that the
replication node handles next to ``query``/``append``.  This module
pins down the frame bodies so the shipper, the applier, and the tests
agree on one schema:

``rep.hello``
    Shipper handshake.  Carries the shipper's epoch and, per table,
    the replication stream uid and record width.  The replica answers
    with its own epoch and per-table ``(applied_count,
    applied_version, fingerprint)`` — the cursor the shipper resumes
    from — or refuses a lower epoch with a typed ``StaleEpoch`` (the
    split-brain fence).
``rep.sync``
    Catch-up: one batch of raw records (hex-encoded fixed-width
    bytes) bringing a behind replica from ``base_count`` rows to the
    primary's current ``(version, row_count, fingerprint)`` in one
    jump, plus the retained dedup-ledger entries so exactly-once
    survives the bootstrap.
``rep.ship``
    One committed append batch, shipped synchronously before the
    primary acknowledges its client: rows, the batch's
    ``(version, row_count)`` identity, the statement id, and the
    chained fingerprint after the batch (the replica verifies it
    *before* mutating anything).
``rep.heartbeat``
    Primary liveness, stamped with the epoch.  The replica's failover
    monitor watches the gap since the last one.
``rep.promote`` / ``rep.status``
    Admin: promote this replica now (the deterministic path the chaos
    harness uses instead of waiting out a lease), and inspect
    role/epoch/cursors.

Raw records cross the wire hex-encoded: the frame protocol is JSON,
and fixed-width records are not UTF-8.  At the paper's 128-byte
tuples that doubles the byte count — acceptable for a reproduction;
the framing keeps batches well under ``MAX_FRAME_BYTES``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.errors import ReplicationError

__all__ = [
    "ShipBatch",
    "encode_rows",
    "decode_rows",
    "hello_frame",
    "sync_frame",
    "ship_frame",
    "heartbeat_frame",
    "require_int",
    "optional_str",
    "MAX_SHIP_ROWS",
]

#: Rows per ``rep.sync`` frame: 128-byte records hex-encode to 256
#: bytes, so 8192 rows stay near 2 MiB — comfortably inside the frame
#: protocol's 8 MiB bound with JSON overhead included.
MAX_SHIP_ROWS = 8192


def encode_rows(records: Sequence[bytes]) -> List[str]:
    """Fixed-width records -> JSON-safe hex strings."""
    return [record.hex() for record in records]


def decode_rows(encoded: Sequence[Any], record_bytes: int) -> List[bytes]:
    """Hex strings -> records, validating width (a typed refusal beats
    feeding a torn hex string to the codec)."""
    records: List[bytes] = []
    for item in encoded:
        if not isinstance(item, str):
            raise ReplicationError(
                f"shipped row must be a hex string, got {type(item).__name__}"
            )
        try:
            record = bytes.fromhex(item)
        except ValueError as error:
            raise ReplicationError(f"undecodable shipped row: {error}") from None
        if len(record) != record_bytes:
            raise ReplicationError(
                f"shipped row is {len(record)} bytes; this stream carries "
                f"{record_bytes}-byte records"
            )
        records.append(record)
    return records


class ShipBatch:
    """One committed append batch as the shipper sends it."""

    __slots__ = (
        "table",
        "version",
        "row_count",
        "base_count",
        "fingerprint",
        "sid",
        "records",
    )

    def __init__(
        self,
        *,
        table: str,
        version: int,
        row_count: int,
        base_count: int,
        fingerprint: int,
        sid: str,
        records: Sequence[bytes],
    ) -> None:
        self.table = table
        self.version = version
        self.row_count = row_count
        self.base_count = base_count
        self.fingerprint = fingerprint
        self.sid = sid
        self.records = list(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShipBatch({self.table!r} v{self.version}, "
            f"{len(self.records)} rows -> {self.row_count})"
        )


def hello_frame(
    epoch: int,
    tables: Dict[str, Dict[str, Any]],
    endpoint: Optional[str] = None,
) -> Dict[str, Any]:
    """The shipper's handshake frame.  ``endpoint`` is the primary's
    *serving* address — replicas hand it to redirected clients as the
    ``NotPrimary`` hint."""
    frame: Dict[str, Any] = {"op": "rep.hello", "epoch": epoch, "tables": tables}
    if endpoint:
        frame["endpoint"] = endpoint
    return frame


def ship_frame(epoch: int, batch: ShipBatch) -> Dict[str, Any]:
    """One incremental append batch."""
    return {
        "op": "rep.ship",
        "epoch": epoch,
        "table": batch.table,
        "version": batch.version,
        "row_count": batch.row_count,
        "base_count": batch.base_count,
        "fingerprint": batch.fingerprint,
        "sid": batch.sid,
        "rows": encode_rows(batch.records),
    }


def sync_frame(
    epoch: int,
    table: str,
    *,
    base_count: int,
    version: int,
    row_count: int,
    fingerprint: int,
    records: Sequence[bytes],
    statements: Sequence[Tuple[str, int, int]],
    final: bool,
) -> Dict[str, Any]:
    """One catch-up chunk; ``final`` marks the last chunk of the sync
    (only then does the replica adopt ``version`` and verify the
    fingerprint)."""
    return {
        "op": "rep.sync",
        "epoch": epoch,
        "table": table,
        "base_count": base_count,
        "version": version,
        "row_count": row_count,
        "fingerprint": fingerprint,
        "rows": encode_rows(records),
        "statements": [list(entry) for entry in statements],
        "final": final,
    }


def heartbeat_frame(epoch: int) -> Dict[str, Any]:
    """Primary liveness beacon."""
    return {"op": "rep.heartbeat", "epoch": epoch}


def require_int(frame: Dict[str, Any], key: str) -> int:
    """A mandatory integer field, typed-refused when absent/malformed."""
    value = frame.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReplicationError(f"replication frame needs integer {key!r}")
    return value


def optional_str(frame: Dict[str, Any], key: str) -> Optional[str]:
    value = frame.get(key)
    return value if isinstance(value, str) and value else None
