"""Primary-side journal shipping.

:class:`JournalShipper` owns one :class:`PeerLink` per configured
replica and pushes committed batches to every live link *before* the
primary acknowledges the client (synchronous shipping — the zero
acknowledged-loss guarantee costs one round trip per live replica).

Link lifecycle:

* :meth:`start` connects every peer and starts the heartbeat and
  redial threads.
* A connect performs the ``rep.hello`` handshake, verifies that the
  replica's applied prefix lies on this primary's fingerprint chain
  (a diverged replica is refused — it must be rebuilt, not silently
  overwritten), then streams a ``rep.sync`` catch-up for whatever the
  replica is missing, chunked under the frame-size bound.
* :meth:`ship` sends one batch to each live link.  A dead socket
  marks the link down (the redial thread revives it); a typed
  ``StaleEpoch`` from the replica means *this* primary was deposed —
  it fences itself immediately and propagates the refusal to the
  client whose append triggered it.
* The **heartbeat thread** paces on :class:`threading.Event` waits
  (no wall-clock reads) and only beats live links — short socket
  round trips, so replica failover monitors see liveness on schedule
  no matter how long a catch-up sync elsewhere takes.
* The **redial thread** revives dead links and completes deferred
  per-table syncs.  A full catch-up can take arbitrarily long, which
  is exactly why it must not share a thread with the heartbeats: a
  slow resync of one replica must never starve another replica's
  lease.

Lock discipline — the order is ``table.lock → link.lock``, never the
reverse.  The append path holds ``table.lock`` when it ships, so no
code may touch table state while holding ``link.lock``; every
connect-time sync therefore works from a :class:`TableSnapshot` built
under ``table.lock`` *before* ``link.lock`` is acquired.  All
per-link I/O happens under ``link.lock``; ship order per link matches
commit order because the append path itself is serialized per table.
"""

from __future__ import annotations

import socket
import threading
from itertools import islice
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.exec.errors import (
    ReplicationError,
    StaleEpoch,
    TemporalAggregateError,
)
from repro.serve.client import raise_for_error
from repro.serve.protocol import (
    ConnectionClosed,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.relation.relation import fingerprint_rows
from repro.replicate.wire import (
    MAX_SHIP_ROWS,
    ShipBatch,
    heartbeat_frame,
    hello_frame,
    require_int,
    ship_frame,
    sync_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.replicate.node import ReplicationNode

__all__ = ["PeerLink", "TableSnapshot", "JournalShipper"]

#: Seconds before a replication socket operation is declared dead.
LINK_TIMEOUT = 10.0


class PeerLink:
    """One replica connection: socket, liveness, and counters."""

    def __init__(self, endpoint: str) -> None:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"peer endpoint must be host:port, got {endpoint!r}")
        self.endpoint = endpoint
        self.host = host
        self.port = int(port)
        #: Serializes all I/O on this link: ships, heartbeats, redials.
        #: Holders must not acquire any table lock (see module docs).
        self.lock = threading.Lock()
        self.sock: Optional[socket.socket] = None  # ta: guarded-by(self.lock)
        self.alive = False  # ta: guarded-by(self.lock)
        #: Tables a partial reconnect left behind the primary — the
        #: redial thread finishes them with a full-snapshot reconnect.
        self.pending_sync: Set[str] = set()  # ta: guarded-by(self.lock)
        self.ships = 0  # ta: guarded-by(self.lock)
        self.syncs = 0  # ta: guarded-by(self.lock)
        self.drops = 0  # ta: guarded-by(self.lock)

    def close_locked(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None
        self.alive = False
        self.pending_sync = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerLink({self.endpoint!r})"


class TableSnapshot:
    """One table's shippable state, materialized under ``table.lock``.

    The connect/sync path consumes only this — never live table state
    — so a reconnect can run entirely under ``link.lock`` without ever
    acquiring a table lock (the ABBA hazard against the append path,
    which holds ``table.lock`` while shipping).
    """

    __slots__ = ("name", "rows", "total", "version", "fingerprint",
                 "statements", "codec")

    def __init__(
        self,
        *,
        name: str,
        rows: List[Any],
        total: int,
        version: int,
        fingerprint: int,
        statements: List[Tuple[str, int, int]],
        codec: Any,
    ) -> None:
        self.name = name
        self.rows = rows
        self.total = total
        self.version = version
        self.fingerprint = fingerprint
        self.statements = statements
        self.codec = codec


class JournalShipper:
    """Ships committed batches from one primary to its replicas."""

    def __init__(
        self,
        node: "ReplicationNode",
        peers: List[str],
        *,
        heartbeat_ms: float = 100.0,
    ) -> None:
        self._node = node
        self.links = [PeerLink(endpoint) for endpoint in peers]
        self._heartbeat_s = max(heartbeat_ms, 1.0) / 1000.0
        self._stop = threading.Event()
        self._beat_thread: Optional[threading.Thread] = None
        self._redial_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Dial every peer (best effort — a down replica stays a dead
        link the redial thread keeps reviving) and start beating."""
        snapshots = self._snapshot_tables()
        for link in self.links:
            with link.lock:
                try:
                    self._connect_locked(link, snapshots)
                except StaleEpoch:
                    # A higher epoch exists: _receive already fenced
                    # the node.  Starting still succeeds — a fenced
                    # node must stay up to serve typed refusals.
                    link.close_locked()
                except (TemporalAggregateError, ConnectionClosed, FrameError, OSError):
                    link.close_locked()
        self._beat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-shipper-beat", daemon=True
        )
        self._beat_thread.start()
        self._redial_thread = threading.Thread(
            target=self._redial_loop, name="repro-shipper-redial", daemon=True
        )
        self._redial_thread.start()

    def signal_stop(self) -> None:
        """Flag the shipper down without touching any link.

        The fence path calls this *while a link lock may be held on
        the current call stack* (a StaleEpoch reply surfaces inside
        ``_connect_locked``/``ship``), so it must not try to close
        sockets — :meth:`stop` does that later, lock-free to callers.
        """
        self._stop.set()

    def stop(self, join: bool = True) -> None:
        """Signal both threads down and close every link.
        ``join=False`` is for callers running *on* one of those
        threads (fencing discovered during a heartbeat must not
        deadlock joining itself)."""
        self._stop.set()
        current = threading.current_thread()
        for thread in (self._beat_thread, self._redial_thread):
            if join and thread is not None and thread is not current:
                thread.join(timeout=LINK_TIMEOUT)
        for link in self.links:
            with link.lock:
                link.close_locked()

    # ------------------------------------------------------------------
    # Table snapshots (always built before any link lock is taken)
    # ------------------------------------------------------------------

    def _snapshot_tables(
        self, names: Optional[Set[str]] = None
    ) -> Dict[str, TableSnapshot]:
        """Materialize shippable state for the named tables (all, when
        ``names`` is None), one ``table.lock`` at a time.

        Callers must hold **no link lock** (a link-lock holder waiting
        on a table lock is the ABBA deadlock against the append path)
        and at most the locks of tables in ``names`` — those re-enter
        their own reentrant lock, which the ship path's inline redial
        relies on.
        """
        snapshots: Dict[str, TableSnapshot] = {}
        for table in self._node.replicated_tables():
            if names is not None and table.name not in names:
                continue
            heap = table.heap
            assert heap is not None and table.served is not None
            with table.lock:
                rows = list(heap.scan())
                version, _ = table.served.stats()
                statements = (
                    heap.journal.recent_statements()
                    if heap.journal is not None
                    else []
                )
                if statements:
                    # Mid-append snapshot: the in-flight batch is
                    # journaled (ledger included) but not yet published
                    # to the served relation — the ledger's tail, not
                    # the served version, names the heap's state.
                    version = max(version, statements[-1][1])
                snapshots[table.name] = TableSnapshot(
                    name=table.name,
                    rows=rows,
                    total=len(heap),
                    version=version,
                    fingerprint=heap.fingerprint,
                    statements=statements,
                    codec=heap.codec,
                )
        return snapshots

    # ------------------------------------------------------------------
    # Connect / resync
    # ------------------------------------------------------------------

    def _connect_locked(
        self, link: PeerLink, snapshots: Dict[str, TableSnapshot]
    ) -> None:
        """Handshake and catch the replica up from ``snapshots``.

        Caller holds ``link.lock`` and must have built ``snapshots``
        beforehand; no table lock is acquired here.  Tables without a
        snapshot are deferred to ``link.pending_sync`` (the redial
        thread reconnects with a full snapshot set).  Raises on any
        failure (caller marks the link).
        """
        link.close_locked()
        sock = socket.create_connection(
            (link.host, link.port), timeout=LINK_TIMEOUT
        )
        try:
            # The query server greets every connection with its hello
            # frame; consume it before speaking rep.* ops.
            raise_for_error(recv_frame(sock))
            tables = {
                table.name: {"record_bytes": table.heap.codec.record_bytes}
                for table in self._node.replicated_tables()
            }
            self._send(
                sock,
                hello_frame(self._node.epoch, tables, self._node.endpoint),
            )
            reply = self._receive(sock)
            cursors = dict(reply.get("tables") or {})
            deferred: Set[str] = set()
            for table in self._node.replicated_tables():
                snapshot = snapshots.get(table.name)
                if snapshot is None:
                    deferred.add(table.name)
                    continue
                cursor = dict(cursors.get(table.name) or {})
                self._sync_snapshot_locked(sock, snapshot, cursor)
        except BaseException:
            sock.close()
            raise
        link.sock = sock
        link.alive = True
        link.pending_sync = deferred

    def _sync_snapshot_locked(
        self,
        sock: socket.socket,
        snapshot: TableSnapshot,
        cursor: Dict[str, Any],
    ) -> None:
        """Bring one table from the replica's cursor to the snapshot's
        tail.  Pure snapshot reads and socket I/O — no table state."""
        applied = require_int(cursor, "applied_count")
        if applied > snapshot.total:
            raise ReplicationError(
                f"replica holds {applied} rows of {snapshot.name!r} but this "
                f"primary snapshot only has {snapshot.total} — refusing to "
                "ship into a longer history (rebuild the replica, or retry "
                "once the snapshot catches up)"
            )
        if applied:
            prefix = fingerprint_rows(islice(snapshot.rows, applied))
            if prefix != require_int(cursor, "fingerprint"):
                raise ReplicationError(
                    f"replica's first {applied} rows of {snapshot.name!r} "
                    "diverge from this primary's fingerprint chain — "
                    "refusing to ship (rebuild the replica)"
                )
        if (
            applied == snapshot.total
            and require_int(cursor, "applied_version") >= snapshot.version
        ):
            return
        encoded = [snapshot.codec.encode(row) for row in snapshot.rows[applied:]]
        chunks = [
            encoded[i : i + MAX_SHIP_ROWS]
            for i in range(0, len(encoded), MAX_SHIP_ROWS)
        ] or [[]]
        base = applied
        for index, chunk in enumerate(chunks):
            final = index == len(chunks) - 1
            self._send(
                sock,
                sync_frame(
                    self._node.epoch,
                    snapshot.name,
                    base_count=base,
                    version=snapshot.version,
                    row_count=snapshot.total,
                    fingerprint=snapshot.fingerprint,
                    records=chunk,
                    statements=snapshot.statements if final else [],
                    final=final,
                ),
            )
            self._receive(sock)
            base += len(chunk)

    def _send(self, sock: socket.socket, frame: Dict[str, Any]) -> None:
        """One stamped frame out: the shared replication auth token
        rides every ``rep.*`` frame when the node has one configured."""
        secret = self._node.repl_secret
        if secret is not None:
            frame["auth"] = secret
        send_frame(sock, frame)

    def _receive(self, sock: socket.socket) -> Dict[str, Any]:
        """One reply, with the epoch fence applied: a peer refusing us
        because a *higher* epoch exists means we were deposed — fence
        now.  A peer that merely fenced itself against our (current)
        epoch is just a dead link, not a demotion."""
        try:
            return raise_for_error(recv_frame(sock))
        except StaleEpoch as error:
            if error.observed_epoch > self._node.epoch:
                self._node.fence(error.observed_epoch)
            raise

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def ship(self, batch: ShipBatch) -> int:
        """Ship one committed batch to every live link.

        The caller is the append path and holds the shipped table's
        (reentrant) lock — and no other table's.  Returns the number
        of replicas that applied the batch.  Dead links are skipped
        (the redial thread revives them; the reconnect sync carries
        this batch).  A transient mid-ship failure gets exactly one
        immediate redial, syncing *only the shipped table* from a
        snapshot built outside ``link.lock`` — other tables are
        deferred to the redial thread, because snapshotting them here
        could interleave table locks with a concurrent appender.
        ``StaleEpoch`` propagates after self-fencing — the caller's
        client must see the typed refusal.
        """
        delivered = 0
        for link in self.links:
            redial = False
            with link.lock:
                if not link.alive or link.sock is None:
                    continue
                try:
                    self._send(link.sock, ship_frame(self._node.epoch, batch))
                    self._receive(link.sock)
                    link.ships += 1
                    delivered += 1
                except StaleEpoch:
                    link.close_locked()
                    raise
                except (
                    TemporalAggregateError,
                    ConnectionClosed,
                    FrameError,
                    OSError,
                ):
                    # A torn frame or a cursor mismatch: one immediate
                    # redial catches the replica up — the reconnect
                    # sync includes this batch, already in our heap.
                    # (Duplicate delivery on the replica is idempotent,
                    # so overlap with a half-applied ship is safe.)
                    link.drops += 1
                    link.close_locked()
                    redial = True
            if not redial:
                continue
            # Snapshot with no link lock held: the shipped table's
            # lock is already ours (reentrant), and no other table
            # lock is touched.
            snapshots = self._snapshot_tables({batch.table})
            with link.lock:
                try:
                    self._connect_locked(link, snapshots)
                    link.syncs += 1
                    delivered += 1
                except StaleEpoch:
                    link.close_locked()
                    raise
                except (
                    TemporalAggregateError,
                    ConnectionClosed,
                    FrameError,
                    OSError,
                ):
                    link.close_locked()
        return delivered

    # ------------------------------------------------------------------
    # Heartbeats and redials (separate threads: a slow catch-up sync
    # must never delay another replica's liveness signal)
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Beat every live link each tick — short I/O only, no table
        locks, no reconnects."""
        while not self._stop.wait(self._heartbeat_s):
            if self._node.role != "primary":
                return
            for link in self.links:
                with link.lock:
                    if not link.alive or link.sock is None:
                        continue
                    try:
                        self._send(
                            link.sock, heartbeat_frame(self._node.epoch)
                        )
                        self._receive(link.sock)
                    except StaleEpoch:
                        # fence() already ran inside _receive; the
                        # loop exits on the role check above.
                        link.close_locked()
                    except (ConnectionClosed, FrameError, OSError):
                        link.drops += 1
                        link.close_locked()

    def _redial_loop(self) -> None:
        """Revive dead links and finish deferred per-table syncs.

        Snapshots are built first, with no link lock held; the
        reconnect itself then runs under ``link.lock`` consuming only
        snapshot state — the one sanctioned direction of the
        ``table.lock → link.lock`` order.
        """
        while not self._stop.wait(self._heartbeat_s):
            if self._node.role != "primary":
                return
            for link in self.links:
                with link.lock:
                    needs_work = not link.alive or bool(link.pending_sync)
                if not needs_work:
                    continue
                snapshots = self._snapshot_tables()
                with link.lock:
                    if link.alive and not link.pending_sync:
                        # A ship's inline redial beat us to it.
                        continue
                    try:
                        self._connect_locked(link, snapshots)
                        link.syncs += 1
                    except StaleEpoch:
                        link.close_locked()
                    except (
                        TemporalAggregateError,
                        ConnectionClosed,
                        FrameError,
                        OSError,
                    ):
                        link.close_locked()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def peer_stats(self) -> List[Dict[str, Any]]:
        stats: List[Dict[str, Any]] = []
        for link in self.links:
            with link.lock:
                stats.append(
                    {
                        "endpoint": link.endpoint,
                        "alive": link.alive,
                        "ships": link.ships,
                        "syncs": link.syncs,
                        "drops": link.drops,
                        "pending_sync": sorted(link.pending_sync),
                    }
                )
        return stats
