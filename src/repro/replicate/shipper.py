"""Primary-side journal shipping.

:class:`JournalShipper` owns one :class:`PeerLink` per configured
replica and pushes committed batches to every live link *before* the
primary acknowledges the client (synchronous shipping — the zero
acknowledged-loss guarantee costs one round trip per live replica).

Link lifecycle:

* :meth:`start` connects every peer and starts the heartbeat thread.
* A connect performs the ``rep.hello`` handshake, verifies that the
  replica's applied prefix lies on this primary's fingerprint chain
  (a diverged replica is refused — it must be rebuilt, not silently
  overwritten), then streams a ``rep.sync`` catch-up for whatever the
  replica is missing, chunked under the frame-size bound.
* :meth:`ship` sends one batch to each live link.  A dead socket
  marks the link down (the heartbeat thread redials it); a typed
  ``StaleEpoch`` from the replica means *this* primary was deposed —
  it fences itself immediately and propagates the refusal to the
  client whose append triggered it.
* The heartbeat thread paces on :class:`threading.Event` waits (no
  wall-clock reads), beats every live link so replica failover
  monitors see liveness, and redials dead links each tick.  It exits
  on stop or when the node stops being primary.

All per-link I/O happens under ``link.lock``; ship order per link
matches commit order because the append path itself is serialized per
table.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.exec.errors import ReplicationError, StaleEpoch
from repro.serve.client import raise_for_error
from repro.serve.protocol import (
    ConnectionClosed,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.relation.relation import fingerprint_rows
from repro.replicate.wire import (
    MAX_SHIP_ROWS,
    ShipBatch,
    heartbeat_frame,
    hello_frame,
    require_int,
    ship_frame,
    sync_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.replicate.node import ReplicationNode

__all__ = ["PeerLink", "JournalShipper"]

#: Seconds before a replication socket operation is declared dead.
LINK_TIMEOUT = 10.0


class PeerLink:
    """One replica connection: socket, liveness, and counters."""

    def __init__(self, endpoint: str) -> None:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"peer endpoint must be host:port, got {endpoint!r}")
        self.endpoint = endpoint
        self.host = host
        self.port = int(port)
        #: Serializes all I/O on this link: ships, heartbeats, redials.
        self.lock = threading.Lock()
        self.sock: Optional[socket.socket] = None  # ta: guarded-by(self.lock)
        self.alive = False  # ta: guarded-by(self.lock)
        self.ships = 0  # ta: guarded-by(self.lock)
        self.syncs = 0  # ta: guarded-by(self.lock)
        self.drops = 0  # ta: guarded-by(self.lock)

    def close_locked(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerLink({self.endpoint!r})"


class JournalShipper:
    """Ships committed batches from one primary to its replicas."""

    def __init__(
        self,
        node: "ReplicationNode",
        peers: List[str],
        *,
        heartbeat_ms: float = 100.0,
    ) -> None:
        self._node = node
        self.links = [PeerLink(endpoint) for endpoint in peers]
        self._heartbeat_s = max(heartbeat_ms, 1.0) / 1000.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Dial every peer (best effort — a down replica stays a dead
        link the heartbeat thread keeps redialing) and start beating."""
        for link in self.links:
            with link.lock:
                try:
                    self._connect_locked(link)
                except StaleEpoch:
                    # A higher epoch exists: _receive already fenced
                    # the node.  Starting still succeeds — a fenced
                    # node must stay up to serve typed refusals.
                    link.close_locked()
                except (ReplicationError, ConnectionClosed, FrameError, OSError):
                    link.close_locked()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-shipper", daemon=True
        )
        self._thread.start()

    def signal_stop(self) -> None:
        """Flag the shipper down without touching any link.

        The fence path calls this *while a link lock may be held on
        the current call stack* (a StaleEpoch reply surfaces inside
        ``_connect_locked``/``ship``), so it must not try to close
        sockets — :meth:`stop` does that later, lock-free to callers.
        """
        self._stop.set()

    def stop(self, join: bool = True) -> None:
        """Signal the heartbeat thread down and close every link.
        ``join=False`` is for callers running *on* that thread
        (fencing discovered during a heartbeat must not deadlock
        joining itself)."""
        self._stop.set()
        thread = self._thread
        if join and thread is not None and thread is not threading.current_thread():
            thread.join(timeout=LINK_TIMEOUT)
        for link in self.links:
            with link.lock:
                link.close_locked()

    # ------------------------------------------------------------------
    # Connect / resync
    # ------------------------------------------------------------------

    def _connect_locked(self, link: PeerLink) -> None:
        """Handshake and catch the replica up.  Caller holds
        ``link.lock``; raises on any failure (caller marks the link)."""
        link.close_locked()
        sock = socket.create_connection(
            (link.host, link.port), timeout=LINK_TIMEOUT
        )
        try:
            # The query server greets every connection with its hello
            # frame; consume it before speaking rep.* ops.
            raise_for_error(recv_frame(sock))
            tables = {
                table.name: {"record_bytes": table.heap.codec.record_bytes}
                for table in self._node.replicated_tables()
            }
            send_frame(
                sock,
                hello_frame(self._node.epoch, tables, self._node.endpoint),
            )
            reply = self._receive(sock)
            cursors = dict(reply.get("tables") or {})
            for table in self._node.replicated_tables():
                cursor = dict(cursors.get(table.name) or {})
                self._sync_table_locked(sock, table, cursor)
        except BaseException:
            sock.close()
            raise
        link.sock = sock
        link.alive = True

    def _sync_table_locked(
        self, sock: socket.socket, table: Any, cursor: Dict[str, Any]
    ) -> None:
        """Bring one table from the replica's cursor to our tail."""
        heap = table.heap
        with table.lock:
            applied = require_int(cursor, "applied_count")
            total = len(heap)
            if applied > total:
                raise ReplicationError(
                    f"replica holds {applied} rows of {table.name!r} but this "
                    f"primary only has {total} — refusing to ship into a "
                    "longer history (rebuild the replica)"
                )
            if applied:
                from itertools import islice

                prefix = fingerprint_rows(islice(heap.scan(), applied))
                if prefix != require_int(cursor, "fingerprint"):
                    raise ReplicationError(
                        f"replica's first {applied} rows of {table.name!r} "
                        "diverge from this primary's fingerprint chain — "
                        "refusing to ship (rebuild the replica)"
                    )
            version, _ = table.served.stats()
            statements = (
                heap.journal.recent_statements()
                if heap.journal is not None
                else []
            )
            if statements:
                # Mid-append resync: the in-flight batch is journaled
                # (ledger included) but not yet published to the served
                # relation — the ledger's tail, not the served version,
                # names the heap's current state.
                version = max(version, statements[-1][1])
            if applied == total and require_int(cursor, "applied_version") >= version:
                return
            rows = list(heap.scan())[applied:]
            encoded = [heap.codec.encode(row) for row in rows]
            chunks = [
                encoded[i : i + MAX_SHIP_ROWS]
                for i in range(0, len(encoded), MAX_SHIP_ROWS)
            ] or [[]]
            base = applied
            for index, chunk in enumerate(chunks):
                final = index == len(chunks) - 1
                send_frame(
                    sock,
                    sync_frame(
                        self._node.epoch,
                        table.name,
                        base_count=base,
                        version=version,
                        row_count=total,
                        fingerprint=heap.fingerprint,
                        records=chunk,
                        statements=statements if final else [],
                        final=final,
                    ),
                )
                self._receive(sock)
                base += len(chunk)

    def _receive(self, sock: socket.socket) -> Dict[str, Any]:
        """One reply, with the epoch fence applied: a peer refusing us
        because a *higher* epoch exists means we were deposed — fence
        now.  A peer that merely fenced itself against our (current)
        epoch is just a dead link, not a demotion."""
        try:
            return raise_for_error(recv_frame(sock))
        except StaleEpoch as error:
            if error.observed_epoch > self._node.epoch:
                self._node.fence(error.observed_epoch)
            raise

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def ship(self, batch: ShipBatch) -> int:
        """Ship one committed batch to every live link.

        Returns the number of replicas that applied it.  Dead links
        are skipped (heartbeat redials them; the reconnect sync carries
        this batch).  ``StaleEpoch`` propagates after self-fencing —
        the caller's client must see the typed refusal.
        """
        delivered = 0
        for link in self.links:
            with link.lock:
                if not link.alive or link.sock is None:
                    continue
                try:
                    send_frame(link.sock, ship_frame(self._node.epoch, batch))
                    self._receive(link.sock)
                    link.ships += 1
                    delivered += 1
                except StaleEpoch:
                    link.close_locked()
                    raise
                except (
                    ReplicationError,
                    ConnectionClosed,
                    FrameError,
                    OSError,
                ):
                    # A torn frame or a cursor mismatch: one immediate
                    # redial catches the replica up — the reconnect
                    # sync includes this batch, already in our heap.
                    # (Duplicate delivery on the replica is idempotent,
                    # so overlap with a half-applied ship is safe.)
                    link.drops += 1
                    try:
                        self._connect_locked(link)
                        link.syncs += 1
                        delivered += 1
                    except StaleEpoch:
                        raise
                    except (
                        ReplicationError,
                        ConnectionClosed,
                        FrameError,
                        OSError,
                    ):
                        link.close_locked()
        return delivered

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_s):
            if self._node.role != "primary":
                return
            for link in self.links:
                with link.lock:
                    if link.alive and link.sock is not None:
                        try:
                            send_frame(
                                link.sock, heartbeat_frame(self._node.epoch)
                            )
                            self._receive(link.sock)
                        except StaleEpoch:
                            # fence() already ran inside _receive; the
                            # loop exits on the role check above.
                            link.close_locked()
                        except (ConnectionClosed, FrameError, OSError):
                            link.drops += 1
                            link.close_locked()
                    else:
                        try:
                            self._connect_locked(link)
                            link.syncs += 1
                        except StaleEpoch:
                            link.close_locked()
                        except (
                            ReplicationError,
                            ConnectionClosed,
                            FrameError,
                            OSError,
                        ):
                            link.close_locked()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def peer_stats(self) -> List[Dict[str, Any]]:
        stats: List[Dict[str, Any]] = []
        for link in self.links:
            with link.lock:
                stats.append(
                    {
                        "endpoint": link.endpoint,
                        "alive": link.alive,
                        "ships": link.ships,
                        "syncs": link.syncs,
                        "drops": link.drops,
                    }
                )
        return stats
