"""Journal-shipping replication for the serving layer.

The write-ahead journal (:mod:`repro.storage.journal`) already gives
one node crash-safe, fingerprint-verified durability; this package
turns that same record stream into a replication log:

* :mod:`repro.replicate.wire` — the ``rep.*`` frame schema shared by
  shipper, applier, and tests.
* :mod:`repro.replicate.applier` — replica-side state
  (:class:`~repro.replicate.applier.ReplicatedTable`) and the apply
  logic for shipped batches and catch-up syncs.
* :mod:`repro.replicate.shipper` — primary-side peer links, the
  synchronous ship on every committed batch, heartbeats, redials.
* :mod:`repro.replicate.node` — the replication-aware
  :class:`~repro.replicate.node.ReplicationNode` (a
  :class:`~repro.serve.server.QueryServer` subclass) with the epoch
  fence, promotion, and lease-based failover.
* :mod:`repro.replicate.client` — failover-aware client with bounded
  retry, endpoint rotation, exactly-once statement ids, and
  read-your-writes tokens.
* :mod:`repro.replicate.chaos` — the deterministic kill-the-primary
  acceptance harness.

``python -m repro.replicate`` runs a node from the command line (see
:mod:`repro.replicate.__main__`).
"""

from repro.replicate.applier import ReplicaApplier, ReplicatedTable
from repro.replicate.client import ReplicatedClient
from repro.replicate.node import FailoverMonitor, ReplicationNode, TableSpec
from repro.replicate.shipper import JournalShipper, PeerLink
from repro.replicate.wire import ShipBatch

__all__ = [
    "ReplicaApplier",
    "ReplicatedTable",
    "ReplicatedClient",
    "FailoverMonitor",
    "ReplicationNode",
    "TableSpec",
    "JournalShipper",
    "PeerLink",
    "ShipBatch",
]
