"""Run one replication node from the command line.

::

    python -m repro.replicate primary --data /var/lib/repro \\
        --port 7401 --peer 127.0.0.1:7402 --table jobs
    python -m repro.replicate replica --data /var/lib/repro-r1 \\
        --port 7402 --table jobs --lease-ms 500

Tables default to the paper's EMPLOYED relation schema
(``name:str:8, salary:int:4`` padded to the 128-byte tuples of the
ICDE '95 experiments); each ``--table NAME`` serves one heap file
``NAME.heap`` under ``--data``.

Once the node is listening it prints a single machine-parseable line::

    REPLICATE READY role=primary host=127.0.0.1 port=7401 epoch=3

which is how the chaos harness (and any supervisor) learns the bound
port when started with ``--port 0``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import List

from repro.relation.schema import EMPLOYED_SCHEMA
from repro.serve.config import ServerConfig
from repro.replicate.node import ReplicationNode, TableSpec


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replicate",
        description="Run one journal-shipping replication node.",
    )
    parser.add_argument(
        "role", choices=("primary", "replica"), help="initial role"
    )
    parser.add_argument(
        "--data", required=True, help="directory holding the heap files"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 asks the OS for a free port"
    )
    parser.add_argument(
        "--table",
        action="append",
        default=None,
        metavar="NAME",
        help="replicated table (repeatable; default: jobs)",
    )
    parser.add_argument(
        "--peer",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="replica endpoint to ship to (primary role; repeatable)",
    )
    parser.add_argument(
        "--lease-ms",
        type=float,
        default=None,
        help="replica: promote after this long without a heartbeat",
    )
    parser.add_argument("--heartbeat-ms", type=float, default=100.0)
    parser.add_argument(
        "--fsync",
        choices=("always", "commit", "never"),
        default=None,
        help="journal fsync policy (default: REPRO_JOURNAL_FSYNC or commit)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--secret",
        default=os.environ.get("REPRO_REPL_SECRET"),
        help="shared token gating rep.* ops (default: REPRO_REPL_SECRET "
        "env; unset leaves replication ops open)",
    )
    return parser.parse_args(argv)


async def _run(args: argparse.Namespace) -> int:
    os.makedirs(args.data, exist_ok=True)
    tables = [
        TableSpec(
            name=name,
            schema=EMPLOYED_SCHEMA,
            path=os.path.join(args.data, f"{name}.heap"),
        )
        for name in (args.table or ["jobs"])
    ]
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers, role=args.role
    )
    node = ReplicationNode(
        config,
        tables=tables,
        peers=list(args.peer or []),
        lease_ms=args.lease_ms,
        heartbeat_ms=args.heartbeat_ms,
        fsync_policy=args.fsync,
        repl_secret=args.secret,
    )
    await node.start()
    print(
        f"REPLICATE READY role={node.role} host={config.host} "
        f"port={node.port} epoch={node.epoch}",
        flush=True,
    )
    try:
        await node.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await node.stop()
    return 0


def main(argv: List[str]) -> int:
    args = _parse_args(argv)
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
