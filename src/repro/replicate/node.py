"""A replication-aware query server node.

:class:`ReplicationNode` extends the serving layer's
:class:`~repro.serve.server.QueryServer` with the journal-shipping
machinery: durable heap-backed tables, the ``rep.*`` ops, the epoch
fence, and (on the primary) synchronous shipping to replicas.

Roles and the epoch fence
-------------------------

Every node carries a monotonically increasing **epoch**, recovered
from its journal segment headers.  Promotion bumps it; the new epoch
is stamped into a fresh journal segment on every table *before* the
promoted node accepts a write, so the fencing decision is itself
durable.  Any node observing a higher epoch than its own — a deposed
primary hearing from the promoted replica, or receiving a shipped
frame stamped with the new epoch — **fences**: its role flips to
``"fenced"``, its scheduler answers every queued or future write with
a typed ``StaleEpoch``, and its shipper stands down.  A lower-epoch
peer is refused with the same typed error.  Two nodes can therefore
never both acknowledge writes for the same epoch: split-brain reduces
to the epoch comparison.

Write path (primary)
--------------------

Under the table lock: validate → journal every row → journal the
STATEMENT ledger record → COMMIT → ship synchronously to every live
replica → publish to the served relation → acknowledge.  The client's
acknowledgement therefore implies the batch is durable locally *and*
applied on every replica that was reachable at commit time — the
zero-acknowledged-loss property the chaos harness checks.

Read path (replica)
-------------------

Replicas serve queries from the same snapshot machinery as any
server; bounded staleness comes from read tokens (see
``QueryServer._check_read_token``).  Writes are refused with
``NotPrimary`` carrying the last-known primary endpoint as a redirect
hint.

Failover
--------

:class:`FailoverMonitor` watches the heartbeat gap on a replica and
promotes it after ``lease_ms`` of silence.  The chaos harness instead
promotes explicitly via the ``rep.promote`` op — deterministic tests
must not wait out wall-clock leases.
"""

from __future__ import annotations

import asyncio
import hmac
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.errors import (
    NotPrimary,
    ReplicationError,
    StaleEpoch,
    TemporalAggregateError,
)
from repro.relation.schema import Schema
from repro.serve.config import ServerConfig
from repro.serve.server import QueryServer, _error_frame
from repro.serve.session import Session
from repro.serve.snapshots import ServedRelation
from repro.replicate.applier import ReplicaApplier, ReplicatedTable
from repro.replicate.shipper import JournalShipper
from repro.replicate.wire import ShipBatch

__all__ = ["TableSpec", "ReplicationNode", "FailoverMonitor"]


@dataclass(frozen=True)
class TableSpec:
    """One replicated relation: name, schema, and its heap-file path."""

    name: str
    schema: Schema
    path: str


class ReplicationNode(QueryServer):
    """A query server whose tables are journaled and replicated."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        tables: Sequence[TableSpec] = (),
        peers: Sequence[str] = (),
        endpoint: Optional[str] = None,
        lease_ms: Optional[float] = None,
        heartbeat_ms: float = 100.0,
        fsync_policy: Optional[str] = None,
        repl_secret: Optional[str] = None,
    ) -> None:
        super().__init__(config)
        #: Shared token gating every ``rep.*`` op (None = open, for
        #: single-tenant test rigs).  Without it any query client could
        #: issue ``rep.promote`` and fence the legitimate primary.
        self.repl_secret = repl_secret
        #: This node's *serving* address as peers should dial it —
        #: advertised in hellos so replicas can hint redirected clients.
        self.endpoint = endpoint
        #: Serializes role/epoch *transitions* (promote, fence, adopt).
        #: Reads of ``role``/``_epoch``/``_fenced_by`` are deliberately
        #: plain (reference/int assignment is atomic under the GIL) —
        #: the append path inspects them while holding a table lock,
        #: and taking _role_lock there would invert the documented
        #: order (_role_lock before table.lock, never the reverse).
        self._role_lock = threading.RLock()
        self._fenced_by: Optional[int] = None  # ta: unguarded
        #: Last primary heartbeat, as a monotonic instant (plain float
        #: write — atomic under the GIL; the monitor only compares it).
        self._last_heartbeat = monotonic()  # ta: unguarded
        self._primary_endpoint: Optional[str] = None  # ta: unguarded
        self.tables: Dict[str, ReplicatedTable] = {}
        epoch = 0
        for spec in tables:
            table = ReplicatedTable(spec.name, spec.schema, spec.path)
            statements = table.open(fsync_policy)
            self.seed_dedup(statements)
            assert table.served is not None and table.heap is not None
            # Bypass register(): the served relation must wrap the
            # heap-backed rows, not a fresh copy.
            self._served[spec.name.lower()] = table.served
            self.tables[spec.name.lower()] = table
            if table.heap.journal is not None:
                epoch = max(epoch, table.heap.journal.epoch)
        self._epoch = epoch  # ta: unguarded
        self.applier = ReplicaApplier(self, self.tables)
        self.shipper: Optional[JournalShipper] = None  # ta: unguarded
        self._peers = list(peers)
        self._heartbeat_ms = heartbeat_ms
        self._lease_ms = lease_ms
        self._monitor: Optional[FailoverMonitor] = None  # ta: unguarded
        #: Single replication worker: serializes every rep.* op (ship,
        #: sync, promote) and keeps their blocking file/socket I/O off
        #: the event loop.
        self._repl_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-repl"
        )
        if self.role != "primary":
            self.scheduler.fence_writes(None)

    # ------------------------------------------------------------------
    # Epoch / role state machine
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def observe_epoch(self, epoch: int) -> None:
        """Apply the epoch fence to one observed peer epoch.

        Lower than ours → the peer is deposed; refuse it typed.
        Higher than ours → *we* are stale; a primary fences itself, a
        replica adopts the new epoch (its new primary speaks it).  A
        fenced node participates in nothing either way.
        """
        with self._role_lock:
            if self.role == "fenced":
                if epoch > (self._fenced_by or 0):
                    self._fenced_by = epoch
                raise StaleEpoch(
                    f"this node (epoch {self._epoch}) is fenced by epoch "
                    f"{self._fenced_by}",
                    epoch=self._epoch,
                    observed_epoch=self._fenced_by or epoch,
                )
            if epoch < self._epoch:
                raise StaleEpoch(
                    f"peer speaks epoch {epoch}, this node is at "
                    f"{self._epoch}; the peer was deposed",
                    epoch=epoch,
                    observed_epoch=self._epoch,
                )
            if epoch > self._epoch:
                if self.role == "primary":
                    own = self._epoch
                    self._fence_locked(epoch)
                    raise StaleEpoch(
                        f"this node (epoch {own}) observed epoch "
                        f"{epoch}; it has been deposed and is now fenced",
                        epoch=own,
                        observed_epoch=epoch,
                    )
                self._adopt_epoch_locked(epoch)

    def _adopt_epoch_locked(self, epoch: int) -> None:
        """Advance to ``epoch``, sealing a fresh journal segment per
        table so the adoption is durable."""
        for table in self.tables.values():
            with table.lock:
                if table.heap is not None and table.heap.journal is not None:
                    table.heap.journal.bump_epoch(epoch)
        self._epoch = epoch

    def promote(self) -> int:
        """Promote this node to primary at a fresh, higher epoch.

        Durably bumps every table's journal first, then flips the
        role, lifts the write fence, and starts shipping to peers.
        Idempotent on an already-primary node (returns its epoch).
        """
        with self._role_lock:
            if self.role == "primary":
                return self._epoch
            if self.role == "fenced":
                raise StaleEpoch(
                    "a fenced node cannot be promoted; restart it as a "
                    "fresh replica",
                    epoch=self._epoch,
                    observed_epoch=self._fenced_by or self._epoch,
                )
            self._adopt_epoch_locked(self._epoch + 1)
            # Transitions hold _role_lock; reads stay plain (GIL-atomic
            # str swap) so the append path's re-check under table.lock
            # cannot invert the _role_lock -> table.lock order.
            self.role = "primary"  # ta: unguarded
            self.scheduler.fence_writes(None)
            monitor, self._monitor = self._monitor, None
        if monitor is not None:
            monitor.stop(join=False)
        self._start_shipper()
        return self.epoch

    def fence(self, observed_epoch: int) -> None:
        """Demote this node permanently: a higher epoch exists."""
        with self._role_lock:
            self._fence_locked(observed_epoch)

    def _fence_locked(self, observed_epoch: int) -> None:
        if self.role == "fenced":
            self._fenced_by = max(self._fenced_by or 0, observed_epoch)
            return
        self.role = "fenced"
        self._fenced_by = observed_epoch
        epoch = self._epoch

        def refusal() -> Dict[str, Any]:
            return _error_frame(
                StaleEpoch(
                    f"this node (epoch {epoch}) was deposed by epoch "
                    f"{observed_epoch}; writes are fenced",
                    epoch=epoch,
                    observed_epoch=observed_epoch,
                )
            )

        self.scheduler.fence_writes(refusal)
        shipper = self.shipper
        if shipper is not None:
            # Signal only: fencing is discovered *inside* shipper code
            # paths that hold a link lock (and often on the heartbeat
            # thread itself) — closing links here would self-deadlock.
            # node.stop() closes them for real.
            shipper.signal_stop()

    def note_heartbeat(self) -> None:
        self._last_heartbeat = monotonic()

    def note_primary(self, endpoint: str) -> None:
        self._primary_endpoint = endpoint

    def heartbeat_age(self) -> float:
        """Seconds since the last primary heartbeat (or hello)."""
        return monotonic() - self._last_heartbeat

    def replicated_tables(self) -> List[ReplicatedTable]:
        return list(self.tables.values())

    def reload_table(self, table: ReplicatedTable) -> None:
        """Reopen one table through crash recovery, discarding journal
        appends past the last COMMIT, and re-point the served registry
        at the rebuilt mirror.  Caller holds ``table.lock``."""
        statements = table.reset_to_committed()
        self.seed_dedup(statements)
        assert table.served is not None
        self._served[table.name.lower()] = table.served

    # ------------------------------------------------------------------
    # QueryServer extension points
    # ------------------------------------------------------------------

    def hello_extra(self) -> Dict[str, Any]:
        extra: Dict[str, Any] = {
            "epoch": self.epoch,
            "streams": {
                table.name: table.stream_uid for table in self.tables.values()
            },
        }
        if self.endpoint:
            extra["endpoint"] = self.endpoint
        return extra

    def _stream_uid(self, served: ServedRelation) -> str:
        table = self.tables.get(served.name.lower())
        if table is not None:
            return table.stream_uid
        return super()._stream_uid(served)

    def _primary_hint(self) -> Optional[str]:
        return self._primary_endpoint

    def _refuse_write(self) -> Optional[TemporalAggregateError]:
        # Plain reads only: the append path re-checks this while
        # holding a table lock (see __init__ on the lock order).
        role = self.role
        if role == "primary":
            return None
        if role == "fenced":
            epoch, fenced_by = self._epoch, self._fenced_by
            return StaleEpoch(
                f"this node (epoch {epoch}) was deposed by epoch "
                f"{fenced_by}; writes are fenced",
                epoch=epoch,
                observed_epoch=fenced_by or epoch,
            )
        return NotPrimary(
            "node is a replica; writes go to the primary",
            role=role,
            primary_hint=self._primary_hint(),
        )

    def _apply_append(
        self,
        served: ServedRelation,
        batch: Any,
        sid: Optional[str],
    ) -> tuple:
        """The primary's durable append: journal, ledger, commit, ship,
        publish — in that order — then acknowledge."""
        table = self.tables.get(served.name.lower())
        if table is None:
            # A table registered outside replication (tests): plain.
            return served.append_batch(batch)
        heap = table.heap
        assert heap is not None
        with table.lock:
            refusal = self._refuse_write()
            if refusal is not None:
                # Demoted between admission and execution.
                raise refusal
            rows = served.validate_batch(batch)
            if not rows:
                raise ValueError("append batch must contain at least one row")
            version = served.stats()[0] + 1
            base_count = len(heap)
            for row in rows:
                heap.append(row)
            row_count = len(heap)
            # Every batch gets a ledger record — client-supplied sids
            # make retries exactly-once; the anonymous fallback still
            # pins the (version, row_count) identity for restart
            # bootstrap and replica version adoption.
            ledger_sid = sid or f"anon:{table.name}:{version}"
            if heap.journal is not None:
                heap.journal.log_statement(ledger_sid, version, row_count)
            heap.commit()
            shipper = self.shipper
            if shipper is not None:
                shipper.ship(
                    ShipBatch(
                        table=table.name,
                        version=version,
                        row_count=row_count,
                        base_count=base_count,
                        fingerprint=heap.fingerprint,
                        sid=ledger_sid,
                        records=[heap.codec.encode(row) for row in rows],
                    )
                )
            applied = served.append_replicated(
                [(list(row.values), row.start, row.end) for row in rows],
                version,
            )
            if heap.journal is not None and heap.journal.should_rotate:
                heap.flush()
            return applied

    # ------------------------------------------------------------------
    # rep.* ops
    # ------------------------------------------------------------------

    async def _handle_extra_op(
        self, op: str, frame: Dict[str, Any], session: Session
    ) -> bool:
        if not op.startswith("rep."):
            return False
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            self._repl_executor, self._rep_dispatch, op, frame
        )
        await session.send(reply)
        return True

    def _rep_dispatch(self, op: str, frame: Dict[str, Any]) -> Dict[str, Any]:
        try:
            secret = self.repl_secret
            if secret is not None:
                supplied = frame.get("auth")
                if not isinstance(supplied, str) or not hmac.compare_digest(
                    supplied, secret
                ):
                    raise ReplicationError(
                        f"replication op {op!r} refused: missing or invalid "
                        "auth token"
                    )
            if op == "rep.hello":
                return self.applier.apply_hello(frame)
            if op == "rep.ship":
                return self.applier.apply_ship(frame)
            if op == "rep.sync":
                return self.applier.apply_sync(frame)
            if op == "rep.heartbeat":
                return self.applier.apply_heartbeat(frame)
            if op == "rep.promote":
                epoch = self.promote()
                return {"ok": True, "op": "rep.promote", "epoch": epoch}
            if op == "rep.status":
                return {"ok": True, "op": "rep.status", **self.status()}
            raise ReplicationError(f"unknown replication op {op!r}")
        except TemporalAggregateError as error:
            return _error_frame(error)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._role_lock:
            role, epoch, fenced_by = self.role, self._epoch, self._fenced_by
        return {
            "role": role,
            "epoch": epoch,
            "fenced_by": fenced_by,
            "tables": {
                table.name: table.cursor() for table in self.tables.values()
            },
        }

    def _replication_stats(self) -> Optional[Dict[str, Any]]:
        stats = self.status()
        stats["applier"] = {
            "batches_applied": self.applier.batches_applied,
            "duplicates_ignored": self.applier.duplicates_ignored,
            "rows_applied": self.applier.rows_applied,
            "rollbacks": self.applier.rollbacks,
        }
        shipper = self.shipper
        if shipper is not None:
            stats["peers"] = shipper.peer_stats()
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _start_shipper(self) -> None:
        if not self._peers:
            return
        shipper = JournalShipper(
            self, self._peers, heartbeat_ms=self._heartbeat_ms
        )
        self.shipper = shipper
        shipper.start()

    def attach_peer(self, endpoint: str) -> None:
        """Add a replica to a primary that started without one.

        The connect-time sync inside the shipper start is synchronous:
        when this returns, the new replica has the full history.  Only
        supported while no shipper is running (late replica bring-up,
        benches); reconfiguring a live link set is out of scope.
        """
        if self.shipper is not None:
            raise RuntimeError("shipper already running; restart to repeer")
        self._peers = [*self._peers, endpoint]
        self._start_shipper()

    async def start(self) -> None:
        await super().start()
        if self.endpoint is None and self.port is not None:
            self.endpoint = f"{self.config.host}:{self.port}"
        if self.role == "primary":
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._repl_executor, self._start_shipper)
        elif self._lease_ms is not None:
            self._monitor = FailoverMonitor(self, lease_ms=self._lease_ms)
            self._monitor.start()

    async def stop(self) -> None:
        monitor = self._monitor
        if monitor is not None:
            monitor.stop()
        shipper = self.shipper
        if shipper is not None:
            shipper.stop()
        self._repl_executor.shutdown(wait=True)
        await super().stop()
        for table in self.tables.values():
            with table.lock:
                table.close()


class FailoverMonitor:
    """Promotes a replica once the primary's lease lapses.

    Wakes every quarter-lease, compares the heartbeat age against the
    lease, and calls :meth:`ReplicationNode.promote` when it lapses.
    Event-paced (no wall-clock reads; :func:`time.monotonic` only via
    the node's heartbeat age).
    """

    def __init__(self, node: ReplicationNode, *, lease_ms: float) -> None:
        self._node = node
        self._lease_s = max(lease_ms, 1.0) / 1000.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.promotions = 0  # written by the monitor thread only

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-failover", daemon=True
        )
        self._thread.start()

    def stop(self, join: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if join and thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def _run(self) -> None:
        interval = max(self._lease_s / 4.0, 0.005)
        while not self._stop.wait(interval):
            if self._node.role != "replica":
                return
            if self._node.heartbeat_age() >= self._lease_s:
                try:
                    self.promotions += 1
                    self._node.promote()
                except StaleEpoch:
                    pass
                return
