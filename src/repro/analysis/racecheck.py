"""Eraser-style dynamic lockset race checker (``REPRO_CHECK_RACES=1``).

The static pass (:mod:`repro.analysis.concurrency`) knows which
attributes *should* be guarded by which locks; this module checks that
they actually *are* at runtime, under a real multi-threaded workload
(the swarm harness, the cache/metrics contention tests).

The algorithm is the classic lockset refinement from Savage et al.'s
Eraser, adapted to attribute granularity:

* every instrumented lock is wrapped in a :class:`TrackedLock` that
  maintains a per-thread set of currently held locks;
* every instrumented attribute access records ``(thread, held locks)``
  against its per-instance location state;
* a location starts **exclusive** to its first thread (construction
  and single-threaded warm-up never alarm).  The first access from a
  second thread moves it to **shared**, seeding the candidate lockset
  with the locks held at that access; every later access *intersects*
  the candidate set with the locks then held;
* a location that is shared, has seen a write while shared, and whose
  candidate lockset is empty has no lock that consistently protected
  it — a candidate race, reported with the stacks of the racing access
  *and* the previous access to the same location.

Instrumentation is installed onto classes (data descriptors for the
lock and guarded attributes, container-subclass proxies for dict/list
values), driven by the static model: :func:`install_default`
instruments the serving stack's shared classes.  With the checker
disabled (the default) the descriptors stay inert — a dict lookup and
a flag test per access — so leftover instrumentation cannot change
behavior.

Known limits: module-level globals (the default-cache slot) and
objects reached only through aliases are not instrumented, and
locations the workload never touches from two threads stay exclusive
— the checker is a workload amplifier, not a proof.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type

__all__ = [
    "ENV_FLAG",
    "RaceError",
    "RaceReport",
    "TrackedLock",
    "races_enabled",
    "enable",
    "disable",
    "reset_to_env",
    "instrument_class",
    "install_default",
    "race_reports",
    "clear_reports",
    "assert_no_races",
]

#: Set to ``1`` to arm the checker for the whole process.
ENV_FLAG = "REPRO_CHECK_RACES"


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "").strip() in {"1", "true", "yes", "on"}


_enabled = _env_enabled()


def races_enabled() -> bool:
    """Is the lockset tracker currently recording?"""
    return _enabled


def enable() -> None:
    """Force-arm the checker (tests use this; wins over the env)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset_to_env() -> None:
    """Return to whatever ``REPRO_CHECK_RACES`` says."""
    global _enabled
    _enabled = _env_enabled()


class RaceError(AssertionError):
    """Raised by :func:`assert_no_races` when candidate races exist."""


@dataclass(slots=True)
class RaceReport:
    """One candidate race: an unprotected shared-modified location."""

    location: str  #: ``ClassName.attr``
    kind: str  #: the racing access: ``"read"`` | ``"write"``
    thread: str  #: thread name of the racing access
    stack: str  #: stack of the racing access
    other_kind: str  #: the previous access to the same location
    other_thread: str
    other_stack: str

    def render(self) -> str:
        return (
            f"candidate race on {self.location}: {self.kind} by "
            f"{self.thread!r} with empty lockset\n"
            f"--- racing access ({self.kind}, {self.thread!r}) ---\n"
            f"{self.stack}"
            f"--- previous access ({self.other_kind}, "
            f"{self.other_thread!r}) ---\n"
            f"{self.other_stack}"
        )


# Checker-global state.  _state_lock guards the report list and every
# _LocationState transition; it is ours, never the instrumented code's,
# so it cannot deadlock against application locks.
_state_lock = threading.Lock()
_reports: List[RaceReport] = []
_held = threading.local()  # .locks: Dict[int, List[str, int]]


def _held_map() -> Dict[int, List[Any]]:
    locks = getattr(_held, "locks", None)
    if locks is None:
        locks = {}
        _held.locks = locks
    return locks


def _held_ids() -> FrozenSet[int]:
    return frozenset(_held_map())


def _held_names() -> Tuple[str, ...]:
    return tuple(sorted(entry[0] for entry in _held_map().values()))


class TrackedLock:
    """A lock wrapper that maintains the per-thread held set.

    Wraps ``threading.Lock``/``RLock`` transparently (context manager,
    ``acquire``/``release``/``locked``); the identity used in locksets
    is the wrapper's, so one wrapper per underlying lock.
    """

    __slots__ = ("raw", "name")

    def __init__(self, raw: Any, name: str) -> None:
        self.raw = raw
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self.raw.acquire(blocking, timeout))
        if acquired:
            held = _held_map()
            entry = held.get(id(self))
            if entry is None:
                held[id(self)] = [self.name, 1]
            else:
                entry[1] += 1  # re-entrant RLock
        return acquired

    def release(self) -> None:
        self.raw.release()
        held = _held_map()
        entry = held.get(id(self))
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                del held[id(self)]

    def locked(self) -> bool:
        return bool(self.raw.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


@dataclass(slots=True)
class _LocationState:
    """Eraser state for one (instance, attribute) location."""

    owner: Optional[int] = None  #: first thread's ident (exclusive phase)
    shared: bool = False
    write_seen: bool = False  #: a write has happened while shared
    lockset: FrozenSet[int] = frozenset()
    reported: bool = False
    last_kind: str = ""
    last_thread: str = ""
    last_stack: str = ""


def _capture_stack() -> str:
    # Drop the two checker frames (capture + _on_access) so reports
    # start at the instrumented access site.
    return "".join(traceback.format_stack(limit=14)[:-2])


def _on_access(owner: Any, location: str, is_write: bool) -> None:
    """Record one access to an instrumented location."""
    if not _enabled:
        return
    thread = threading.current_thread()
    kind = "write" if is_write else "read"
    with _state_lock:
        try:
            states = owner.__dict__.setdefault("__rc_states__", {})
        except AttributeError:  # slotted owner: keyed globally
            states = _slotted_states.setdefault(id(owner), {})
        state = states.get(location)
        if state is None:
            state = states[location] = _LocationState()
        if state.owner is None:
            state.owner = thread.ident
        if not state.shared:
            if thread.ident == state.owner:
                return  # exclusive phase: never alarms
            state.shared = True
            state.lockset = _held_ids()
        else:
            state.lockset = state.lockset & _held_ids()
        if is_write:
            state.write_seen = True
        stack = _capture_stack()
        if (
            state.write_seen
            and not state.lockset
            and not state.reported
            and state.last_stack
        ):
            state.reported = True
            _reports.append(
                RaceReport(
                    location=location,
                    kind=kind,
                    thread=thread.name,
                    stack=stack,
                    other_kind=state.last_kind,
                    other_thread=state.last_thread,
                    other_stack=state.last_stack,
                )
            )
        state.last_kind = kind
        state.last_thread = thread.name
        state.last_stack = stack


#: Location states for slotted instances (no ``__dict__`` to hide in).
#: Keyed by ``id`` — entries can outlive their object, which only costs
#: memory within a checker-armed test run.
_slotted_states: Dict[int, Dict[str, _LocationState]] = {}


def race_reports() -> List[RaceReport]:
    """A snapshot of every candidate race recorded so far."""
    with _state_lock:
        return list(_reports)


def clear_reports() -> None:
    """Drop recorded races and per-instance access history."""
    with _state_lock:
        _reports.clear()
        _slotted_states.clear()


def assert_no_races() -> None:
    """Raise :class:`RaceError` rendering every recorded race."""
    reports = race_reports()
    if reports:
        rendered = "\n\n".join(report.render() for report in reports)
        raise RaceError(
            f"{len(reports)} candidate race(s) detected:\n\n{rendered}"
        )


# ---------------------------------------------------------------------------
# Class instrumentation
# ---------------------------------------------------------------------------

#: Container methods that only observe.
_PROXY_READS = (
    "__contains__", "__getitem__", "__iter__", "__len__", "copy",
    "count", "get", "index", "items", "keys", "values",
)

#: Container methods that mutate.
_PROXY_WRITES = (
    "__delitem__", "__setitem__", "add", "append", "appendleft",
    "clear", "discard", "extend", "insert", "move_to_end", "pop",
    "popitem", "popleft", "remove", "reverse", "rotate", "setdefault",
    "sort", "update",
)

_proxy_cache: Dict[Type[Any], Type[Any]] = {}


def _make_proxy_method(name: str, is_write: bool) -> Any:
    def method(self: Any, *args: Any, **kwargs: Any) -> Any:
        site = self.__rc_site__
        if site is not None:
            _on_access(site[0], site[1], is_write)
        return getattr(super(type(self), self), name)(*args, **kwargs)

    method.__name__ = name
    return method


def _proxy_class(base: Type[Any]) -> Type[Any]:
    """A ``base`` subclass whose read/write methods record accesses."""
    proxy = _proxy_cache.get(base)
    if proxy is not None:
        return proxy
    namespace: Dict[str, Any] = {"__rc_site__": None}
    for name in _PROXY_READS:
        if hasattr(base, name):
            namespace[name] = _make_proxy_method(name, is_write=False)
    for name in _PROXY_WRITES:
        if hasattr(base, name):
            namespace[name] = _make_proxy_method(name, is_write=True)
    proxy = type(f"Tracked{base.__name__}", (base,), namespace)
    _proxy_cache[base] = proxy
    return proxy


def _wrap_value(owner: Any, location: str, value: Any) -> Any:
    """Wrap mutable containers so accesses *through the object* (not
    just attribute rebinding) hit the tracker."""
    from collections import deque

    for base in (dict, list, set, deque):
        if type(value) is base or (
            isinstance(value, base)
            and type(value).__module__ == "collections"
        ):
            proxy = _proxy_class(type(value))
            wrapped = proxy(value)
            wrapped.__rc_site__ = (owner, location)
            return wrapped
    return value


class _Storage:
    """Where a descriptor keeps the real value.

    Dict-backed classes store under a private key in the instance
    ``__dict__`` (falling back to the plain name for instances built
    before instrumentation); slotted classes delegate to the original
    slot descriptor the instrumentation displaced.
    """

    __slots__ = ("name", "slot_key", "member")

    def __init__(self, cls: Type[Any], name: str) -> None:
        self.name = name
        self.slot_key = f"__rc_{name}"
        original = cls.__dict__.get(name)
        self.member = original if hasattr(original, "__set__") else None

    def get(self, obj: Any) -> Any:
        if self.member is not None:
            return self.member.__get__(obj, type(obj))
        try:
            return obj.__dict__[self.slot_key]
        except KeyError:
            try:
                value = obj.__dict__[self.name]  # pre-instrumentation
            except KeyError:
                raise AttributeError(self.name) from None
            obj.__dict__[self.slot_key] = value
            return value

    def set(self, obj: Any, value: Any) -> None:
        if self.member is not None:
            self.member.__set__(obj, value)
        else:
            obj.__dict__[self.slot_key] = value


class _LockDescriptor:
    """Wraps lock attributes in :class:`TrackedLock` on assignment."""

    def __init__(self, cls: Type[Any], name: str) -> None:
        self.name = f"{cls.__name__}.{name}"
        self.storage = _Storage(cls, name)

    def __get__(self, obj: Any, objtype: Optional[Type[Any]] = None) -> Any:
        if obj is None:
            return self
        value = self.storage.get(obj)
        if not isinstance(value, TrackedLock):
            # Pre-instrumentation instance: wrap-on-first-get must be
            # single-winner, or two threads would hold distinct
            # wrappers around one raw lock and split the lockset.
            with _state_lock:
                value = self.storage.get(obj)
                if not isinstance(value, TrackedLock):
                    value = TrackedLock(value, self.name)
                    self.storage.set(obj, value)
        return value

    def __set__(self, obj: Any, value: Any) -> None:
        if not isinstance(value, TrackedLock):
            value = TrackedLock(value, self.name)
        self.storage.set(obj, value)


class _GuardedDescriptor:
    """Records reads/writes of a guarded attribute."""

    def __init__(self, cls: Type[Any], name: str) -> None:
        self.location = f"{cls.__name__}.{name}"
        self.storage = _Storage(cls, name)

    def __get__(self, obj: Any, objtype: Optional[Type[Any]] = None) -> Any:
        if obj is None:
            return self
        value = self.storage.get(obj)
        _on_access(obj, self.location, is_write=False)
        return value

    def __set__(self, obj: Any, value: Any) -> None:
        value = _wrap_value(obj, self.location, value)
        self.storage.set(obj, value)
        _on_access(obj, self.location, is_write=True)


def instrument_class(
    cls: Type[Any],
    *,
    locks: Iterable[str],
    guarded: Iterable[str],
) -> bool:
    """Install tracking descriptors for ``locks`` and ``guarded`` attrs.

    Idempotent (the second call is a no-op) and irreversible for the
    process — with the checker disabled the descriptors are inert, so
    leftover instrumentation does not change behavior.
    """
    if cls.__dict__.get("__rc_instrumented__"):
        return False
    for name in locks:
        setattr(cls, name, _LockDescriptor(cls, name))
    for name in guarded:
        setattr(cls, name, _GuardedDescriptor(cls, name))
    cls.__rc_instrumented__ = True
    return True


def instrument_from_source(
    cls: Type[Any], source_path: Optional[str] = None
) -> bool:
    """Instrument ``cls`` from its module's static concurrency model.

    The static pass decides what gets tracked: the class's lock
    attributes and every guarded attribute (declared or inferred, minus
    ``# ta: unguarded`` opt-outs).
    """
    import sys
    from pathlib import Path

    from repro.analysis.concurrency import build_class_models
    from repro.analysis.lint import SourceFile

    if source_path is None:
        module = sys.modules.get(cls.__module__)
        source_path = getattr(module, "__file__", None)
        if source_path is None:
            return False
    source = SourceFile.parse(Path(source_path))
    model = build_class_models(source).get(cls.__name__)
    if model is None or not model.locks:
        return False
    return instrument_class(
        cls, locks=model.locks, guarded=model.guarded
    )


def install_default() -> List[str]:
    """Instrument the serving stack's shared classes from their models.

    Returns the class names newly instrumented this call (empty on
    repeat calls — instrumentation sticks for the process lifetime).
    """
    from repro.cache.store import ShardResultCache
    from repro.metrics.counters import ThreadLocalCounters
    from repro.serve.admission import AdmissionController
    from repro.serve.snapshots import ServedRelation, SnapshotView

    installed: List[str] = []
    for cls in (
        ShardResultCache,
        AdmissionController,
        ServedRelation,
        SnapshotView,
        ThreadLocalCounters,
    ):
        if instrument_from_source(cls):
            installed.append(cls.__name__)
    return installed
