"""The repo-specific lint rules (``TA001``...``TA010``; the
concurrency rules ``TA011``...``TA015`` live in
:mod:`repro.analysis.concurrency` and join the registry here).

Each rule is small, syntactic, and tied to a property the engine
actually relies on; DESIGN.md §8 documents the rationale behind every
code.  To add a rule: subclass :class:`~repro.analysis.lint.Rule`,
give it the next free ``TAxxx`` code, implement ``applies_to`` (path
scoping) and ``check`` (AST visit), add it to :func:`default_rules`,
drop a deliberate violation into ``tests/analysis/fixtures/``, and
describe it in DESIGN.md.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint import ProjectIndex, Rule, SourceFile, Violation, _index_class

__all__ = [
    "EvaluatorProtocolRule",
    "SlotsOnNodeClassesRule",
    "SwallowedExceptionRule",
    "WallClockRule",
    "MutableDefaultRule",
    "BoundaryValidationRule",
    "SetIterationRule",
    "AnnotationGateRule",
    "JournalBypassRule",
    "HotLoopRule",
    "default_rules",
]

#: Classes whose ``evaluate`` is abstract: inheriting only *their*
#: ``evaluate`` does not make an evaluator concrete.
_ABSTRACT_EVALUATOR_ROOTS = frozenset({"Evaluator"})

#: Modules whose merge/stitch paths must stay order-deterministic.
_ORDER_SENSITIVE_BASENAMES = frozenset({"partition.py", "parallel.py"})

#: Modules that are engine boundaries: every public function must
#: route (possibly via another public function here) through
#: ``repro.exec.validation``.  ``evaluator.py`` is the shard-result
#: cache's entry point (``repro.cache.evaluator``).
_BOUNDARY_BASENAMES = frozenset({"engine.py", "evaluator.py"})


class EvaluatorProtocolRule(Rule):
    """TA001 — registered evaluators and relations honor their protocol.

    A class that transitively subclasses ``Evaluator`` *and* declares a
    registry ``name`` is a registered strategy: it must define or
    inherit a concrete ``evaluate`` (the abstract base's
    ``NotImplementedError`` stub does not count).  Likewise a class
    offering ``scan_triples`` is a relation the planner can be pointed
    at, so it must also provide ``statistics()`` — the planner's only
    input.
    """

    code = "TA001"
    name = "evaluator-protocol"
    description = (
        "registered Evaluator subclasses must define/inherit evaluate(); "
        "scan_triples providers must define statistics()"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return bool(source.scope)

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _index_class(node, source.display_path)
            if (
                "name" in info.class_attrs
                and index.inherits_from(info, "Evaluator")
                and not index.defines_method(
                    info, "evaluate", skip_roots=_ABSTRACT_EVALUATOR_ROOTS
                )
            ):
                yield self.violation(
                    source,
                    node,
                    f"registered evaluator {node.name!r} neither defines nor "
                    "inherits a concrete evaluate() (the abstract base "
                    "stub does not count)",
                )
            if "scan_triples" in info.methods and not index.defines_method(
                info, "statistics"
            ):
                yield self.violation(
                    source,
                    node,
                    f"relation class {node.name!r} defines scan_triples() but "
                    "not statistics(); the planner cannot choose a strategy "
                    "for it",
                )


def _dataclass_slots(node: ast.ClassDef) -> bool:
    """``@dataclass(slots=True)`` counts as declaring ``__slots__``."""
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, (ast.Name, ast.Attribute))
            and (
                decorator.func.id
                if isinstance(decorator.func, ast.Name)
                else decorator.func.attr
            )
            == "dataclass"
        ):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


class SlotsOnNodeClassesRule(Rule):
    """TA002 — hot-path node classes declare ``__slots__``.

    Tree nodes and list cells are allocated once per constant interval;
    a forgotten ``__slots__`` silently adds a ``__dict__`` per node —
    and Python gives subclasses of slotted classes a ``__dict__`` again
    unless *they* re-declare slots, so every class in the chain must.
    """

    code = "TA002"
    name = "slots-on-node-classes"
    description = "core/ classes named *Node/*Cell (or subclassing one) need __slots__"

    @staticmethod
    def _is_node_name(name: str) -> bool:
        bare = name.lstrip("_")
        return bare.endswith("Node") or bare.endswith("Cell")

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_scope("core")

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _index_class(node, source.display_path)
            hot = self._is_node_name(node.name) or any(
                self._is_node_name(ancestor.name)
                for ancestor in index.ancestors(info)
            )
            if hot and not info.has_slots and not _dataclass_slots(node):
                yield self.violation(
                    source,
                    node,
                    f"hot-path node class {node.name!r} does not declare "
                    "__slots__ (each instance grows a __dict__; subclasses "
                    "of slotted classes must re-declare)",
                )


def _handler_catches(handler: ast.ExceptHandler, names: FrozenSet[str]) -> bool:
    kind = handler.type
    candidates: List[ast.expr] = []
    if isinstance(kind, ast.Tuple):
        candidates = list(kind.elts)
    elif kind is not None:
        candidates = [kind]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in names:
            return True
    return False


def _body_only_passes(body: List[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ) and statement.value.value is Ellipsis:
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    """TA003 — no bare ``except:``; no ``except Exception: pass`` in
    ``core``/``exec``.

    A wrong partial aggregate does not crash — it just returns wrong
    rows.  The one thing the engine must never do is eat the exception
    that would have revealed it.
    """

    code = "TA003"
    name = "swallowed-exception"
    description = (
        "bare except anywhere; except Exception/BaseException with a "
        "pass-only body in core/ and exec/"
    )

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        broad = frozenset({"Exception", "BaseException"})
        in_engine_paths = source.in_scope("core", "exec")
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    source,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                    "hides every failure; name the exceptions",
                )
            elif (
                in_engine_paths
                and _handler_catches(node, broad)
                and _body_only_passes(node.body)
            ):
                yield self.violation(
                    source,
                    node,
                    "except Exception with a pass-only body swallows the "
                    "error that would reveal a corrupted aggregate; narrow "
                    "the type or handle it",
                )


class WallClockRule(Rule):
    """TA004 — deadline-sensitive code uses the monotonic clock only.

    ``time.time()`` jumps under NTP slew; a deadline computed from it
    can fire early, late, or never.  ``core``/``exec`` must use
    ``time.monotonic()`` (or ``perf_counter`` for measurement).
    """

    code = "TA004"
    name = "wall-clock-in-deadline-code"
    description = "no time.time() in core/, exec/, or replicate/ (monotonic only)"

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_scope("core", "exec", "replicate")

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                yield self.violation(
                    source,
                    node,
                    "time.time() is not monotonic; deadlines and backoff in "
                    "this layer must use time.monotonic()",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.violation(
                            source,
                            node,
                            "importing time.time into deadline-sensitive "
                            "code; use time.monotonic()",
                        )


class MutableDefaultRule(Rule):
    """TA005 — no mutable default arguments, anywhere.

    A ``def f(acc=[])`` default is allocated once at definition time
    and shared across calls; in an engine that reuses evaluators this
    turns into cross-query state leakage.
    """

    code = "TA005"
    name = "mutable-default-argument"
    description = "no list/dict/set (display or constructor) default arguments"

    _CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in self._CONSTRUCTORS
        )

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        source,
                        default,
                        f"mutable default argument in {node.name}(); the "
                        "object is shared across every call — default to "
                        "None and allocate inside",
                    )


class BoundaryValidationRule(Rule):
    """TA006 — engine-boundary public functions route through
    ``exec.validation``.

    The evaluators' hot paths assume validated input; the contract is
    that *every* public entry point in an engine-boundary module either
    calls a ``repro.exec.validation`` helper itself or delegates to a
    public sibling that does.
    """

    code = "TA006"
    name = "boundary-validation"
    description = (
        "public functions in engine-boundary modules (engine.py, the "
        "cache's evaluator.py) must (transitively) call into "
        "repro.exec.validation"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.basename in _BOUNDARY_BASENAMES and bool(source.scope)

    @staticmethod
    def _validation_names(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """(names imported from exec.validation, module aliases of it)."""
        names: Set[str] = set()
        modules: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module.endswith("exec.validation"):
                    for alias in node.names:
                        names.add(alias.asname or alias.name)
                elif node.module.endswith("exec"):
                    for alias in node.names:
                        if alias.name == "validation":
                            modules.add(alias.asname or "validation")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("exec.validation"):
                        modules.add(alias.asname or alias.name.split(".")[0])
        return names, modules

    @staticmethod
    def _uses_validation(
        function: ast.FunctionDef, names: Set[str], modules: Set[str]
    ) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Name) and node.id in names:
                return True
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in modules
            ):
                return True
        return False

    @staticmethod
    def _called_functions(function: ast.FunctionDef) -> Set[str]:
        return {
            node.func.id
            for node in ast.walk(function)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        names, modules = self._validation_names(source.tree)
        top_level: Dict[str, ast.FunctionDef] = {
            statement.name: statement
            for statement in source.tree.body
            if isinstance(statement, ast.FunctionDef)
        }
        validated: Set[str] = {
            name
            for name, function in top_level.items()
            if self._uses_validation(function, names, modules)
        }
        # Propagate through intra-module calls to a fixed point: a
        # function that calls a validated sibling is itself validated.
        changed = True
        while changed:
            changed = False
            for name, function in top_level.items():
                if name in validated:
                    continue
                if self._called_functions(function) & validated:
                    validated.add(name)
                    changed = True
        for name, function in top_level.items():
            if name.startswith("_") or name in validated:
                continue
            yield self.violation(
                source,
                function,
                f"engine-boundary public function {name}() never routes "
                "through repro.exec.validation (directly or via a public "
                "sibling); unvalidated triples corrupt sweep ordering",
            )


class SetIterationRule(Rule):
    """TA007 — no nondeterministic ``set`` iteration in merge/stitch
    paths.

    ``set`` iteration order depends on insertion history and hash
    seeds; in the seam-stitching and shard-merge code a
    nondeterministic visit order silently reorders rows between runs.
    Iterate ``sorted(...)`` instead (membership tests remain fine).
    """

    code = "TA007"
    name = "set-iteration-in-merge-path"
    description = (
        "partition.py/parallel.py must not iterate sets directly; "
        "wrap in sorted()"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.basename in _ORDER_SENSITIVE_BASENAMES and source.in_scope(
            "core"
        )

    def _produces_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._produces_set(node.left) or self._produces_set(node.right)
        return False

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(generator.iter for generator in node.generators)
            for candidate in iters:
                if self._produces_set(candidate):
                    yield self.violation(
                        source,
                        candidate,
                        "iterating a set in a merge/stitch path is "
                        "nondeterministic across runs; iterate "
                        "sorted(...) instead",
                    )


class AnnotationGateRule(Rule):
    """TA008 — the public API of ``core``/``exec``/``analysis`` is fully
    annotated.

    The stdlib-enforced half of the strict typing gate: every public
    module-level function and every public method (plus ``__init__``)
    annotates all parameters and its return type, so mypy ``--strict``
    has real signatures to check rather than inferring ``Any``.
    """

    code = "TA008"
    name = "annotation-gate"
    description = (
        "public functions/methods in core/, exec/, analysis/, serve/, "
        "cache/ and metrics/ must annotate every parameter and the "
        "return type"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_scope(
            "core", "exec", "analysis", "serve", "cache", "metrics"
        )

    @staticmethod
    def _is_static(function: ast.FunctionDef) -> bool:
        return any(
            isinstance(decorator, ast.Name) and decorator.id == "staticmethod"
            for decorator in function.decorator_list
        )

    def _missing(
        self, function: ast.FunctionDef, *, is_method: bool
    ) -> List[str]:
        missing: List[str] = []
        args = function.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and not self._is_static(function) and positional:
            positional = positional[1:]  # self / cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        for variadic, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if variadic is not None and variadic.annotation is None:
                missing.append(prefix + variadic.arg)
        if function.returns is None:
            missing.append("return")
        return missing

    def _checkable(self, name: str) -> bool:
        return name == "__init__" or not name.startswith("_")

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        targets: List[Tuple[ast.FunctionDef, bool]] = []
        for statement in source.tree.body:
            if isinstance(statement, ast.FunctionDef):
                targets.append((statement, False))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for statement in node.body:
                    if isinstance(statement, ast.FunctionDef):
                        targets.append((statement, True))
        for function, is_method in targets:
            if not self._checkable(function.name):
                continue
            missing = self._missing(function, is_method=is_method)
            if missing:
                yield self.violation(
                    source,
                    function,
                    f"{function.name}() is missing annotations for "
                    f"{', '.join(missing)}; the strict typing gate needs "
                    "full public signatures",
                )


class JournalBypassRule(Rule):
    """TA009 — storage code routes writes through the journal API.

    The durability contract (DESIGN.md §10) holds only if every
    write-capable file open and every unlink in ``storage/`` goes
    through :mod:`repro.storage.journal`'s sanctioned helpers
    (``data_open``/``scratch_open``/``scratch_unlink``): those apply
    fault injection and keep the write-ahead ordering observable.  A
    direct ``open(path, "wb")`` or ``os.remove`` bypasses both — it can
    clobber acknowledged data without a journal record and is invisible
    to the crash matrix.  The helpers themselves carry
    ``# ta: ignore[TA009]`` on their sanctioned calls.
    """

    code = "TA009"
    name = "journal-bypass-write"
    description = (
        "storage/ must not call open() with a write mode or os.remove/"
        "os.unlink directly; use the repro.storage.journal helpers"
    )

    _UNLINK_NAMES = frozenset({"remove", "unlink"})

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_scope("storage")

    @staticmethod
    def _write_mode(call: ast.Call) -> Optional[str]:
        """The mode string if it is a write-capable constant, else None."""
        mode: Optional[ast.expr] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return None
        if any(flag in mode.value for flag in ("w", "a", "x", "+")):
            return mode.value
        return None

    @staticmethod
    def _os_unlink_aliases(tree: ast.Module) -> Set[str]:
        """Bare names bound to ``os.remove``/``os.unlink`` via import."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in JournalBypassRule._UNLINK_NAMES:
                        aliases.add(alias.asname or alias.name)
        return aliases

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        unlink_aliases = self._os_unlink_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            function = node.func
            if isinstance(function, ast.Name) and function.id == "open":
                mode = self._write_mode(node)
                if mode is not None:
                    yield self.violation(
                        source,
                        node,
                        f"direct open(..., {mode!r}) in storage/ bypasses "
                        "the journal API; use data_open/scratch_open from "
                        "repro.storage.journal",
                    )
            elif (
                isinstance(function, ast.Attribute)
                and function.attr in self._UNLINK_NAMES
                and isinstance(function.value, ast.Name)
                and function.value.id == "os"
            ):
                yield self.violation(
                    source,
                    node,
                    f"os.{function.attr}() in storage/ deletes files behind "
                    "the journal's back; use scratch_unlink from "
                    "repro.storage.journal",
                )
            elif (
                isinstance(function, ast.Name)
                and function.id in unlink_aliases
            ):
                yield self.violation(
                    source,
                    node,
                    f"{function.id}() (imported from os) in storage/ deletes "
                    "files behind the journal's back; use scratch_unlink "
                    "from repro.storage.journal",
                )


class HotLoopRule(Rule):
    """TA010 — marked hot loops stay free of tuple builds and unbound
    attribute lookups.

    The columnar pipeline's speed claim rests on its inner loops doing
    no per-event allocation or dynamic dispatch.  Loops annotated
    ``# ta: hot`` in the hot-path modules (``columnar_sweep.py``,
    ``sweep.py``, ``partition.py``, ``codec.py``) are that claim made
    checkable: inside them the rule forbids

    * constructing a project NamedTuple (``ConstantInterval``,
      ``TemporalTuple``, ...) — per-event object churn; batch-convert
      outside the loop instead, and
    * calling through an attribute lookup (``obj.method(...)``) — an
      interpreted dict probe per iteration; hoist the bound method to a
      local before the loop.

    Unmarked loops are exempt — the marker is the author's statement
    that the loop is performance-bearing.
    """

    code = "TA010"
    name = "hot-loop-allocation"
    description = (
        "loops marked '# ta: hot' in hot-path modules must not build "
        "NamedTuples or call through attribute lookups; hoist and batch"
    )

    _HOT_BASENAMES = frozenset(
        {"columnar_sweep.py", "sweep.py", "partition.py", "codec.py"}
    )
    _MARKER = "ta: hot"

    def applies_to(self, source: SourceFile) -> bool:
        return source.basename in self._HOT_BASENAMES and source.in_scope(
            "core", "storage"
        )

    def _is_marked(self, source: SourceFile, node: ast.stmt) -> bool:
        """Marker on the loop header line or the line directly above."""
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(source.lines):
                line = source.lines[lineno - 1]
                if "#" in line and self._MARKER in line.split("#", 1)[1]:
                    return True
        return False

    @staticmethod
    def _is_namedtuple_name(name: str, index: ProjectIndex) -> bool:
        for info in index.classes.get(name, []):
            if "NamedTuple" in info.bases or index.inherits_from(
                info, "NamedTuple"
            ):
                return True
        return False

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            if not self._is_marked(source, node):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                function = inner.func
                if isinstance(function, ast.Attribute):
                    yield self.violation(
                        source,
                        inner,
                        f"attribute-lookup call .{function.attr}(...) inside "
                        "a '# ta: hot' loop; hoist the bound method to a "
                        "local before the loop",
                    )
                elif isinstance(
                    function, ast.Name
                ) and self._is_namedtuple_name(function.id, index):
                    yield self.violation(
                        source,
                        inner,
                        f"NamedTuple {function.id}(...) constructed inside a "
                        "'# ta: hot' loop; accumulate plain tuples and "
                        "batch-convert after the loop",
                    )


def default_rules() -> List[Rule]:
    """Every rule, in code order (the registry the CLI and tests use)."""
    from repro.analysis.concurrency import (
        BlockingCallUnderLockRule,
        EscapingGuardedStateRule,
        GuardedAttributeRule,
        LockOrderRule,
        LockPerCallRule,
    )

    return [
        EvaluatorProtocolRule(),
        SlotsOnNodeClassesRule(),
        SwallowedExceptionRule(),
        WallClockRule(),
        MutableDefaultRule(),
        BoundaryValidationRule(),
        SetIterationRule(),
        AnnotationGateRule(),
        JournalBypassRule(),
        HotLoopRule(),
        GuardedAttributeRule(),
        LockOrderRule(),
        EscapingGuardedStateRule(),
        BlockingCallUnderLockRule(),
        LockPerCallRule(),
    ]
