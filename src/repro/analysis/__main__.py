"""``python -m repro.analysis`` — alias for the lint CLI."""

from repro.analysis.lint import main

if __name__ == "__main__":
    raise SystemExit(main())
