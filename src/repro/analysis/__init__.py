"""Static analysis and runtime verification for the repro engine.

Three layers keep the engine honest as it grows:

* :mod:`repro.analysis.lint` — a custom AST lint pass (stdlib ``ast``
  only) enforcing repo-specific rules: the evaluator/relation protocol,
  ``__slots__`` on hot-path node classes, no swallowed exceptions in
  ``core``/``exec``, monotonic clocks only in deadline-sensitive code,
  no mutable default arguments, engine-boundary validation routing, no
  nondeterministic ``set`` iteration in merge/stitch paths, and full
  annotations on the public API (the stdlib-enforced half of the
  strict typing gate).  Run it with::

      python -m repro.analysis.lint src/ tests/

* :mod:`repro.analysis.invariants` — a runtime invariant verifier,
  activated by ``REPRO_CHECK_INVARIANTS=1``, that re-checks the
  properties the algorithms silently rely on: constant intervals
  partition the queried span, aggregation-tree partials re-sum to the
  brute-force per-leaf value, the k-ordered gc-threshold never frees a
  node whose interval can still change, and structure accounting
  matches :class:`~repro.metrics.space.SpaceTracker`.

* the strict typing gate — ``[tool.mypy]`` in ``pyproject.toml`` scoped
  to ``core``/``exec``/``analysis``; ``make lint`` runs both passes.

See DESIGN.md §8 for the rule catalogue and how to add a rule.
"""

from typing import Any

__all__ = [
    "LintRunner",
    "Violation",
    "lint_paths",
    "InvariantViolation",
    "invariants_enabled",
]

_LINT_NAMES = {"LintRunner", "Violation", "lint_paths"}


def __getattr__(name: str) -> Any:
    """Lazy re-exports: keeps ``python -m repro.analysis.lint`` from
    importing the lint module twice (once here, once as ``__main__``)."""
    if name in _LINT_NAMES:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in {"InvariantViolation", "invariants_enabled"}:
        from repro.analysis import invariants

        return getattr(invariants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
