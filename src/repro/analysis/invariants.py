"""Runtime invariant verifier (``REPRO_CHECK_INVARIANTS=1``).

The engine's failure mode is not a crash — it is a *wrong row*: a
partial aggregate that no longer re-sums, a k-ordered node freed while
its interval could still change, a shard seam stitched into a gap.
This module re-checks, at runtime and against independent shadow
computations, the properties every evaluator silently relies on:

* **Partition** — the constant intervals of a result exactly partition
  ``[ORIGIN, FOREVER]``: time-ordered, no gaps, no overlaps.
* **Snapshot agreement** (snapshot reducibility) — at sampled instants
  the reported value equals a brute-force per-instant evaluation of
  the input triples, the definition the paper starts from.
* **Tree partials re-sum** — for sampled leaves of an aggregation
  tree, folding the node states along the root-to-leaf path equals the
  brute-force fold of the tuples overlapping that leaf.
* **GC safety** — the k-ordered tree never frees a node whose interval
  can still change: a shadow sliding window recomputes the safe
  threshold independently of the evaluator's own bookkeeping, so a
  corrupted ``_threshold`` is caught rather than trusted.
* **Space accounting** — live structure matches
  :class:`~repro.metrics.space.SpaceTracker` (checked after paged-tree
  evictions and at the end of every tree evaluation).

Verification is off by default and costs one module-flag check per
engine call.  Enable it with the ``REPRO_CHECK_INVARIANTS=1``
environment variable (read at import), :func:`enable`, or the
``invariant_checks`` pytest fixture; with the flag set the entire
existing test suite doubles as an invariant stress test.  A failed
check raises :class:`InvariantViolation` (an ``AssertionError``: these
are bugs, not request errors).
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Any, Deque, Iterator, List, Optional, Sequence, Tuple

from repro.core.interval import FOREVER, ORIGIN

__all__ = [
    "ENV_FLAG",
    "InvariantViolation",
    "GCShadow",
    "invariants_enabled",
    "enable",
    "disable",
    "reset_to_env",
    "verify_result_partition",
    "verify_snapshot_agreement",
    "verify_tree_partials",
    "verify_space_accounting",
    "verify_cached_shards",
    "verify_recovered_relation",
    "verify_evaluation",
]

#: Environment variable that switches the verifier on (read at import).
ENV_FLAG = "REPRO_CHECK_INVARIANTS"

#: Instants sampled for the snapshot-agreement check per evaluation.
SNAPSHOT_SAMPLES = 48

#: Leaves sampled for the partial-resummation check per evaluation.
LEAF_SAMPLES = 32


class InvariantViolation(AssertionError):
    """An engine invariant failed at runtime — a bug, not a bad request."""


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "").strip().lower() not in {
        "",
        "0",
        "false",
        "no",
        "off",
    }


_enabled: bool = _env_enabled()


def invariants_enabled() -> bool:
    """Is runtime invariant verification currently on?"""
    return _enabled


def enable() -> None:
    """Switch verification on for this process (overrides the env)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Switch verification off for this process (overrides the env)."""
    global _enabled
    _enabled = False


def reset_to_env() -> None:
    """Restore the import-time, environment-driven setting."""
    global _enabled
    _enabled = _env_enabled()


# ---------------------------------------------------------------------------
# Independent brute-force computation (deliberately naive)
# ---------------------------------------------------------------------------


def _brute_fold(
    triples: Sequence[Tuple[int, int, Any]], aggregate: Any, lo: int, hi: int
) -> Any:
    """Finalized aggregate over every tuple overlapping ``[lo, hi]``.

    Correct for any span lying inside one constant interval (every
    overlapping tuple then covers the whole span) — which is exactly
    how the checks below use it.
    """
    state = aggregate.identity()
    for start, end, value in triples:
        if start <= hi and end >= lo:
            state = aggregate.absorb(state, value)
    return aggregate.finalize(state)


def _values_agree(left: Any, right: Any) -> bool:
    if isinstance(left, float) or isinstance(right, float):
        if left is None or right is None:
            return left is right
        return math.isclose(float(left), float(right), rel_tol=1e-9, abs_tol=1e-9)
    return bool(left == right)


def _sample_indices(count: int, limit: int) -> Iterator[int]:
    """Deterministic spread of at most ``limit`` indices over ``count``."""
    if count <= limit:
        yield from range(count)
        return
    stride = count / limit
    yield from sorted({min(count - 1, int(i * stride)) for i in range(limit)})


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


def verify_result_partition(result: Any, *, what: str = "result") -> None:
    """Constant intervals must exactly partition ``[ORIGIN, FOREVER]``."""
    rows = result.rows
    if not rows:
        raise InvariantViolation(f"{what}: empty result cannot cover the timeline")
    if rows[0].start != ORIGIN:
        raise InvariantViolation(
            f"{what}: first row starts at {rows[0].start}, not the origin "
            f"{ORIGIN}"
        )
    previous_end = None
    for row in rows:
        if row.start > row.end:
            raise InvariantViolation(f"{what}: inverted row {row!r}")
        if previous_end is not None:
            if row.start <= previous_end:
                raise InvariantViolation(
                    f"{what}: row {row!r} overlaps the previous row ending "
                    f"at {previous_end}"
                )
            if row.start != previous_end + 1:
                raise InvariantViolation(
                    f"{what}: gap between {previous_end} and row {row!r}"
                )
        previous_end = row.end
    if previous_end != FOREVER:
        raise InvariantViolation(
            f"{what}: last row ends at {previous_end}, not FOREVER"
        )


def verify_snapshot_agreement(
    result: Any,
    triples: Sequence[Tuple[int, int, Any]],
    aggregate: Any,
    *,
    max_samples: int = SNAPSHOT_SAMPLES,
) -> None:
    """Sampled rows agree with per-instant brute-force evaluation.

    Snapshot reducibility: the value over a constant interval must
    equal the snapshot evaluation at any instant inside it.  We sample
    rows deterministically and check their start instants.
    """
    rows = result.rows
    for index in _sample_indices(len(rows), max_samples):
        row = rows[index]
        expected = _brute_fold(triples, aggregate, row.start, row.start)
        if not _values_agree(row.value, expected):
            raise InvariantViolation(
                f"snapshot disagreement at instant {row.start}: result row "
                f"{row!r} but brute-force per-instant evaluation gives "
                f"{expected!r}"
            )


def _leaf_states(root: Any, aggregate: Any) -> Iterator[Tuple[Any, Any]]:
    """(leaf, folded root-to-leaf state) pairs, in time order."""
    stack: List[Tuple[Any, Any]] = [(root, aggregate.identity())]
    while stack:
        node, inherited = stack.pop()
        state = aggregate.merge(inherited, node.state)
        if node.left is None:
            yield node, state
            continue
        stack.append((node.right, state))
        stack.append((node.left, state))


def verify_tree_partials(
    evaluator: Any,
    triples: Sequence[Tuple[int, int, Any]],
    *,
    max_leaves: int = LEAF_SAMPLES,
) -> None:
    """Sampled tree leaves re-sum to the brute-force per-leaf value.

    Folds the node states along each sampled leaf's root-to-leaf path
    and compares against an independent fold of every input tuple
    overlapping the leaf's interval.  A corrupted partial anywhere on
    the path surfaces here.
    """
    root = getattr(evaluator, "root", None)
    if root is None:
        return
    aggregate = evaluator.aggregate
    leaves = list(_leaf_states(root, aggregate))
    for index in _sample_indices(len(leaves), max_leaves):
        leaf, state = leaves[index]
        folded = aggregate.finalize(state)
        expected = _brute_fold(triples, aggregate, leaf.start, leaf.end)
        if not _values_agree(folded, expected):
            raise InvariantViolation(
                f"aggregation-tree partials do not re-sum over leaf "
                f"[{leaf.start}, {leaf.end}]: path fold gives {folded!r}, "
                f"brute force over the input gives {expected!r}"
            )


def verify_space_accounting(evaluator: Any, *, when: str = "evaluation") -> None:
    """Live structure must match the ``SpaceTracker``'s ledger.

    Applies to evaluators exposing ``node_count()`` (the aggregation
    tree family, including the paged and k-ordered variants): every
    allocate/free must have been mirrored, or the memory-budget
    enforcement built on ``live_nodes`` is meaningless.
    """
    node_count = getattr(evaluator, "node_count", None)
    space = getattr(evaluator, "space", None)
    if node_count is None or space is None:
        return
    actual = node_count()
    if actual != space.live_nodes:
        raise InvariantViolation(
            f"space accounting diverged after {when}: {actual} live nodes "
            f"in the structure but SpaceTracker records {space.live_nodes}"
        )


def verify_cached_shards(
    relation: Any,
    attribute: Optional[str],
    aggregate: Any,
    windows: Sequence[Tuple[int, int]],
    shard_rows: Sequence[Sequence[Tuple[int, int, Any]]],
) -> None:
    """One sampled cached shard re-sweeps to the same rows from scratch.

    The shard-result cache's pure-hit path returns rows computed in the
    past; this check recomputes one window — sampled deterministically
    from the relation's version so repeated hits rotate through the
    shards — against the *live* relation and compares row for row.  A
    cache serving stale or corrupted partials surfaces here instead of
    in downstream answers.
    """
    if not windows:
        return
    # Lazy import: the engine imports this module, and the kernel sits
    # below the engine — importing it at call time keeps imports acyclic.
    from repro.core.columnar_sweep import window_rows

    index = getattr(relation, "version", 0) % len(windows)
    lo, hi = windows[index]
    triples = list(relation.scan_triples(attribute))
    if not triples:
        return
    starts, ends, values = zip(*triples)
    expected, _events = window_rows(starts, ends, values, aggregate, lo, hi)
    cached = list(shard_rows[index])
    if len(cached) != len(expected):
        raise InvariantViolation(
            f"cached shard {index} over [{lo}, {hi}] holds {len(cached)} "
            f"rows but a fresh sweep produces {len(expected)}"
        )
    for have, want in zip(cached, expected):
        if (
            have[0] != want[0]
            or have[1] != want[1]
            or not _values_agree(have[2], want[2])
        ):
            raise InvariantViolation(
                f"cached shard {index} over [{lo}, {hi}] diverged: cached "
                f"row {tuple(have)!r} but a fresh sweep gives {tuple(want)!r}"
            )


def verify_recovered_relation(recovered: Any, reference: Any) -> None:
    """A recovered relation must be row-for-row the acknowledged prefix.

    ``recovered`` and ``reference`` are anything iterable over
    :class:`~repro.relation.tuples.TemporalTuple` (heap files,
    relations, plain lists); ``reference`` holds every acknowledged row
    in append order.  Row counts, per-row content at sampled positions,
    and the full chained fingerprint must all agree — the fingerprint
    catches reorderings and substitutions sampling would miss.
    """
    # Lazy import, same reason as above: relation sits below analysis.
    from repro.relation.relation import fingerprint_rows

    recovered_rows = list(recovered)
    reference_rows = list(reference)
    if len(recovered_rows) != len(reference_rows):
        raise InvariantViolation(
            f"recovery returned {len(recovered_rows)} rows but "
            f"{len(reference_rows)} were acknowledged"
        )
    for index in _sample_indices(len(recovered_rows), LEAF_SAMPLES):
        if recovered_rows[index] != reference_rows[index]:
            raise InvariantViolation(
                f"recovered row {index} is {recovered_rows[index]!r}, "
                f"acknowledged row was {reference_rows[index]!r}"
            )
    have = fingerprint_rows(recovered_rows)
    want = fingerprint_rows(reference_rows)
    if have != want:
        raise InvariantViolation(
            f"recovered relation fingerprint {have:#x} differs from the "
            f"acknowledged fingerprint {want:#x} despite equal cardinality "
            "— rows were reordered or substituted"
        )


class GCShadow:
    """Independent recomputation of the k-ordered gc-threshold.

    Mirrors the paper's Section 5.3 argument from scratch: keep the
    last ``2k + 1`` tuple start times; the running max of *expired*
    starts is the earliest instant any future tuple can start, so a
    node whose interval reaches that instant may still change and must
    not be freed.  Because the shadow never reads the evaluator's own
    ``_threshold``, a corrupted threshold is detected instead of
    trusted.
    """

    __slots__ = ("capacity", "window", "threshold")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.window: Deque[int] = deque()
        self.threshold = ORIGIN

    def observe(self, start: int) -> None:
        """Record one consumed tuple's start time."""
        self.window.append(start)
        if len(self.window) > self.capacity:
            expired = self.window.popleft()
            if expired > self.threshold:
                self.threshold = expired

    def check_free(self, node: Any) -> None:
        """A node about to be freed must be final under the *shadow*
        threshold."""
        if node.end >= self.threshold:
            raise InvariantViolation(
                f"k-ordered gc freed node [{node.start}, {node.end}] but "
                f"future tuples may still start at {self.threshold} or "
                "later — its interval can still change"
            )


def verify_evaluation(
    evaluator: Any,
    result: Any,
    triples: Sequence[Tuple[int, int, Any]],
    aggregate: Any,
) -> None:
    """The engine-boundary hook: run every applicable post-hoc check."""
    verify_result_partition(result)
    verify_snapshot_agreement(result, triples, aggregate)
    verify_tree_partials(evaluator, triples)
    verify_space_accounting(evaluator)
