"""Custom AST lint pass for the temporal-aggregates engine.

Pure stdlib (``ast`` + ``tokenize``-free line scanning): no third-party
linter can know that *this* repo's evaluators must be registered with a
protocol, that its merge paths must never iterate a ``set``, or that
its deadline code must stay on the monotonic clock — so those rules
live here.  The pass runs in two phases:

1. every file is parsed once and indexed into a :class:`ProjectIndex`
   (class hierarchy by bare name, methods, class attributes,
   ``__slots__`` declarations), so rules can resolve inheritance across
   files without imports;
2. each rule visits each file it applies to and yields
   :class:`Violation` records, which are then filtered against
   ``# ta: ignore[TAxxx]`` line suppressions.

Run as a CLI with ``python -m repro.analysis.lint PATH...`` (see
:mod:`repro.analysis.__main__` for the argument surface); the process
exits 0 when no violations survive suppression and 1 otherwise.
Directories named ``fixtures`` are skipped by default — the lint test
fixtures under ``tests/analysis/fixtures/`` contain deliberate
violations — and can be re-included with ``include_fixtures=True``.

Rule scoping works on path segments: the segments *after* a ``repro``
(package source) or ``fixtures`` (test fixture) directory form the
file's scope, so ``src/repro/core/engine.py`` and
``tests/analysis/fixtures/core/engine.py`` are both "core" files to
every rule.  Files outside both trees (plain test files, examples)
only see the universally safe rules (mutable defaults, bare
``except``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "ClassInfo",
    "SourceFile",
    "ProjectIndex",
    "Rule",
    "LintRunner",
    "collect_files",
    "lint_paths",
    "suppressed_codes",
]

#: ``# ta: ignore[TA003]`` / ``# ta: ignore[TA003, TA005]`` on the
#: reported line suppresses exactly the named codes, nothing else.
_SUPPRESS_RE = re.compile(r"#\s*ta:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Directory names whose contents are deliberate-violation fixtures.
FIXTURE_DIR_NAMES = frozenset({"fixtures"})

#: Path segments that anchor a file's rule scope.
_SCOPE_ANCHORS = ("repro", "fixtures")


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation at a source location."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The text-reporter line: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(slots=True)
class ClassInfo:
    """What the index remembers about one class definition."""

    name: str
    bases: Tuple[str, ...]
    methods: FrozenSet[str]
    class_attrs: FrozenSet[str]
    has_slots: bool
    path: str
    line: int
    col: int


def _base_name(expr: ast.expr) -> Optional[str]:
    """Bare name of a base-class expression (``Foo`` or ``mod.Foo``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _index_class(node: ast.ClassDef, path: str) -> ClassInfo:
    methods: Set[str] = set()
    attrs: Set[str] = set()
    has_slots = False
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
                    if target.id == "__slots__":
                        has_slots = True
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                attrs.add(statement.target.id)
                if statement.target.id == "__slots__":
                    has_slots = True
    bases = tuple(
        name for name in (_base_name(base) for base in node.bases) if name
    )
    return ClassInfo(
        name=node.name,
        bases=bases,
        methods=frozenset(methods),
        class_attrs=frozenset(attrs),
        has_slots=has_slots,
        path=path,
        line=node.lineno,
        col=node.col_offset,
    )


def scope_parts(path: Path) -> FrozenSet[str]:
    """Path segments after the ``repro``/``fixtures`` anchor (if any).

    An empty result means the file is outside both trees and only
    universal rules apply.
    """
    parts = path.parts
    for anchor in _SCOPE_ANCHORS:
        if anchor in parts:
            index = parts.index(anchor)
            return frozenset(parts[index + 1 :])
    return frozenset()


@dataclass(slots=True)
class SourceFile:
    """One parsed file plus everything rules need to scope themselves."""

    path: Path
    display_path: str
    tree: ast.Module
    lines: List[str]
    scope: FrozenSet[str] = field(default_factory=frozenset)

    @classmethod
    def parse(cls, path: Path, *, display_path: Optional[str] = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
            scope=scope_parts(path),
        )

    @property
    def basename(self) -> str:
        return self.path.name

    def in_scope(self, *segments: str) -> bool:
        """Is the file under any of the named package directories?"""
        return any(segment in self.scope for segment in segments)

    def suppressions(self, line: int) -> FrozenSet[str]:
        """Codes suppressed on ``line`` via ``# ta: ignore[...]``."""
        if 1 <= line <= len(self.lines):
            return suppressed_codes(self.lines[line - 1])
        return frozenset()


def suppressed_codes(line: str) -> FrozenSet[str]:
    """Parse one source line's ``# ta: ignore[...]`` comment (if any)."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip().upper() for code in match.group(1).split(",") if code.strip()
    )


class ProjectIndex:
    """Cross-file class hierarchy, resolved by bare class name.

    Name-based resolution is deliberate: the lint pass never imports
    the code it checks, and the repo does not reuse class names across
    modules.  Ambiguity (several classes sharing a name) resolves to
    "any of them", which can only make rules *more* lenient.
    """

    def __init__(self) -> None:
        self.classes: Dict[str, List[ClassInfo]] = {}

    def add_file(self, source: SourceFile) -> None:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                info = _index_class(node, source.display_path)
                self.classes.setdefault(info.name, []).append(info)

    def ancestors(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """Transitive project-local ancestors, breadth-first, cycle-safe."""
        seen: Set[str] = {info.name}
        frontier = list(info.bases)
        while frontier:
            base = frontier.pop(0)
            if base in seen:
                continue
            seen.add(base)
            for candidate in self.classes.get(base, []):
                yield candidate
                frontier.extend(candidate.bases)

    def inherits_from(self, info: ClassInfo, root: str) -> bool:
        """Does ``info`` transitively subclass a class named ``root``?"""
        if root in info.bases:
            return True
        return any(ancestor.name == root or root in ancestor.bases
                   for ancestor in self.ancestors(info))

    def defines_method(self, info: ClassInfo, method: str, *, skip_roots: FrozenSet[str] = frozenset()) -> bool:
        """Does the class or an ancestor (excluding ``skip_roots``) define it?"""
        if method in info.methods:
            return True
        return any(
            method in ancestor.methods
            for ancestor in self.ancestors(info)
            if ancestor.name not in skip_roots
        )


class Rule:
    """One lint rule: a code, a scope filter, and an AST check."""

    #: Stable identifier reported to users (``TA001``...).
    code: str = "TA000"
    #: Short kebab-case rule name for the JSON reporter.
    name: str = "abstract"
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        """Scope filter; the default applies everywhere."""
        return True

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        """Yield every violation of this rule in ``source``."""
        raise NotImplementedError

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            code=self.code,
            rule=self.name,
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class LintRunner:
    """Parse once, index, run every rule, apply suppressions."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)

    def run(self, files: Sequence[SourceFile]) -> List[Violation]:
        index = ProjectIndex()
        for source in files:
            index.add_file(source)
        violations: List[Violation] = []
        for source in files:
            for rule in self.rules:
                if not rule.applies_to(source):
                    continue
                for violation in rule.check(source, index):
                    if violation.code in source.suppressions(violation.line):
                        continue
                    violations.append(violation)
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return violations


def collect_files(
    paths: Sequence[Path], *, include_fixtures: bool = False
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    collected: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not include_fixtures and any(
                    part in FIXTURE_DIR_NAMES for part in candidate.parts
                ):
                    continue
                collected.add(candidate)
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    include_fixtures: bool = False,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked)."""
    files = [
        SourceFile.parse(path)
        for path in collect_files(paths, include_fixtures=include_fixtures)
    ]
    return LintRunner(rules).run(files), len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.analysis.lint src/ tests/``.

    Exit status 0 when no violations survive suppression, 1 when at
    least one does, 2 on usage errors (argparse's convention).
    """
    import argparse

    from repro.analysis.report import render_json, render_sarif, render_text
    from repro.analysis.rules import default_rules

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Repo-specific AST lint pass (rules TA001...TA015).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit status:\n"
            "  0  no violations survived suppression\n"
            "  1  at least one violation\n"
            "  2  usage error (unknown rule code, bad flag)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="reporter (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated TA codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated TA codes to skip (complement of --select)",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint directories named 'fixtures' (deliberate violations)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    options = parser.parse_args(argv)

    rules: List[Rule] = list(default_rules())
    if options.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    known = {rule.code for rule in rules}
    if options.select is not None:
        wanted = {code.strip().upper() for code in options.select.split(",")}
        unknown = wanted - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if options.ignore is not None:
        skipped = {code.strip().upper() for code in options.ignore.split(",")}
        unknown = skipped - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code not in skipped]

    violations, files_checked = lint_paths(
        [Path(path) for path in options.paths],
        rules=rules,
        include_fixtures=options.include_fixtures,
    )
    if options.format == "sarif":
        print(render_sarif(violations, files_checked, rules=rules))
    else:
        renderer = render_json if options.format == "json" else render_text
        print(renderer(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
