"""Reporters for lint results: human text and machine JSON.

The text form is the familiar ``path:line:col: CODE message`` stream
with a one-line summary; the JSON form is a stable document
(``{"files_checked", "violation_count", "violations": [...]}``) for CI
annotation tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.lint import Violation

__all__ = ["render_text", "render_json"]


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """The text reporter: one line per violation plus a summary."""
    lines: List[str] = [violation.render() for violation in violations]
    if violations:
        by_code: Dict[str, int] = {}
        for violation in violations:
            by_code[violation.code] = by_code.get(violation.code, 0) + 1
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} in {files_checked} files "
            f"({breakdown})"
        )
    else:
        lines.append(f"0 violations in {files_checked} files")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """The JSON reporter: a stable document for CI tooling."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [violation.to_json() for violation in violations],
        },
        indent=2,
        sort_keys=True,
    )
