"""Reporters for lint results: human text, machine JSON, and SARIF.

The text form is the familiar ``path:line:col: CODE message`` stream
with a one-line summary; the JSON form is a stable document
(``{"files_checked", "violation_count", "violations": [...]}``) for CI
annotation tooling; the SARIF form is a SARIF 2.1.0 log that code
hosts (GitHub code scanning and friends) ingest natively, carrying the
rule catalogue in ``tool.driver.rules`` so findings link back to the
rule descriptions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.lint import Rule, Violation

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """The text reporter: one line per violation plus a summary."""
    lines: List[str] = [violation.render() for violation in violations]
    if violations:
        by_code: Dict[str, int] = {}
        for violation in violations:
            by_code[violation.code] = by_code.get(violation.code, 0) + 1
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} in {files_checked} files "
            f"({breakdown})"
        )
    else:
        lines.append(f"0 violations in {files_checked} files")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """The JSON reporter: a stable document for CI tooling."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [violation.to_json() for violation in violations],
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    violations: Sequence[Violation],
    files_checked: int,
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """The SARIF 2.1.0 reporter.

    ``rules`` populates ``tool.driver.rules``; violations whose code
    has no catalogue entry still render (SARIF allows results without a
    rule index).  ``files_checked`` lands in the run's property bag —
    SARIF has no first-class slot for it.
    """
    catalogue = list(rules) if rules is not None else []
    rule_index = {rule.code: i for i, rule in enumerate(catalogue)}
    results: List[Dict[str, Any]] = []
    for violation in violations:
        result: Dict[str, Any] = {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col,
                        },
                    }
                }
            ],
        }
        if violation.code in rule_index:
            result["ruleIndex"] = rule_index[violation.code]
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/temporal-aggregates"
                        ),
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.description},
                            }
                            for rule in catalogue
                        ],
                    }
                },
                "results": results,
                "properties": {"filesChecked": files_checked},
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
