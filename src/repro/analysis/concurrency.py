"""Static concurrency model: lock ownership, guarded state, TA011-TA015.

The serving stack's correctness rests on hand-placed ``threading.Lock``
discipline (DESIGN.md, concurrency model).  This pass makes that
discipline checkable without running the code:

1. every class is summarized into a :class:`ClassConcurrencyModel` —
   which attributes hold locks, which attributes are *guarded* by which
   lock, which are deliberately lock-free;
2. guarded-ness comes from two sources that cooperate: an explicit
   ``# ta: guarded-by(self._lock)`` trailing comment on an assignment
   to the attribute, and *inference* — any attribute ever mutated under
   a ``with self.<lock>:`` block (outside ``__init__``) in a class that
   owns a lock is presumed guarded by that lock.  A trailing
   ``# ta: unguarded`` comment opts an attribute out (for deliberate
   lock-free protocols such as double-checked publication);
3. five rules consume the model: TA011 (guarded attribute touched
   outside its lock), TA012 (inconsistent lock acquisition order —
   static lock-order graph with cycle detection), TA013 (guarded
   mutable container escapes by reference), TA014 (blocking call while
   holding a lock), TA015 (lock constructed per-call).

The same model drives the *dynamic* half of the checker: the
Eraser-style lockset tracker in :mod:`repro.analysis.racecheck`
instruments exactly the locks and guarded attributes collected here.

Conventions the model understands:

* a method whose name ends in ``_locked`` asserts "caller already
  holds this object's lock(s)" — TA011 treats it as entered with every
  owned lock held (and its accesses do not feed inference);
* ``__init__`` is construction-time: unpublished objects need no
  locking, so it neither feeds inference nor is checked;
* code inside a nested ``def``/``lambda`` runs later, possibly on
  another thread, so it is analyzed as holding *no* locks even when
  the enclosing statement does.

Known limits (documented, not silent): the lock-order graph is
per-file, and calls through other objects (``self.cache.reset()``)
are not traversed — only ``self``-calls and module-level functions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import ProjectIndex, Rule, SourceFile, Violation

__all__ = [
    "ClassConcurrencyModel",
    "build_class_models",
    "module_locks",
    "GuardedAttributeRule",
    "LockOrderRule",
    "EscapingGuardedStateRule",
    "BlockingCallUnderLockRule",
    "LockPerCallRule",
]

#: ``self.x = threading.Lock()  # noqa`` — the factories that make an
#: attribute a lock attribute.  Kind matters: re-acquiring a plain
#: ``Lock`` you already hold deadlocks; an ``RLock`` is re-entrant.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Trailing-comment annotations the model reads off assignment lines.
_GUARDED_BY_RE = re.compile(r"#\s*ta:\s*guarded-by\(\s*self\.(\w+)\s*\)")
_UNGUARDED_RE = re.compile(r"#\s*ta:\s*unguarded\b")

#: Method names whose call mutates the receiver: ``self.x.append(...)``
#: under a lock marks ``x`` as written under that lock.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
    "reverse", "rotate", "setdefault", "sort", "update",
})

#: Constructors/displays whose result is a shared mutable container —
#: the values TA013 refuses to let escape by reference.
_CONTAINER_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "deque", "OrderedDict",
    "defaultdict", "Counter",
})

#: Attribute-call names that block (socket/file/sleep/pool-future); a
#: call to one while holding a lock serializes every other thread on
#: I/O latency.  ``.join`` is deliberately absent (``str.join``); bare
#: ``.get`` counts only when called with ``timeout=``/``block=``
#: (queue-style), never plain ``dict.get``.
_BLOCKING_ATTR_CALLS = frozenset({
    "accept", "connect", "fsync", "getaddrinfo", "recv", "recv_into",
    "result", "select", "send", "sendall", "sendto", "sleep", "submit",
    "wait",
})

#: Bare-name calls that block (``from time import sleep``; ``open``).
_BLOCKING_NAME_CALLS = frozenset({"sleep", "open"})

#: Everything ``threading`` offers that TA015 refuses to see built
#: per-call: a fresh lock each invocation excludes nothing.
_PER_CALL_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_kind(expr: ast.expr) -> Optional[str]:
    """``"Lock"``/``"RLock"`` for ``threading.Lock()`` / ``Lock()``."""
    if not isinstance(expr, ast.Call):
        return None
    function = expr.func
    name = None
    if isinstance(function, ast.Name):
        name = function.id
    elif isinstance(function, ast.Attribute):
        name = function.attr
    return name if name in _LOCK_FACTORIES else None


def _mutation_root(target: ast.expr) -> Optional[str]:
    """The ``self`` attribute whose object a store target mutates.

    ``self.x[k] = v``, ``self.x.y = v``, ``del self.x[k]`` all mutate
    the object reached through ``self.x`` — the guarded location —
    while ``self.x = v`` rebinds the attribute itself (handled by the
    caller as a binding write).
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        attr = _self_attr(parent)
        if attr is not None:
            return attr
        node = parent
    return None


@dataclass(slots=True)
class _Access:
    """One ``self.X`` touch inside a method body."""

    node: ast.AST
    attr: str
    is_write: bool
    held: FrozenSet[str]


@dataclass(slots=True)
class ClassConcurrencyModel:
    """What the pass knows about one class's locking discipline."""

    name: str
    line: int
    #: lock attribute -> factory kind ("Lock" | "RLock").
    locks: Dict[str, str] = field(default_factory=dict)
    #: guarded attribute -> the lock attrs that may guard it (a
    #: declared ``# ta: guarded-by`` pins a single lock; inference can
    #: accumulate several, any of which satisfies TA011).
    guarded: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: attributes with an explicit ``# ta: guarded-by`` annotation.
    declared: Set[str] = field(default_factory=set)
    #: attributes opted out via ``# ta: unguarded``.
    unguarded: Set[str] = field(default_factory=set)
    #: attributes ever assigned a mutable container value.
    mutable_attrs: Set[str] = field(default_factory=set)

    def guard_names(self, attr: str) -> str:
        """Human-readable guard list for messages."""
        return " or ".join(
            f"self.{lock}" for lock in sorted(self.guarded.get(attr, ()))
        )


def _line_annotations(
    source: SourceFile, lineno: int
) -> Tuple[Optional[str], bool]:
    """(guarded-by lock attr, unguarded?) on one source line."""
    if not (1 <= lineno <= len(source.lines)):
        return None, False
    line = source.lines[lineno - 1]
    match = _GUARDED_BY_RE.search(line)
    return (
        match.group(1) if match else None,
        bool(_UNGUARDED_RE.search(line)),
    )


def _class_methods(node: ast.ClassDef) -> List[ast.FunctionDef]:
    return [
        statement
        for statement in node.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _statement_accesses(
    statement: ast.stmt, held: FrozenSet[str]
) -> Iterator[_Access]:
    """Classify every ``self.X`` touch in one simple statement.

    Binding writes (``self.x = ...``), mutation writes (subscript
    stores, ``del self.x[...]``, augmented assigns, mutator-method
    calls), and plain reads all count as accesses; the write flag
    feeds guarded-ness inference.
    """
    written: Set[str] = set()
    if isinstance(statement, ast.Assign):
        targets: List[ast.expr] = list(statement.targets)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        targets = [statement.target]
    elif isinstance(statement, ast.Delete):
        targets = list(statement.targets)
    else:
        targets = []
    for target in targets:
        root = _mutation_root(target)
        if root is not None:
            written.add(root)
    for node in ast.walk(statement):
        if isinstance(node, ast.Call):
            function = node.func
            if (
                isinstance(function, ast.Attribute)
                and function.attr in _MUTATOR_METHODS
            ):
                root = _self_attr(function.value) or _mutation_root(
                    function.value
                )
                if root is not None:
                    written.add(root)
    for node in ast.walk(statement):
        attr = _self_attr(node)
        if attr is None:
            continue
        assert isinstance(node, ast.Attribute)
        is_write = isinstance(node.ctx, (ast.Store, ast.Del)) or attr in written
        yield _Access(node=node, attr=attr, is_write=is_write, held=held)


def _with_locks(
    item: ast.withitem, lock_attrs: FrozenSet[str]
) -> Optional[str]:
    """The owned lock attr a ``with`` item acquires, if any."""
    expr = item.context_expr
    attr = _self_attr(expr)
    if attr is not None and attr in lock_attrs:
        return attr
    return None


def _walk_accesses(
    body: Sequence[ast.stmt],
    lock_attrs: FrozenSet[str],
    held: FrozenSet[str],
) -> Iterator[_Access]:
    """Yield every ``self.X`` access with the lock set held at it."""
    for statement in body:
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in statement.items:
                yield from _statement_accesses(
                    ast.Expr(value=item.context_expr), held
                )
                lock = _with_locks(item, lock_attrs)
                if lock is not None:
                    acquired.add(lock)
            yield from _walk_accesses(
                statement.body, lock_attrs, frozenset(acquired)
            )
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly on another thread: the
            # enclosing lock gives its body no protection.
            yield from _walk_accesses(statement.body, lock_attrs, frozenset())
        elif isinstance(statement, ast.ClassDef):
            yield from _walk_accesses(statement.body, lock_attrs, held)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            yield from _statement_accesses(
                ast.Expr(value=statement.iter), held
            )
            yield from _walk_accesses(statement.body, lock_attrs, held)
            yield from _walk_accesses(statement.orelse, lock_attrs, held)
        elif isinstance(statement, ast.While):
            yield from _statement_accesses(
                ast.Expr(value=statement.test), held
            )
            yield from _walk_accesses(statement.body, lock_attrs, held)
            yield from _walk_accesses(statement.orelse, lock_attrs, held)
        elif isinstance(statement, ast.If):
            yield from _statement_accesses(
                ast.Expr(value=statement.test), held
            )
            yield from _walk_accesses(statement.body, lock_attrs, held)
            yield from _walk_accesses(statement.orelse, lock_attrs, held)
        elif isinstance(statement, ast.Try):
            yield from _walk_accesses(statement.body, lock_attrs, held)
            for handler in statement.handlers:
                yield from _walk_accesses(handler.body, lock_attrs, held)
            yield from _walk_accesses(statement.orelse, lock_attrs, held)
            yield from _walk_accesses(statement.finalbody, lock_attrs, held)
        else:
            yield from _statement_accesses(statement, held)


def _is_container_value(expr: ast.expr) -> bool:
    if isinstance(
        expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(expr, ast.Call):
        function = expr.func
        name = None
        if isinstance(function, ast.Name):
            name = function.id
        elif isinstance(function, ast.Attribute):
            name = function.attr
        return name in _CONTAINER_FACTORIES
    return False


def build_class_models(source: SourceFile) -> Dict[str, ClassConcurrencyModel]:
    """Per-class concurrency models for one parsed file."""
    models: Dict[str, ClassConcurrencyModel] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            models[node.name] = _build_model(source, node)
    return models


def _build_model(
    source: SourceFile, node: ast.ClassDef
) -> ClassConcurrencyModel:
    model = ClassConcurrencyModel(name=node.name, line=node.lineno)
    declared_guards: Dict[str, str] = {}

    # Pass 1: lock attributes, annotations, container assignments —
    # every ``self.X = ...`` anywhere in the class body.
    for inner in ast.walk(node):
        if isinstance(inner, ast.Assign):
            targets, value = inner.targets, inner.value
        elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
            targets, value = [inner.target], inner.value
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            kind = _lock_kind(value)
            if kind is not None:
                model.locks[attr] = kind
            if _is_container_value(value):
                model.mutable_attrs.add(attr)
            guard, unguarded = _line_annotations(source, inner.lineno)
            if guard is not None:
                declared_guards[attr] = guard
                model.declared.add(attr)
            if unguarded:
                model.unguarded.add(attr)

    lock_attrs = frozenset(model.locks)

    # Pass 2: inference — attributes mutated while an owned lock is
    # held (outside __init__ and outside *_locked helpers) are guarded
    # by that lock.
    if lock_attrs:
        for method in _class_methods(node):
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for access in _walk_accesses(
                method.body, lock_attrs, frozenset()
            ):
                if not access.is_write:
                    continue
                attr = access.attr
                if attr in lock_attrs or attr in model.unguarded:
                    continue
                guards = access.held & lock_attrs
                if guards:
                    model.guarded[attr] = (
                        model.guarded.get(attr, frozenset()) | guards
                    )

    # Declared annotations pin the guard to a single lock and win over
    # whatever inference accumulated.
    for attr, guard in declared_guards.items():
        if attr not in model.unguarded:
            model.guarded[attr] = frozenset({guard})
    for attr in model.unguarded:
        model.guarded.pop(attr, None)
    return model


def module_locks(source: SourceFile) -> Dict[str, str]:
    """Module-level ``NAME = threading.Lock()`` bindings -> kind."""
    locks: Dict[str, str] = {}
    for statement in source.tree.body:
        if isinstance(statement, ast.Assign):
            kind = _lock_kind(statement.value)
            if kind is None:
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    locks[target.id] = kind
    return locks


_CONCURRENT_SCOPES = ("serve", "cache", "metrics", "core", "exec", "replicate")


class _ConcurrencyRule(Rule):
    """Shared scope: the layers that actually own threads and locks."""

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_scope(*_CONCURRENT_SCOPES)


class GuardedAttributeRule(_ConcurrencyRule):
    """TA011 — guarded attributes are only touched under their lock.

    Consumes the per-class model: any read or write of a guarded
    attribute in a method body without the guarding lock statically
    held is flagged.  ``__init__`` is exempt (construction-time),
    ``*_locked`` methods are treated as entered with every owned lock
    held (the repo's caller-holds-the-lock convention), and nested
    ``def`` bodies hold nothing (they run later, possibly elsewhere).
    """

    code = "TA011"
    name = "guarded-attr-outside-lock"
    description = (
        "attributes guarded by a lock (annotated or inferred) must not "
        "be read or written outside a 'with <lock>:' block"
    )

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = _build_model(source, node)
            if not model.locks or not model.guarded:
                continue
            lock_attrs = frozenset(model.locks)
            for method in _class_methods(node):
                if method.name == "__init__":
                    continue
                initial = (
                    lock_attrs
                    if method.name.endswith("_locked")
                    else frozenset()
                )
                seen: Set[Tuple[int, str]] = set()
                for access in _walk_accesses(
                    method.body, lock_attrs, initial
                ):
                    guards = model.guarded.get(access.attr)
                    if not guards or access.held & guards:
                        continue
                    key = (getattr(access.node, "lineno", 0), access.attr)
                    if key in seen:
                        continue
                    seen.add(key)
                    action = "written" if access.is_write else "read"
                    origin = (
                        "declared" if access.attr in model.declared
                        else "inferred"
                    )
                    yield self.violation(
                        source,
                        access.node,
                        f"self.{access.attr} is {action} in "
                        f"{node.name}.{method.name}() without holding "
                        f"{model.guard_names(access.attr)} ({origin} "
                        "guard); take the lock, rename the method "
                        "*_locked, or annotate '# ta: unguarded'",
                    )


@dataclass(slots=True)
class _LockEdge:
    """First lexical witness of acquiring ``dst`` while holding ``src``."""

    src: str
    dst: str
    node: ast.AST


class LockOrderRule(_ConcurrencyRule):
    """TA012 — locks are acquired in one global order per file.

    Builds a lock-order graph: an edge A -> B for every place lock B is
    acquired while A is held — lexically nested ``with`` blocks, plus
    ``self``-calls and module-function calls whose bodies (transitively)
    acquire locks.  A cycle means two code paths can each hold one lock
    of a pair while waiting for the other: a deadlock waiting for the
    right interleaving.  Re-acquiring a held non-reentrant ``Lock`` is
    reported immediately (self-deadlock); ``RLock`` re-entry is fine.
    """

    code = "TA012"
    name = "inconsistent-lock-order"
    description = (
        "the static lock-order graph (nested with blocks + call-through) "
        "must stay acyclic; plain Lock re-entry is a self-deadlock"
    )

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        mod_locks = module_locks(source)
        class_nodes = [
            node for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        ]
        models = {node.name: _build_model(source, node) for node in class_nodes}

        kinds: Dict[str, str] = {
            f"<module>.{name}": kind for name, kind in mod_locks.items()
        }
        for model in models.values():
            for attr, kind in model.locks.items():
                kinds[f"{model.name}.{attr}"] = kind

        # acquires[(owner, method)] = lock ids with-ed anywhere inside;
        # owner is the class name or None for module functions.
        acquires: Dict[Tuple[Optional[str], str], Set[str]] = {}
        functions: List[Tuple[Optional[str], ast.FunctionDef]] = []
        for statement in source.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append((None, statement))
        for node in class_nodes:
            for method in _class_methods(node):
                functions.append((node.name, method))

        def lock_id(
            owner: Optional[str], expr: ast.expr
        ) -> Optional[str]:
            attr = _self_attr(expr)
            if attr is not None and owner is not None:
                if attr in models[owner].locks:
                    return f"{owner}.{attr}"
                return None
            if isinstance(expr, ast.Name) and expr.id in mod_locks:
                return f"<module>.{expr.id}"
            return None

        for owner, function in functions:
            ids: Set[str] = set()
            for inner in ast.walk(function):
                if isinstance(inner, (ast.With, ast.AsyncWith)):
                    for item in inner.items:
                        identifier = lock_id(owner, item.context_expr)
                        if identifier is not None:
                            ids.add(identifier)
            acquires[(owner, function.name)] = ids

        # Transitive closure over self-calls / module-function calls.
        changed = True
        while changed:
            changed = False
            for owner, function in functions:
                key = (owner, function.name)
                for inner in ast.walk(function):
                    if not isinstance(inner, ast.Call):
                        continue
                    callee: Optional[Tuple[Optional[str], str]] = None
                    func = inner.func
                    if (
                        isinstance(func, ast.Attribute)
                        and _self_attr(func) is not None
                        and owner is not None
                    ):
                        callee = (owner, func.attr)
                    elif isinstance(func, ast.Name):
                        callee = (None, func.id)
                    if callee is None or callee not in acquires:
                        continue
                    merged = acquires[key] | acquires[callee]
                    if merged != acquires[key]:
                        acquires[key] = merged
                        changed = True

        edges: Dict[Tuple[str, str], _LockEdge] = {}
        self_deadlocks: List[Tuple[str, ast.AST]] = []

        def record(src: str, dst: str, node: ast.AST) -> None:
            if src == dst:
                if kinds.get(src) == "Lock":
                    self_deadlocks.append((src, node))
                return
            edges.setdefault((src, dst), _LockEdge(src, dst, node))

        def walk(
            owner: Optional[str],
            body: Sequence[ast.stmt],
            held: Tuple[str, ...],
        ) -> None:
            for statement in body:
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    inner_held = held
                    for item in statement.items:
                        identifier = lock_id(owner, item.context_expr)
                        if identifier is None:
                            continue
                        for held_id in inner_held:
                            record(held_id, identifier, item.context_expr)
                        inner_held = inner_held + (identifier,)
                    walk(owner, statement.body, inner_held)
                    continue
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    walk(owner, statement.body, ())
                    continue
                if held:
                    for inner in ast.walk(statement):
                        if not isinstance(inner, ast.Call):
                            continue
                        func = inner.func
                        callee = None
                        if (
                            isinstance(func, ast.Attribute)
                            and _self_attr(func) is not None
                            and owner is not None
                        ):
                            callee = (owner, func.attr)
                        elif isinstance(func, ast.Name):
                            callee = (None, func.id)
                        if callee is None:
                            continue
                        for acquired in sorted(acquires.get(callee, ())):
                            for held_id in held:
                                record(held_id, acquired, inner)
                for child_body in (
                    getattr(statement, "body", None),
                    getattr(statement, "orelse", None),
                    getattr(statement, "finalbody", None),
                ):
                    if isinstance(child_body, list):
                        walk(owner, child_body, held)
                for handler in getattr(statement, "handlers", []) or []:
                    walk(owner, handler.body, held)

        for owner, function in functions:
            walk(owner, function.body, ())

        for identifier, node in self_deadlocks:
            yield self.violation(
                source,
                node,
                f"non-reentrant {identifier} acquired while already held "
                "on this path: guaranteed self-deadlock (use an RLock or "
                "restructure)",
            )

        # Cycle detection over the recorded edges.
        graph: Dict[str, List[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        reported: Set[FrozenSet[str]] = set()
        for start in sorted(graph):
            cycle = _find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            witness = edges[(cycle[0], cycle[1])]
            chain = " -> ".join(cycle + [cycle[0]])
            yield self.violation(
                source,
                witness.node,
                f"inconsistent lock order: {chain} forms a cycle — two "
                "threads taking opposite ends deadlock; pick one global "
                "order and restructure the odd path out",
            )


def _find_cycle(
    graph: Dict[str, List[str]], start: str
) -> Optional[List[str]]:
    """A cycle reachable from ``start`` as an ordered node list."""
    path: List[str] = []
    on_path: Set[str] = set()
    visited: Set[str] = set()

    def dfs(node: str) -> Optional[List[str]]:
        path.append(node)
        on_path.add(node)
        for neighbor in sorted(graph.get(node, [])):
            if neighbor in on_path:
                return path[path.index(neighbor):]
            if neighbor not in visited:
                found = dfs(neighbor)
                if found is not None:
                    return found
        on_path.discard(node)
        visited.add(node)
        path.pop()
        return None

    return dfs(start)


class EscapingGuardedStateRule(_ConcurrencyRule):
    """TA013 — guarded mutable containers never escape by reference.

    ``return self._entries`` hands a caller the very object the lock
    guards: every later iteration or mutation happens outside any
    lock, unseen by TA011 (the access is through the alias).  Return a
    copy — ``list(...)``, ``dict(...)``, ``.copy()`` — instead; the
    copy is consistent because it is built under the lock.
    """

    code = "TA013"
    name = "escaping-guarded-state"
    description = (
        "methods must not return/yield a lock-guarded mutable container "
        "by reference; snapshot it (list()/dict()/.copy()) first"
    )

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = _build_model(source, node)
            escaping = {
                attr for attr in model.guarded
                if attr in model.mutable_attrs
            }
            if not escaping:
                continue
            for method in _class_methods(node):
                for inner in ast.walk(method):
                    value: Optional[ast.expr] = None
                    if isinstance(inner, ast.Return):
                        value = inner.value
                        verb = "returns"
                    elif isinstance(inner, ast.Yield):
                        value = inner.value
                        verb = "yields"
                    else:
                        continue
                    if value is None:
                        continue
                    attr = _self_attr(value)
                    if attr in escaping:
                        yield self.violation(
                            source,
                            inner,
                            f"{node.name}.{method.name}() {verb} guarded "
                            f"container self.{attr} by reference — every "
                            "use after return is an unlocked access; "
                            "return a copy built under the lock",
                        )


class BlockingCallUnderLockRule(_ConcurrencyRule):
    """TA014 — no blocking calls while holding a lock.

    A sleep, socket operation, file open, or pool-future wait inside a
    ``with <lock>:`` block turns every other thread that needs the lock
    into a queue behind that latency — and a future-wait under a lock
    the worker also needs is a deadlock.  Applies to every with-target
    that is a known lock or whose name ends in ``lock``.
    """

    code = "TA014"
    name = "blocking-call-under-lock"
    description = (
        "no sleep/socket/file-open/pool-wait calls inside a "
        "'with <lock>:' block; do the slow work outside"
    )

    @staticmethod
    def _lockish(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id.lower().endswith("lock"):
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr.lower().endswith(
            "lock"
        ):
            return expr.attr
        return None

    @classmethod
    def _blocking(cls, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_NAME_CALLS:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_ATTR_CALLS:
                return f".{func.attr}()"
            if func.attr == "get" and any(
                keyword.arg in ("timeout", "block")
                for keyword in call.keywords
            ):
                return ".get(timeout=...)"
        return None

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        def walk(body: Sequence[ast.stmt], lock: Optional[str]) -> Iterator[Violation]:
            for statement in body:
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    inner_lock = lock
                    for item in statement.items:
                        name = self._lockish(item.context_expr)
                        if name is not None:
                            inner_lock = name
                    yield from walk(statement.body, inner_lock)
                    continue
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from walk(statement.body, None)
                    continue
                if lock is not None:
                    for inner in ast.walk(statement):
                        if isinstance(inner, ast.Call):
                            blocking = self._blocking(inner)
                            if blocking is not None:
                                yield self.violation(
                                    source,
                                    inner,
                                    f"blocking call {blocking} while "
                                    f"holding {lock}; every contending "
                                    "thread now waits on this latency — "
                                    "move the slow work outside the lock",
                                )
                for child_body in (
                    getattr(statement, "body", None),
                    getattr(statement, "orelse", None),
                    getattr(statement, "finalbody", None),
                ):
                    if isinstance(child_body, list):
                        yield from walk(child_body, lock)
                for handler in getattr(statement, "handlers", []) or []:
                    yield from walk(handler.body, lock)

        yield from walk(source.tree.body, None)


class LockPerCallRule(_ConcurrencyRule):
    """TA015 — locks are per-instance (or module-level), never per-call.

    ``threading.Lock()`` constructed inside a function body makes a
    fresh lock every invocation: each caller acquires its own private
    lock and excludes nobody.  Locks belong in ``__init__`` (one per
    instance) or at module scope (one per process).
    """

    code = "TA015"
    name = "per-call-lock"
    description = (
        "threading.Lock/RLock/Condition/Semaphore must be created in "
        "__init__ or at module scope, not inside a function body"
    )

    @staticmethod
    def _is_lock_factory(call: ast.Call) -> Optional[str]:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id == "threading":
            name = func.attr
        return name if name in _PER_CALL_LOCK_FACTORIES else None

    @staticmethod
    def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
        """Calls in the function body, excluding nested def subtrees
        (those are visited on their own walk)."""
        stack: List[ast.AST] = list(
            getattr(function, "body", [])
        )
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, source: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                continue
            for call in self._own_calls(node):
                factory = self._is_lock_factory(call)
                if factory is not None:
                    yield self.violation(
                        source,
                        call,
                        f"threading.{factory}() constructed inside "
                        f"{node.name}(): a fresh per-call lock "
                        "excludes nobody — create it in __init__ "
                        "or at module scope",
                    )
