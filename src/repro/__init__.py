"""repro — a reproduction of Kline & Snodgrass, *Computing Temporal
Aggregates* (ICDE 1995).

The library computes aggregates (COUNT, SUM, MIN, MAX, AVG, ...) over
interval-timestamped relations, grouped by instant: the result is the
sequence of *constant intervals* over which the aggregate value does
not change.  Three single-scan algorithms from the paper are provided —
the linked list, the aggregation tree, and the k-ordered aggregation
tree with garbage collection — plus the two-scan Tuma baseline, a
balanced-tree ablation, the Section 5.2 sortedness metrics, the
Section 6.3 planner, a TSQL2-flavoured query front end, a paged storage
substrate, and the full Section 6 benchmark workloads.

Quick start::

    from repro import employed_relation, temporal_aggregate

    employed = employed_relation()
    result = temporal_aggregate(employed, "count")
    print(result.pretty())
"""

from repro.core import (
    AGGREGATES,
    FOREVER,
    ORIGIN,
    STRATEGIES,
    Aggregate,
    AggregationTreeEvaluator,
    AvgAggregate,
    BalancedTreeEvaluator,
    Calendar,
    ConstantInterval,
    ColumnarSweepEvaluator,
    CountAggregate,
    Evaluator,
    GroupedResult,
    Interval,
    InvalidIntervalError,
    KOrderViolationError,
    KOrderedTreeEvaluator,
    LinkedListEvaluator,
    MaxAggregate,
    MinAggregate,
    PagedAggregationTreeEvaluator,
    ParallelSweepEvaluator,
    PlannerDecision,
    ReferenceEvaluator,
    ResultIntegrityError,
    SumAggregate,
    SweepEvaluator,
    TemporalAggregateIndex,
    TemporalAggregateResult,
    TwoPassEvaluator,
    UnknownAggregateError,
    UnknownStrategyError,
    calendar_span_aggregate,
    choose_strategy,
    evaluate_triples,
    get_aggregate,
    grouped_temporal_aggregate,
    is_k_ordered,
    k_ordered_percentage,
    k_orderedness,
    make_evaluator,
    merge_results,
    moving_window_aggregate,
    partitioned_aggregate,
    span_aggregate,
    temporal_aggregate,
)
from repro.exec import (
    BudgetExhausted,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    InvalidInput,
    MemoryGuard,
    RetryPolicy,
    ShardFailure,
    ShardFault,
    SupervisionReport,
    TemporalAggregateError,
    clear_fault_plan,
    current_fault_plan,
    fault_plan,
    install_fault_plan,
)
from repro.metrics import NODE_OVERHEAD_BYTES, OperationCounters, SpaceTracker
from repro.relation import (
    EMPLOYED_SCHEMA,
    Attribute,
    RelationStatistics,
    Schema,
    SchemaError,
    TemporalRelation,
    TemporalTuple,
    coalesce_relation,
)
from repro.workload import (
    WorkloadParameters,
    disorder_relation,
    employed_relation,
    generate_relation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # time model
    "ORIGIN",
    "FOREVER",
    "Interval",
    "InvalidIntervalError",
    # aggregates
    "AGGREGATES",
    "Aggregate",
    "CountAggregate",
    "SumAggregate",
    "MinAggregate",
    "MaxAggregate",
    "AvgAggregate",
    "UnknownAggregateError",
    "get_aggregate",
    # relations
    "Attribute",
    "Schema",
    "SchemaError",
    "EMPLOYED_SCHEMA",
    "TemporalTuple",
    "TemporalRelation",
    "RelationStatistics",
    "coalesce_relation",
    # results
    "ConstantInterval",
    "TemporalAggregateResult",
    "ResultIntegrityError",
    # algorithms and engine
    "Evaluator",
    "GroupedResult",
    "LinkedListEvaluator",
    "AggregationTreeEvaluator",
    "KOrderedTreeEvaluator",
    "KOrderViolationError",
    "BalancedTreeEvaluator",
    "PagedAggregationTreeEvaluator",
    "SweepEvaluator",
    "ColumnarSweepEvaluator",
    "ParallelSweepEvaluator",
    "TwoPassEvaluator",
    "ReferenceEvaluator",
    "TemporalAggregateIndex",
    "Calendar",
    "calendar_span_aggregate",
    "moving_window_aggregate",
    "merge_results",
    "partitioned_aggregate",
    "STRATEGIES",
    "UnknownStrategyError",
    "make_evaluator",
    "evaluate_triples",
    "temporal_aggregate",
    "grouped_temporal_aggregate",
    "span_aggregate",
    # planner
    "PlannerDecision",
    "choose_strategy",
    # ordering metrics
    "k_orderedness",
    "is_k_ordered",
    "k_ordered_percentage",
    # resilient execution
    "TemporalAggregateError",
    "ShardFailure",
    "DeadlineExceeded",
    "BudgetExhausted",
    "InvalidInput",
    "Deadline",
    "MemoryGuard",
    "RetryPolicy",
    "SupervisionReport",
    "FaultPlan",
    "ShardFault",
    "install_fault_plan",
    "clear_fault_plan",
    "current_fault_plan",
    "fault_plan",
    # instrumentation
    "OperationCounters",
    "SpaceTracker",
    "NODE_OVERHEAD_BYTES",
    # workloads
    "WorkloadParameters",
    "generate_relation",
    "disorder_relation",
    "employed_relation",
]
