"""Dependency-free ASCII log-log plots for bench reports.

The paper presents its results as log-log graphs ("please be sure to
note that the results are log-log graphs", Section 6).  This module
renders a :class:`~repro.bench.reporting.Report` whose first column is
the x axis (tuple counts) and whose remaining columns are series, as an
ASCII scatter on log-log axes — enough to eyeball slopes and crossovers
straight from a terminal, with no plotting dependencies.

>>> print(ascii_loglog(figure6()[0]))
"""

from __future__ import annotations

import math
from typing import Optional

from repro.bench.reporting import Report

__all__ = ["ascii_loglog"]

#: Marker characters assigned to series in column order.
_MARKERS = "ox+*#@%&"


def _numeric(value) -> Optional[float]:
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def ascii_loglog(
    report: Report, width: int = 64, height: int = 20, title: Optional[str] = None
) -> str:
    """Render a report as an ASCII log-log scatter plot.

    The first column supplies x values; every other column is one
    series.  Non-positive or non-numeric cells (the "-" capped cells)
    are skipped.  Returns a multi-line string including a legend.
    """
    if width < 16 or height < 6:
        raise ValueError("plot area too small to be legible")
    series_names = list(report.columns[1:])
    points = []  # (x, y, marker_index)
    for row in report.rows:
        x = _numeric(row[0])
        if x is None:
            continue
        for index, value in enumerate(row[1:]):
            y = _numeric(value)
            if y is not None:
                points.append((x, y, index))
    if not points:
        return f"(no plottable points in {report.title!r})"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    log_x_low, log_x_high = math.log10(min(xs)), math.log10(max(xs))
    log_y_low, log_y_high = math.log10(min(ys)), math.log10(max(ys))
    x_span = max(log_x_high - log_x_low, 1e-9)
    y_span = max(log_y_high - log_y_low, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        column = round((math.log10(x) - log_x_low) / x_span * (width - 1))
        row_position = round((math.log10(y) - log_y_low) / y_span * (height - 1))
        marker = _MARKERS[index % len(_MARKERS)]
        cell = grid[height - 1 - row_position][column]
        # Collisions render as '?' so overplotting is visible.
        grid[height - 1 - row_position][column] = (
            marker if cell in (" ", marker) else "?"
        )

    def _label(value: float) -> str:
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.3g}"
        return f"{value:.2g}"

    lines = [f"== {title or report.title} (log-log) =="]
    top_label = _label(10**log_y_high)
    bottom_label = _label(10**log_y_low)
    for row_index, cells in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_label:>10} |"
        elif row_index == height - 1:
            prefix = f"{bottom_label:>10} |"
        else:
            prefix = f"{'':>10} |"
        lines.append(prefix + "".join(cells))
    lines.append(f"{'':>10} +" + "-" * width)
    lines.append(
        f"{'':>12}{_label(10 ** log_x_low)}"
        + " " * max(1, width - 20)
        + _label(10**log_x_high)
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series_names)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
