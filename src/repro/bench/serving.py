"""Serving benchmark: concurrent clients against a live query server.

Post-paper driver (see :mod:`repro.serve`).  For each relation size of
the Table 3 grid it starts a real :class:`~repro.serve.QueryServer` on
a loopback socket, aims a fixed fleet of blocking clients at it — each
issuing the paper's five aggregates round-robin — and reports serving
throughput (queries per second) and client-observed latency quantiles
(p50/p99).  A warmup pass populates the shared shard-result cache the
way a long-running server would be warm, so the steady-state numbers
measure the serving stack (framing, admission, scheduling, snapshot
pinning, cache hits), not repeated cold sweeps.  One append-then-query
round per size measures the cross-version delta-refresh tail a mixed
read/write workload sees.

Run from the command line::

    python -m repro.bench serving
    REPRO_BENCH_MAX_TUPLES=65536 python -m repro.bench serving
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.bench.config import bench_seeds, bench_sizes
from repro.bench.reporting import Report
from repro.workload.generator import WorkloadParameters, generate_relation

__all__ = ["serving", "SERVING_DETAIL", "CLIENTS", "ROUNDS_PER_CLIENT"]

#: Concurrent client connections per measured size.
CLIENTS = 8

#: Queries each client issues during the measured window.
ROUNDS_PER_CLIENT = 6

#: Machine-readable cells for ``BENCH_serving.json`` (filled by the
#: driver on each run, read by the JSON writer in ``__main__``).
SERVING_DETAIL: Dict[str, object] = {"cells": [], "note": ""}

_TABLE = "employed"
_TEXTS = (
    f"SELECT COUNT(name) FROM {_TABLE}",
    f"SELECT SUM(salary) FROM {_TABLE}",
    f"SELECT MIN(salary) FROM {_TABLE}",
    f"SELECT MAX(salary) FROM {_TABLE}",
    f"SELECT AVG(salary) FROM {_TABLE}",
)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(fraction * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _client_worker(
    host: str,
    port: int,
    barrier: threading.Barrier,
    latencies: List[float],
    degraded: List[int],
    errors: List[BaseException],
) -> None:
    from repro.serve import QueryClient

    try:
        with QueryClient(host, port) as client:
            barrier.wait(timeout=60.0)
            for round_index in range(ROUNDS_PER_CLIENT):
                text = _TEXTS[round_index % len(_TEXTS)]
                started = perf_counter()
                reply = client.query(text)
                latencies.append(perf_counter() - started)
                degraded.append(reply.degraded)
    except BaseException as error:  # surfaced by the driver
        errors.append(error)
        try:
            barrier.abort()
        except Exception:
            pass


def _measure_size(n: int, seed: int) -> Dict[str, float]:
    from repro.serve import QueryClient, QueryServer, ServerConfig, ServerRunner

    relation = generate_relation(
        WorkloadParameters(tuples=n, seed=seed), name=_TABLE
    )
    # Full-service steady state: one worker per client and the ladder
    # lifted above the fleet's peak load, so the numbers measure the
    # serving stack (framing, scheduling, snapshots, cache hits) rather
    # than the degradation path — overload behavior has its own tests.
    server = QueryServer(ServerConfig(
        workers=CLIENTS,
        max_sessions=CLIENTS + 4,
        shed_load=2.0,
        degrade_load=3.0,
        reject_load=4.0,
    ))
    server.register(relation, name=_TABLE)
    runner = ServerRunner(server)
    runner.start()
    try:
        # Warmup: each statement twice, so the planner observes the
        # repeat and the shared cache holds every aggregate's shards.
        with QueryClient(runner.host, runner.port) as warmer:
            for text in _TEXTS:
                warmer.query(text)
                warmer.query(text)

        barrier = threading.Barrier(CLIENTS)
        latencies: List[float] = []
        degraded: List[int] = []
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(runner.host, runner.port, barrier, latencies,
                      degraded, errors),
            )
            for _ in range(CLIENTS)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600.0)
        wall = perf_counter() - started
        if errors:
            raise errors[0]

        # The mixed-workload tail: one append, then the first query at
        # the new version pays the cross-version delta refresh.
        with QueryClient(runner.host, runner.port) as writer:
            writer.append(_TABLE, [["Nick", 50_000, 0, max(2, n // 64)]])
            refresh_started = perf_counter()
            writer.query(_TEXTS[1])
            refresh = perf_counter() - refresh_started
    finally:
        runner.stop()

    ordered = sorted(latencies)
    return {
        "requests": float(len(latencies)),
        "qps": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": (ordered[-1] if ordered else 0.0) * 1000.0,
        "degraded_statements": float(sum(1 for d in degraded if d > 0)),
        "append_refresh_ms": refresh * 1000.0,
    }


def serving(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Throughput and latency quantiles of the concurrent query server.

    ``CLIENTS`` concurrent sessions each issue ``ROUNDS_PER_CLIENT``
    statements round-robin over COUNT/SUM/MIN/MAX/AVG against a
    cache-warm server; qps counts completed statements over the
    fleet's wall-clock, latencies are client-observed per statement.
    """
    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()

    report = Report(
        f"Serving — {CLIENTS} concurrent clients, warm cache, "
        "COUNT/SUM/MIN/MAX/AVG round-robin",
        [
            "tuples",
            "requests",
            "qps",
            "p50 (ms)",
            "p99 (ms)",
            "max (ms)",
            "degraded",
            "append refresh (ms)",
        ],
    )
    cells: List[Dict[str, float]] = []
    for n in sizes:
        samples = [_measure_size(n, seed) for seed in seeds]

        def _mean(key: str) -> float:
            return sum(sample[key] for sample in samples) / len(samples)

        cell = {key: _mean(key) for key in samples[0]}
        cell["tuples"] = float(n)
        cell["clients"] = float(CLIENTS)
        cells.append(cell)
        report.add_row(
            n,
            int(cell["requests"]),
            round(cell["qps"], 1),
            round(cell["p50_ms"], 3),
            round(cell["p99_ms"], 3),
            round(cell["max_ms"], 3),
            int(cell["degraded_statements"]),
            round(cell["append_refresh_ms"], 3),
        )
    note = (
        f"seeds={seeds}; {CLIENTS} clients x {ROUNDS_PER_CLIENT} statements "
        "after a two-pass warmup (planner observes the repeat, shared "
        "cache holds every aggregate); p99 is nearest-rank over the "
        "fleet's client-observed latencies; append refresh = first SUM "
        "after a one-row append (cross-version delta re-sweep)"
    )
    report.add_note(note)
    SERVING_DETAIL["cells"] = cells
    SERVING_DETAIL["note"] = note
    return [report]
