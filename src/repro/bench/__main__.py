"""Command-line entry point for the benchmark harness.

Usage::

    python -m repro.bench fig6 table2        # run selected drivers
    python -m repro.bench all                # the full evaluation
    python -m repro.bench all --markdown     # Markdown output
    python -m repro.bench fig9 --csv-dir out # also write CSV files

Environment knobs are documented in :mod:`repro.bench.config`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.figures import DRIVERS

__all__ = ["main"]


def _write_parallel_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``parallel`` driver.

    Written next to the CSVs (or the working directory) so CI and the
    acceptance checks can read the numbers without scraping tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.core.parallel import POOL_MIN_TUPLES
    from repro.core.partition import available_workers

    payload = {
        "generated_by": "python -m repro.bench parallel",
        "cpu_count": os.cpu_count(),
        "available_workers": available_workers(),
        "pool_min_tuples": POOL_MIN_TUPLES,
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_cache_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``cache`` driver.

    Cold/warm latencies, the warm-speedup ratio, and the dirty-shard
    fractions land here so the acceptance checks can assert the ≥10x
    warm criterion and the delta-only re-sweep without scraping tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.cache.store import DEFAULT_BUDGET_BYTES, ENV_BUDGET
    from repro.core.partition import available_workers

    payload = {
        "generated_by": "python -m repro.bench cache",
        "cpu_count": os.cpu_count(),
        "available_workers": available_workers(),
        "cache_budget_bytes": int(
            os.environ.get(ENV_BUDGET) or DEFAULT_BUDGET_BYTES
        ),
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_cache.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_durability_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``durability`` driver.

    Append-throughput overhead factors and recovery times land here so
    the acceptance check (journaled within 2x of plain at the largest
    size) reads numbers, not rendered tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.storage.journal import (
        _DEFAULT_SEGMENT_BYTES,
        _fsync_policy_from_env,
        _segment_bytes_from_env,
    )

    payload = {
        "generated_by": "python -m repro.bench durability",
        "cpu_count": os.cpu_count(),
        "fsync_policy": _fsync_policy_from_env(),
        "segment_bytes": _segment_bytes_from_env(),
        "default_segment_bytes": _DEFAULT_SEGMENT_BYTES,
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_durability.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_columnar_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``columnar`` driver.

    Per-(aggregate, size) cells carry the end-to-end seconds, the
    speedup over the object path, and the counter proof (zero columnar
    tuple materializations, positive page-batch counts), so the ≥2x
    acceptance check reads numbers, not rendered tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.bench.figures import COLUMNAR_DETAIL
    from repro.core.columnar_sweep import COLUMN_BACKEND_ENV
    from repro.core.partition import available_workers

    payload = {
        "generated_by": "python -m repro.bench columnar",
        "cpu_count": os.cpu_count(),
        "available_workers": available_workers(),
        "column_backend": os.environ.get(COLUMN_BACKEND_ENV, "python"),
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "cells": COLUMNAR_DETAIL.get("cells", []),
        "note": COLUMNAR_DETAIL.get("note", ""),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_columnar.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_serving_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``serving`` driver.

    Per-size qps and client-observed p50/p99 land here so the
    acceptance check (serving numbers at the paper's 64K grid) reads
    numbers, not rendered tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.bench.serving import CLIENTS, ROUNDS_PER_CLIENT, SERVING_DETAIL
    from repro.serve.config import ServerConfig

    defaults = ServerConfig()
    payload = {
        "generated_by": "python -m repro.bench serving",
        "cpu_count": os.cpu_count(),
        "clients": CLIENTS,
        "rounds_per_client": ROUNDS_PER_CLIENT,
        "workers": defaults.workers,
        "ladder": {
            "shed_load": defaults.shed_load,
            "degrade_load": defaults.degrade_load,
            "reject_load": defaults.reject_load,
        },
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "cells": SERVING_DETAIL.get("cells", []),
        "note": SERVING_DETAIL.get("note", ""),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_serving.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_pool_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``pool`` driver.

    Per-size qps with the coalescing and fork-once counter proofs land
    here so the acceptance check (coalesced serving throughput at the
    64K grid vs the ``serving`` baseline) reads numbers, not rendered
    tables.
    """
    from repro.bench.config import bench_seeds, bench_sizes
    from repro.bench.pool import (
        CLIENTS,
        POOL_DETAIL,
        ROUNDS_PER_CLIENT,
        _resolved_pool_workers,
    )
    from repro.exec.pool import pool_min_tuples

    payload = {
        "generated_by": "python -m repro.bench pool",
        "cpu_count": os.cpu_count(),
        "clients": CLIENTS,
        "rounds_per_client": ROUNDS_PER_CLIENT,
        "pool_workers": _resolved_pool_workers(),
        "pool_min_tuples": pool_min_tuples(),
        "env": {
            "REPRO_POOL_MIN_TUPLES": os.environ.get("REPRO_POOL_MIN_TUPLES"),
            "REPRO_POOL_WORKERS": os.environ.get("REPRO_POOL_WORKERS"),
        },
        "sizes": bench_sizes(),
        "seeds": bench_seeds(),
        "cells": POOL_DETAIL.get("cells", []),
        "note": POOL_DETAIL.get("note", ""),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_pool.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _write_replication_json(reports, csv_dir) -> str:
    """Machine-readable artifact for the ``replication`` driver.

    Shipping overhead, catch-up rows/s, failover-to-first-answer, and
    the 1-to-2 replica read scaling land here so the acceptance check
    reads numbers, not rendered tables.
    """
    from repro.bench.replication import (
        APPEND_BATCHES,
        CATCHUP_ROWS,
        READ_CLIENTS,
        READ_ROUNDS,
        REPLICATION_DETAIL,
        ROWS_PER_BATCH,
    )

    payload = {
        "generated_by": "python -m repro.bench replication",
        "cpu_count": os.cpu_count(),
        "append_batches": APPEND_BATCHES,
        "rows_per_batch": ROWS_PER_BATCH,
        "catchup_rows": CATCHUP_ROWS,
        "read_clients": READ_CLIENTS,
        "read_rounds": READ_ROUNDS,
        "cells": REPLICATION_DETAIL.get("cells", []),
        "note": REPLICATION_DETAIL.get("note", ""),
        "reports": [report.to_dict() for report in reports],
    }
    path = os.path.join(csv_dir or ".", "BENCH_replication.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of Kline & Snodgrass 1995.",
    )
    parser.add_argument(
        "drivers",
        nargs="+",
        help=f"drivers to run: {', '.join(sorted(DRIVERS))}, or 'all'",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render Markdown instead of text"
    )
    parser.add_argument(
        "--csv-dir", default=None, help="also write one CSV per report here"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render each figure report as an ASCII log-log plot",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each driver under cProfile and print the top 20 "
        "functions by cumulative time",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="resident pool size for the 'pool' driver (default: "
        "REPRO_POOL_WORKERS or the machine's available workers)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="concurrent client connections for the 'pool' driver "
        "(default: %(default)s -> driver default)",
    )
    args = parser.parse_args(argv)

    if args.workers is not None or args.clients is not None:
        import repro.bench.pool as pool_module

        if args.workers is not None:
            if args.workers < 1:
                parser.error("--workers must be at least 1")
            pool_module.POOL_WORKERS = args.workers
        if args.clients is not None:
            if args.clients < 1:
                parser.error("--clients must be at least 1")
            pool_module.CLIENTS = args.clients

    names = sorted(DRIVERS) if "all" in args.drivers else args.drivers
    unknown = [name for name in names if name not in DRIVERS]
    if unknown:
        parser.error(f"unknown drivers: {', '.join(unknown)}")

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for name in names:
        started = time.perf_counter()
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            reports = profiler.runcall(DRIVERS[name])
            stats = pstats.Stats(profiler, stream=sys.stderr)
            print(f"[profile: {name}, top 20 by cumulative time]", file=sys.stderr)
            stats.sort_stats("cumulative").print_stats(20)
        else:
            reports = DRIVERS[name]()
        elapsed = time.perf_counter() - started
        for index, report in enumerate(reports):
            if args.markdown:
                print(report.render_markdown())
            else:
                print(report.render_text())
            if args.csv_dir:
                suffix = "" if len(reports) == 1 else f"_{index}"
                path = os.path.join(args.csv_dir, f"{name}{suffix}.csv")
                with open(path, "w") as handle:
                    handle.write(report.render_csv())
            if args.plot and name.startswith("fig"):
                from repro.bench.plotting import ascii_loglog

                print(ascii_loglog(report))
            print()
        if name == "parallel":
            path = _write_parallel_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "cache":
            path = _write_cache_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "columnar":
            path = _write_columnar_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "durability":
            path = _write_durability_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "serving":
            path = _write_serving_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "pool":
            path = _write_pool_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        elif name == "replication":
            path = _write_replication_json(reports, args.csv_dir)
            print(f"[wrote {path}]", file=sys.stderr)
        print(f"[{name} completed in {elapsed:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
