"""Command-line entry point for the benchmark harness.

Usage::

    python -m repro.bench fig6 table2        # run selected drivers
    python -m repro.bench all                # the full evaluation
    python -m repro.bench all --markdown     # Markdown output
    python -m repro.bench fig9 --csv-dir out # also write CSV files

Environment knobs are documented in :mod:`repro.bench.config`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.figures import DRIVERS

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of Kline & Snodgrass 1995.",
    )
    parser.add_argument(
        "drivers",
        nargs="+",
        help=f"drivers to run: {', '.join(sorted(DRIVERS))}, or 'all'",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render Markdown instead of text"
    )
    parser.add_argument(
        "--csv-dir", default=None, help="also write one CSV per report here"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render each figure report as an ASCII log-log plot",
    )
    args = parser.parse_args(argv)

    names = sorted(DRIVERS) if "all" in args.drivers else args.drivers
    unknown = [name for name in names if name not in DRIVERS]
    if unknown:
        parser.error(f"unknown drivers: {', '.join(unknown)}")

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for name in names:
        started = time.perf_counter()
        reports = DRIVERS[name]()
        elapsed = time.perf_counter() - started
        for index, report in enumerate(reports):
            if args.markdown:
                print(report.render_markdown())
            else:
                print(report.render_text())
            if args.csv_dir:
                suffix = "" if len(reports) == 1 else f"_{index}"
                path = os.path.join(args.csv_dir, f"{name}{suffix}.csv")
                with open(path, "w") as handle:
                    handle.write(report.render_csv())
            if args.plot and name.startswith("fig"):
                from repro.bench.plotting import ascii_loglog

                print(ascii_loglog(report))
            print()
        print(f"[{name} completed in {elapsed:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
