"""Replication benchmark: shipping overhead, catch-up, and failover.

Post-paper driver (see :mod:`repro.replicate`).  Four measurements,
all over real loopback sockets with in-process nodes:

* **Append throughput** with zero vs one synchronous replica — the
  price of the zero acknowledged-loss guarantee (one shipping round
  trip inside every acknowledged append).
* **Catch-up sync** — a replica attached after the primary already
  holds history; the connect-time ``rep.sync`` streams the whole heap,
  and the rows-per-second of that stream is the rebuild speed.
* **Failover time-to-first-answer** — stop the primary, promote the
  replica, and measure from the promotion request to the first
  successful tokened read on the survivor.
* **Read scaling** — a fixed client fleet issuing the paper's five
  aggregates round-robin against one replica, then spread over two.

Journals run ``fsync=never`` here so the numbers isolate the shipping
protocol, not the disk (the ``durability`` driver owns fsync costs).

Run from the command line::

    python -m repro.bench replication
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from time import perf_counter
from typing import Dict, List, Optional

from repro.bench.reporting import Report
from repro.relation.schema import EMPLOYED_SCHEMA

__all__ = [
    "replication",
    "REPLICATION_DETAIL",
    "APPEND_BATCHES",
    "ROWS_PER_BATCH",
    "CATCHUP_ROWS",
    "READ_CLIENTS",
    "READ_ROUNDS",
]

#: Acknowledged appends per throughput series.
APPEND_BATCHES = 120

#: Rows carried by each appended batch.
ROWS_PER_BATCH = 4

#: Heap rows pre-loaded before the late replica attaches.
CATCHUP_ROWS = 4096

#: Concurrent readers in the scaling measurement.
READ_CLIENTS = 4

#: Aggregate queries each reader issues per measured series.
READ_ROUNDS = 10

#: Machine-readable cells for ``BENCH_replication.json`` (filled by
#: the driver on each run, read by the JSON writer in ``__main__``).
REPLICATION_DETAIL: Dict[str, object] = {"cells": [], "note": ""}

_TEXTS = (
    "SELECT COUNT(name) FROM jobs",
    "SELECT SUM(salary) FROM jobs",
    "SELECT MIN(salary) FROM jobs",
    "SELECT MAX(salary) FROM jobs",
    "SELECT AVG(salary) FROM jobs",
)


def _start_node(data_dir: str, role: str, peers: Optional[List[str]] = None):
    from repro.serve.config import ServerConfig
    from repro.serve.server import ServerRunner
    from repro.replicate.node import ReplicationNode, TableSpec

    node = ReplicationNode(
        ServerConfig(port=0, role=role, workers=4),
        tables=[
            TableSpec("jobs", EMPLOYED_SCHEMA, os.path.join(data_dir, "jobs.heap"))
        ],
        peers=list(peers or []),
        fsync_policy="never",
    )
    runner = ServerRunner(node).start()
    return node, runner, f"{runner.host}:{runner.port}"


def _rows(base: int, count: int) -> List[List[object]]:
    return [
        [f"r{base + i}"[:8], 100 + (base + i) % 900, base + i, base + i + 25]
        for i in range(count)
    ]


def _append_series(endpoint: str, batches: int) -> float:
    """Acknowledged batches against ``endpoint``; returns rows/s."""
    from repro.serve.client import QueryClient

    host, _, port = endpoint.rpartition(":")
    with QueryClient(host, int(port)) as client:
        started = perf_counter()
        for i in range(batches):
            client.append("jobs", _rows(i * ROWS_PER_BATCH, ROWS_PER_BATCH))
        elapsed = perf_counter() - started
    return (batches * ROWS_PER_BATCH) / elapsed if elapsed > 0 else 0.0


def _measure_append_throughput(root: str, replicas: int) -> float:
    nodes = []
    try:
        peer_endpoints = []
        for index in range(replicas):
            rdir = os.path.join(root, f"replica{index}")
            os.makedirs(rdir, exist_ok=True)
            nodes.append(_start_node(rdir, "replica"))
            peer_endpoints.append(nodes[-1][2])
        pdir = os.path.join(root, "primary")
        os.makedirs(pdir, exist_ok=True)
        nodes.append(_start_node(pdir, "primary", peer_endpoints))
        return _append_series(nodes[-1][2], APPEND_BATCHES)
    finally:
        for _, runner, _ in reversed(nodes):
            runner.stop()


def _measure_catchup(root: str) -> float:
    """Rows/s of the connect-time sync into an empty late replica."""
    pdir = os.path.join(root, "primary")
    rdir = os.path.join(root, "replica")
    os.makedirs(pdir, exist_ok=True)
    os.makedirs(rdir, exist_ok=True)
    primary, primary_runner, primary_endpoint = _start_node(pdir, "primary")
    try:
        table = primary.tables["jobs"]
        batch = CATCHUP_ROWS // 8
        for i in range(8):
            triples = [
                (row[:2], row[2], row[3]) for row in _rows(i * batch, batch)
            ]
            primary._apply_append(table.served, triples, None)
        replica, replica_runner, replica_endpoint = _start_node(rdir, "replica")
        try:
            started = perf_counter()
            primary.attach_peer(replica_endpoint)
            elapsed = perf_counter() - started
            applied = replica.tables["jobs"].cursor()["applied_count"]
            if applied != len(table.heap):
                raise AssertionError(
                    f"catch-up incomplete: {applied} of {len(table.heap)} rows"
                )
            return applied / elapsed if elapsed > 0 else 0.0
        finally:
            replica_runner.stop()
    finally:
        primary_runner.stop()


def _measure_failover_ms(root: str) -> float:
    """Promotion request to first successful read, in milliseconds."""
    from repro.replicate.client import ReplicatedClient

    pdir = os.path.join(root, "primary")
    rdir = os.path.join(root, "replica")
    os.makedirs(pdir, exist_ok=True)
    os.makedirs(rdir, exist_ok=True)
    replica, replica_runner, replica_endpoint = _start_node(rdir, "replica")
    primary, primary_runner, primary_endpoint = _start_node(
        pdir, "primary", [replica_endpoint]
    )
    try:
        with ReplicatedClient(
            [primary_endpoint, replica_endpoint], client_id="bench-fo"
        ) as client:
            client.append("jobs", _rows(0, 8))
            primary_runner.stop()
            started = perf_counter()
            replica.promote()
            reply = client.query(_TEXTS[0], table="jobs")
            elapsed = perf_counter() - started
            if reply.pinned_version < 1:
                raise AssertionError("failover read missed the acked write")
        return elapsed * 1000.0
    finally:
        replica_runner.stop()
        if primary_runner._thread is not None and primary_runner._thread.is_alive():
            primary_runner.stop()


def _read_fleet(endpoints: List[str]) -> float:
    """Aggregate qps of READ_CLIENTS readers spread over ``endpoints``."""
    from repro.serve.client import QueryClient

    barrier = threading.Barrier(READ_CLIENTS + 1)
    errors: List[BaseException] = []

    def worker(index: int) -> None:
        endpoint = endpoints[index % len(endpoints)]
        host, _, port = endpoint.rpartition(":")
        try:
            with QueryClient(host, int(port)) as client:
                barrier.wait(timeout=60.0)
                for round_index in range(READ_ROUNDS):
                    client.query(_TEXTS[round_index % len(_TEXTS)])
        except BaseException as error:  # surfaced by the driver
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-read-{i}")
        for i in range(READ_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60.0)
    started = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    if errors:
        raise errors[0]
    return (READ_CLIENTS * READ_ROUNDS) / elapsed if elapsed > 0 else 0.0


def _measure_read_scaling(root: str) -> Dict[str, float]:
    nodes = []
    try:
        replica_endpoints = []
        for index in range(2):
            rdir = os.path.join(root, f"replica{index}")
            os.makedirs(rdir, exist_ok=True)
            nodes.append(_start_node(rdir, "replica"))
            replica_endpoints.append(nodes[-1][2])
        pdir = os.path.join(root, "primary")
        os.makedirs(pdir, exist_ok=True)
        nodes.append(_start_node(pdir, "primary", replica_endpoints))
        _append_series(nodes[-1][2], 16)
        one = _read_fleet(replica_endpoints[:1])
        two = _read_fleet(replica_endpoints)
        return {"one": one, "two": two}
    finally:
        for _, runner, _ in reversed(nodes):
            runner.stop()


def replication() -> List[Report]:
    """Run the four replication measurements and build the report."""
    report = Report(
        title="Replication: shipping overhead, catch-up, and failover",
        columns=["measurement", "value", "unit"],
    )
    cells: List[Dict[str, object]] = []
    root = tempfile.mkdtemp(prefix="repro-bench-repl-")
    try:
        solo = _measure_append_throughput(os.path.join(root, "solo"), 0)
        shipped = _measure_append_throughput(os.path.join(root, "one"), 1)
        overhead = solo / shipped if shipped > 0 else 0.0
        catchup = _measure_catchup(os.path.join(root, "catchup"))
        failover_ms = _measure_failover_ms(os.path.join(root, "failover"))
        scaling = _measure_read_scaling(os.path.join(root, "reads"))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    report.add_row("append rows/s, no replica", solo, "rows/s")
    report.add_row("append rows/s, 1 sync replica", shipped, "rows/s")
    report.add_row("shipping overhead factor", overhead, "x")
    report.add_row("replica catch-up sync", catchup, "rows/s")
    report.add_row("failover to first answer", failover_ms, "ms")
    report.add_row("read qps, 1 replica", scaling["one"], "qps")
    report.add_row("read qps, 2 replicas", scaling["two"], "qps")
    report.add_note(
        f"{APPEND_BATCHES} batches x {ROWS_PER_BATCH} rows per append "
        f"series; {CATCHUP_ROWS} rows pre-loaded for catch-up; "
        f"{READ_CLIENTS} readers x {READ_ROUNDS} aggregate queries per "
        "read series; journals at fsync=never (shipping cost only)"
    )
    report.add_note(
        "failover = explicit promote (rep.promote) plus one tokened "
        "read through the replicated client's rotation loop"
    )
    cells.append(
        {
            "append_rows_per_s_no_replica": solo,
            "append_rows_per_s_one_replica": shipped,
            "ship_overhead_factor": overhead,
            "catchup_rows_per_s": catchup,
            "catchup_rows": CATCHUP_ROWS,
            "failover_first_answer_ms": failover_ms,
            "read_qps_one_replica": scaling["one"],
            "read_qps_two_replicas": scaling["two"],
        }
    )
    REPLICATION_DETAIL["cells"] = cells
    REPLICATION_DETAIL["note"] = (
        "synchronous shipping: every acked append waited for the replica"
    )
    return [report]
