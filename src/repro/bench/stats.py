"""Multi-seed statistics for benchmark cells (paper Section 6).

"We ran each test several times with different random number seeds to
establish reliable results.  We do not show the error bars since 95%
confidence intervals never exceeded 10% of the indicated value on any
of the tests."  This module reproduces that methodology: given one
measurement per seed, it computes the mean, sample standard deviation
and the Student-t 95 % confidence interval, and can assert the paper's
≤ 10 % tightness criterion.

Self-contained (two-sided t critical values are tabulated for the
sample sizes a bench realistically uses; larger samples fall back to
the normal approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["SeriesStatistics", "summarize", "t_critical_95"]

#: Two-sided 95 % Student-t critical values by degrees of freedom.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95 % t critical value (normal approximation past the
    tabulated range)."""
    if degrees_of_freedom < 1:
        raise ValueError("need at least one degree of freedom")
    if degrees_of_freedom in _T_95:
        return _T_95[degrees_of_freedom]
    for tabulated in sorted(_T_95):
        if tabulated >= degrees_of_freedom:
            return _T_95[tabulated]
    return 1.96


@dataclass(frozen=True)
class SeriesStatistics:
    """Mean and 95 % confidence interval of one bench cell's samples."""

    samples: int
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def ci95_low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def ci95_high(self) -> float:
        return self.mean + self.ci95_half_width

    @property
    def relative_ci(self) -> float:
        """Half-width as a fraction of the mean (the paper's ≤ 10 %)."""
        if self.mean == 0:
            return 0.0 if self.ci95_half_width == 0 else math.inf
        return abs(self.ci95_half_width / self.mean)

    def within_paper_tolerance(self, fraction: float = 0.10) -> bool:
        """The Section 6 criterion: CI never exceeds 10 % of the value."""
        return self.relative_ci <= fraction

    def describe(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.ci95_half_width:.3g} "
            f"(95% CI, n={self.samples}, {self.relative_ci:.1%} of mean)"
        )


def summarize(samples: Sequence[float]) -> SeriesStatistics:
    """Mean / stdev / 95 % CI of one cell's per-seed measurements."""
    values: List[float] = [float(v) for v in samples]
    if not values:
        raise ValueError("cannot summarize zero samples")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return SeriesStatistics(samples=1, mean=mean, stdev=0.0, ci95_half_width=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    half_width = t_critical_95(n - 1) * stdev / math.sqrt(n)
    return SeriesStatistics(
        samples=n, mean=mean, stdev=stdev, ci95_half_width=half_width
    )
