"""Execution-backend benchmark: coalesced serving over the resident pool.

Post-paper driver for the persistent shared-memory execution backend
(:mod:`repro.exec.pool`) and the scheduler's single-flight coalescing
(:mod:`repro.serve.scheduler`).  The workload is the serving
benchmark's worst case made adversarial: every client in the fleet
issues the *same* statement at the same moment (a per-round barrier
keeps them overlapping), cycling through the paper's five aggregates
round by round.  Without coalescing each round costs ``clients``
evaluations and ``clients`` reply encodes; with it, one of each — the
qps ratio against ``BENCH_serving.json`` is the measured win.

The driver also proves the backend's hot-path shape from the server's
own stats frame: the resident pool forks exactly once per worker at
server start (``pool_forks == pool_workers`` after the whole run), and
every statement beyond each round's leader is tallied in
``coalesced_statements``.

Run from the command line::

    python -m repro.bench pool
    REPRO_BENCH_MAX_TUPLES=65536 python -m repro.bench pool
    python -m repro.bench pool --clients 4 --workers 2
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.bench.config import bench_seeds, bench_sizes
from repro.bench.reporting import Report
from repro.workload.generator import WorkloadParameters, generate_relation

__all__ = ["pool", "POOL_DETAIL", "CLIENTS", "ROUNDS_PER_CLIENT", "POOL_WORKERS"]

#: Concurrent client connections per measured size (overridable with
#: ``--clients`` on the CLI).
CLIENTS = 8

#: Barrier-synchronized rounds each client plays; round ``i`` issues
#: aggregate ``i mod 5``, identical across the fleet.
ROUNDS_PER_CLIENT = 10

#: Resident pool size for the measured server (None = the pool's own
#: default sizing; overridable with ``--workers`` on the CLI).
POOL_WORKERS: Optional[int] = None

#: Machine-readable cells for ``BENCH_pool.json`` (filled by the
#: driver on each run, read by the JSON writer in ``__main__``).
POOL_DETAIL: Dict[str, object] = {"cells": [], "note": ""}

_TABLE = "employed"
_TEXTS = (
    f"SELECT COUNT(name) FROM {_TABLE}",
    f"SELECT SUM(salary) FROM {_TABLE}",
    f"SELECT MIN(salary) FROM {_TABLE}",
    f"SELECT MAX(salary) FROM {_TABLE}",
    f"SELECT AVG(salary) FROM {_TABLE}",
)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(fraction * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _resolved_pool_workers() -> int:
    from repro.core.partition import available_workers
    from repro.exec.pool import pool_workers_from_env

    if POOL_WORKERS is not None:
        return POOL_WORKERS
    return pool_workers_from_env() or available_workers()


def _client_worker(
    host: str,
    port: int,
    barrier: threading.Barrier,
    latencies: List[float],
    row_counts: List[int],
    errors: List[BaseException],
) -> None:
    from repro.serve import QueryClient

    try:
        with QueryClient(host, port) as client:
            for round_index in range(ROUNDS_PER_CLIENT):
                # The barrier is what makes the statements *overlap*:
                # every client fires the identical text together, so
                # each round is one flight plus (clients - 1) joins.
                barrier.wait(timeout=120.0)
                text = _TEXTS[round_index % len(_TEXTS)]
                started = perf_counter()
                reply = client.query(text)
                latencies.append(perf_counter() - started)
                row_counts.append(len(reply.rows))
    except BaseException as error:  # surfaced by the driver
        errors.append(error)
        try:
            barrier.abort()
        except Exception:
            pass


def _measure_size(n: int, seed: int, clients: int) -> Dict[str, float]:
    from repro.serve import QueryClient, QueryServer, ServerConfig, ServerRunner

    relation = generate_relation(
        WorkloadParameters(tuples=n, seed=seed), name=_TABLE
    )
    pool_workers = _resolved_pool_workers()
    # The ladder sits far above the fleet's peak load: a degradation
    # level is part of the coalesce key (degraded and normal replies
    # must not be interchangeable), so measuring coalescing means
    # keeping the whole fleet at one level.
    server = QueryServer(ServerConfig(
        workers=clients,
        max_sessions=clients + 4,
        shed_load=100.0,
        degrade_load=100.0,
        reject_load=100.0,
        pool_workers=pool_workers,
    ))
    server.register(relation, name=_TABLE)
    runner = ServerRunner(server)
    runner.start()
    try:
        # Warmup exactly as the serving baseline: each statement twice,
        # so the planner observes the repeat and the shared cache holds
        # every aggregate's shards.
        with QueryClient(runner.host, runner.port) as warmer:
            for text in _TEXTS:
                warmer.query(text)
                warmer.query(text)

        barrier = threading.Barrier(clients)
        latencies: List[float] = []
        row_counts: List[int] = []
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(runner.host, runner.port, barrier,
                      latencies, row_counts, errors),
            )
            for _ in range(clients)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600.0)
        wall = perf_counter() - started
        if errors:
            raise errors[0]

        with QueryClient(runner.host, runner.port) as observer:
            stats = observer.stats()
    finally:
        runner.stop()

    ordered = sorted(latencies)
    scheduler_stats = stats["scheduler"]
    pool_stats = stats["pool"]
    return {
        "requests": float(len(latencies)),
        "qps": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": (ordered[-1] if ordered else 0.0) * 1000.0,
        "coalesced_statements": float(
            scheduler_stats["coalesced_statements"]
        ),
        "statements_started": float(scheduler_stats["statements_started"]),
        "pool_forks": float(pool_stats["forks"]),
        "pool_workers": float(pool_stats["workers"]),
        "result_rows_min": float(min(row_counts) if row_counts else 0),
        "result_rows_max": float(max(row_counts) if row_counts else 0),
    }


def pool(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Throughput of overlapping identical statements over the resident
    backend, with the coalescing and fork-once counter proofs.

    ``CLIENTS`` sessions play ``ROUNDS_PER_CLIENT`` barrier-started
    rounds; each round the whole fleet issues one aggregate's text
    simultaneously.  qps counts completed statements over the fleet's
    wall-clock — directly comparable to the serving benchmark's cells,
    which run the same aggregates without overlap.
    """
    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    clients = CLIENTS

    report = Report(
        f"Execution pool — {clients} clients, identical overlapping "
        "statements, single-flight coalescing",
        [
            "tuples",
            "requests",
            "qps",
            "p50 (ms)",
            "p99 (ms)",
            "coalesced",
            "started",
            "pool forks",
            "pool workers",
        ],
    )
    cells: List[Dict[str, float]] = []
    for n in sizes:
        samples = [_measure_size(n, seed, clients) for seed in seeds]

        def _mean(key: str) -> float:
            return sum(sample[key] for sample in samples) / len(samples)

        cell = {key: _mean(key) for key in samples[0]}
        cell["tuples"] = float(n)
        cell["clients"] = float(clients)
        cell["rounds_per_client"] = float(ROUNDS_PER_CLIENT)
        cells.append(cell)
        report.add_row(
            n,
            int(cell["requests"]),
            round(cell["qps"], 2),
            round(cell["p50_ms"], 3),
            round(cell["p99_ms"], 3),
            int(cell["coalesced_statements"]),
            int(cell["statements_started"]),
            int(cell["pool_forks"]),
            int(cell["pool_workers"]),
        )
    note = (
        f"seeds={seeds}; {clients} clients x {ROUNDS_PER_CLIENT} "
        "barrier-started rounds of one identical statement each "
        "(COUNT/SUM/MIN/MAX/AVG cycling), warm cache; coalesced counts "
        "statements that joined another statement's flight; pool forks "
        "== pool workers proves the backend forked once at server "
        "start, never per statement"
    )
    report.add_note(note)
    POOL_DETAIL["cells"] = cells
    POOL_DETAIL["note"] = note
    return [report]
