"""Single-cell measurement: run one algorithm over one workload.

A :class:`Measurement` bundles the three quantities the paper reports
or that we substitute for them:

* ``seconds`` — wall-clock evaluation time (the paper's CPU seconds;
  machine-dependent),
* ``work`` — abstract operations performed
  (:attr:`OperationCounters.total_work`; machine-independent, used for
  the shape checks in EXPERIMENTS.md),
* ``peak_bytes`` — peak structure memory under the Section 6.2 node
  model (Figure 9's y-axis).

Measurements over multiple seeds are averaged with
:func:`mean_measurement`, mirroring the paper's repeated runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.base import Triple
from repro.core.engine import make_evaluator
from repro.metrics.counters import OperationCounters
from repro.metrics.space import SpaceTracker

__all__ = ["Measurement", "measure_strategy", "mean_measurement"]


@dataclass(frozen=True)
class Measurement:
    """Result of one evaluation run."""

    strategy: str
    tuples: int
    seconds: float
    work: int
    peak_nodes: int
    peak_bytes: int
    result_rows: int


def measure_strategy(
    strategy: str,
    triples: Sequence[Triple],
    aggregate: str = "count",
    k: Optional[int] = None,
    shards: Optional[int] = None,
) -> Measurement:
    """Time one in-memory evaluation with counters and space tracking."""
    counters = OperationCounters()
    evaluator = make_evaluator(
        strategy, aggregate, k=k, shards=shards, counters=counters
    )
    started = time.perf_counter()
    result = evaluator.evaluate(list(triples))
    elapsed = time.perf_counter() - started
    space: SpaceTracker = evaluator.space
    return Measurement(
        strategy=strategy,
        tuples=len(triples),
        seconds=elapsed,
        work=counters.total_work,
        peak_nodes=space.peak_nodes,
        peak_bytes=space.peak_bytes,
        result_rows=len(result),
    )


def mean_measurement(samples: List[Measurement]) -> Measurement:
    """Average a list of same-shaped measurements (multi-seed runs)."""
    if not samples:
        raise ValueError("cannot average zero measurements")
    count = len(samples)
    first = samples[0]
    return Measurement(
        strategy=first.strategy,
        tuples=first.tuples,
        seconds=sum(s.seconds for s in samples) / count,
        work=round(sum(s.work for s in samples) / count),
        peak_nodes=round(sum(s.peak_nodes for s in samples) / count),
        peak_bytes=round(sum(s.peak_bytes for s in samples) / count),
        result_rows=round(sum(s.result_rows for s in samples) / count),
    )
