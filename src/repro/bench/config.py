"""Benchmark configuration: the Table 3 grid, scaled for pure Python.

The paper sweeps 1K–64K tuples.  The two O(n²) cells (linked list on
anything; aggregation tree on *sorted* input) cost minutes of pure
Python at 64K, so the default grid stops at 16K tuples — enough to read
the log-log slopes and orderings — and is widened by environment
variables:

``REPRO_BENCH_MAX_TUPLES``
    Largest relation size (default 16384; the paper's full grid is
    65536).
``REPRO_BENCH_QUADRATIC_MAX``
    Cap applied to the O(n²) series only (default: same as max).
``REPRO_BENCH_SEEDS``
    Comma-separated RNG seeds; multiple seeds reproduce the paper's
    repeated runs (default "1").
"""

from __future__ import annotations

import os
from typing import List

__all__ = [
    "bench_sizes",
    "quadratic_max",
    "bench_seeds",
    "MIN_TUPLES",
    "DEFAULT_MAX_TUPLES",
]

MIN_TUPLES = 1024
DEFAULT_MAX_TUPLES = 16384


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < MIN_TUPLES:
        raise ValueError(f"{name} must be at least {MIN_TUPLES}")
    return value


def bench_sizes(maximum: "int | None" = None) -> List[int]:
    """Doubling sizes 1K, 2K, ... up to the configured maximum."""
    top = maximum if maximum is not None else _env_int(
        "REPRO_BENCH_MAX_TUPLES", DEFAULT_MAX_TUPLES
    )
    sizes = []
    n = MIN_TUPLES
    while n <= top:
        sizes.append(n)
        n *= 2
    return sizes


def quadratic_max() -> int:
    """Size cap for the O(n²) series (linked list, sorted-input tree)."""
    default = _env_int("REPRO_BENCH_MAX_TUPLES", DEFAULT_MAX_TUPLES)
    return _env_int("REPRO_BENCH_QUADRATIC_MAX", default)


def bench_seeds() -> List[int]:
    """RNG seeds for repeated runs (paper: several seeds per cell)."""
    raw = os.environ.get("REPRO_BENCH_SEEDS", "1")
    try:
        return [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SEEDS must be comma-separated ints, got {raw!r}"
        ) from None
