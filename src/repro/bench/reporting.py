"""Report rendering for the figure/table drivers.

Each driver in :mod:`repro.bench.figures` returns one or more
:class:`Report` objects — a titled table with a note trail — that can
be rendered as aligned text (for the console), Markdown (for
EXPERIMENTS.md) or CSV (for external plotting).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Report", "format_value"]


def format_value(value: Any) -> str:
    """Compact numeric formatting for report cells."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


@dataclass
class Report:
    """A titled result table with explanatory notes."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, report has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        rendered = [[format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(column)), *(len(r[i]) for r in rendered), 1)
            if rendered
            else len(str(column))
            for i, column in enumerate(self.columns)
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write(
            "  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths)) + "\n"
        )
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in rendered:
            out.write("  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def render_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("| " + " | ".join("---" for _ in self.columns) + " |")
        for row in self.rows:
            lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def render_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(str(c) for c in self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(str(v) for v in row) + "\n")
        return out.getvalue()

    def to_dict(self) -> dict:
        """JSON-ready form (for machine-readable bench artifacts)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def column_index(self, name: str) -> int:
        return list(self.columns).index(name)

    def series(self, column: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.column_index(column)
        return [row[index] for row in self.rows]

    @classmethod
    def from_csv(cls, text: str, title: str = "from csv") -> "Report":
        """Rebuild a report from :meth:`render_csv` output (numeric
        cells are parsed back to int/float; '-' stays a string)."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty CSV")
        columns = lines[0].split(",")
        report = cls(title, columns)
        for line in lines[1:]:
            cells: List[Any] = []
            for cell in line.split(","):
                try:
                    cells.append(int(cell))
                except ValueError:
                    try:
                        cells.append(float(cell))
                    except ValueError:
                        cells.append(cell)
            report.add_row(*cells)
        return report
