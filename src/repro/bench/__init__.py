"""Benchmark harness regenerating the paper's evaluation (Section 6).

``python -m repro.bench all`` reruns every table and figure;
:mod:`repro.bench.figures` documents the drivers individually.
"""

from repro.bench.config import bench_seeds, bench_sizes, quadratic_max
from repro.bench.figures import (
    DRIVERS,
    figure6,
    figure7,
    figure8,
    figure9,
    figure9_long_lived,
    table1,
    table2,
    table3,
)
from repro.bench.measure import Measurement, mean_measurement, measure_strategy
from repro.bench.plotting import ascii_loglog
from repro.bench.reporting import Report, format_value
from repro.bench.stats import SeriesStatistics, summarize, t_critical_95

__all__ = [
    "bench_sizes",
    "bench_seeds",
    "quadratic_max",
    "DRIVERS",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure9_long_lived",
    "table1",
    "table2",
    "table3",
    "Measurement",
    "measure_strategy",
    "mean_measurement",
    "Report",
    "format_value",
    "ascii_loglog",
    "SeriesStatistics",
    "summarize",
    "t_critical_95",
]
