"""Drivers regenerating every table and figure of the paper's evaluation.

Each ``figure*``/``table*`` function reruns the corresponding
experiment of Section 6 and returns :class:`~repro.bench.reporting.Report`
objects shaped like the original plot: one row per relation size, one
column per algorithm series.  Figures 6–8 report both wall-clock
seconds (the paper's y-axis) and machine-independent abstract work, so
the shape claims survive the C-on-a-SPARCstation → Python substitution;
Figure 9 reports modeled peak bytes exactly as Section 6.2 counts them.

Run from the command line::

    python -m repro.bench fig6 fig7 fig8 fig9 table1 table2
    python -m repro.bench all --markdown
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.config import bench_seeds, bench_sizes, quadratic_max
from repro.bench.measure import Measurement, mean_measurement, measure_strategy
from repro.bench.reporting import Report
from repro.core.interval import FOREVER
from repro.core.ordering import (
    k_ordered_percentage,
    percentage_from_histogram,
)
from repro.core.result import TemporalAggregateResult
from repro.core.two_pass import TwoPassEvaluator
from repro.workload.employed import TABLE_1_EXPECTED, employed_relation
from repro.workload.generator import WorkloadParameters, generate_triples
from repro.workload.permute import k_disorder, swap_pairs

__all__ = [
    "figure6",
    "figure7",
    "figure7_percentage_sweep",
    "figure8",
    "figure9",
    "figure9_long_lived",
    "table1",
    "table2",
    "table3",
    "ablations",
    "parallel",
    "columnar",
    "cache",
    "durability",
    "COLUMNAR_DETAIL",
    "DRIVERS",
]

#: k-ordered-percentage used for the partially ordered inputs of
#: Figures 7–9.  The paper tested {0.02, 0.08, 0.14} and found the
#: effect "outweighed greatly by the effect of the k value", showing a
#: single graph per k; we use the middle setting.
DEFAULT_PERCENTAGE = 0.08

#: The k values of the paper's Ktree series.
KTREE_KS = (400, 40, 4)


def _triples(n: int, long_lived: int, seed: int) -> List[tuple]:
    params = WorkloadParameters(tuples=n, long_lived_percent=long_lived, seed=seed)
    return [(s, e, None) for s, e, _salary in generate_triples(params)]


def _sorted_triples(triples: List[tuple]) -> List[tuple]:
    return sorted(triples, key=lambda t: (t[0], t[1]))


def _disordered(triples: List[tuple], k: int, seed: int) -> List[tuple]:
    ordered = _sorted_triples(triples)
    # Tiny smoke-test relations can be smaller than the paper's k=400
    # series; clamp the swap distance to what the relation can express.
    effective_k = min(k, max(0, len(ordered) - 1))
    permutation = k_disorder(
        len(ordered), effective_k, DEFAULT_PERCENTAGE, seed=seed
    )
    return [ordered[i] for i in permutation]


def _mean(
    strategy: str,
    workloads: List[List[tuple]],
    k: Optional[int] = None,
) -> Measurement:
    return mean_measurement(
        [measure_strategy(strategy, w, "count", k=k) for w in workloads]
    )


# ---------------------------------------------------------------------------
# Figure 6 — time on unordered relations
# ---------------------------------------------------------------------------

def figure6(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Query evaluation time, randomly ordered relations (Figure 6).

    Series: linked list and aggregation tree, each at 0 % and 80 %
    long-lived tuples — the paper found both algorithms unaffected by
    long-lived tuples on unordered input and plotted one curve each;
    reporting both percentages makes that insensitivity checkable.
    """
    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    cap = quadratic_max()

    columns = [
        "tuples",
        "linked list (0% ll)",
        "linked list (80% ll)",
        "aggregation tree (0% ll)",
        "aggregation tree (40% ll)",
        "aggregation tree (80% ll)",
    ]
    time_report = Report("Figure 6 — time (s), unordered relations", columns)
    work_report = Report("Figure 6 — abstract work, unordered relations", columns)
    for n in sizes:
        loads = {
            ll: [_triples(n, ll, seed) for seed in seeds] for ll in (0, 40, 80)
        }
        cells: List[Measurement | None] = []
        for strategy, ll in (
            ("linked_list", 0),
            ("linked_list", 80),
            ("aggregation_tree", 0),
            ("aggregation_tree", 40),
            ("aggregation_tree", 80),
        ):
            if strategy == "linked_list" and n > cap:
                cells.append(None)
            else:
                cells.append(_mean(strategy, loads[ll]))
        time_report.add_row(
            n, *(round(c.seconds, 5) if c else "-" for c in cells)
        )
        work_report.add_row(n, *(c.work if c else "-" for c in cells))
    note = (
        f"seeds={seeds}; O(n²) series capped at {cap} tuples "
        "(REPRO_BENCH_QUADRATIC_MAX)"
    )
    time_report.add_note(note)
    work_report.add_note(note)
    return [time_report, work_report]


# ---------------------------------------------------------------------------
# Figures 7 and 8 — time on ordered / nearly ordered relations
# ---------------------------------------------------------------------------

def _ordered_figure(long_lived: int, title: str, sizes, seeds) -> List[Report]:
    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    cap = quadratic_max()

    columns = (
        ["tuples", "linked list (sorted)", "aggregation tree (sorted)"]
        + [f"ktree k={k}" for k in KTREE_KS]
        + ["ktree sorted k=1"]
    )
    time_report = Report(f"{title} — time (s)", columns)
    work_report = Report(f"{title} — abstract work", columns)
    for n in sizes:
        raw = [_triples(n, long_lived, seed) for seed in seeds]
        ordered = [_sorted_triples(w) for w in raw]
        cells: List[Measurement | None] = []
        cells.append(_mean("linked_list", ordered) if n <= cap else None)
        cells.append(_mean("aggregation_tree", ordered) if n <= cap else None)
        for k in KTREE_KS:
            disordered = [
                _disordered(w, k, seed) for w, seed in zip(raw, seeds)
            ]
            cells.append(_mean("kordered_tree", disordered, k=k))
        cells.append(_mean("kordered_tree", ordered, k=1))
        time_report.add_row(
            n, *(round(c.seconds, 5) if c else "-" for c in cells)
        )
        work_report.add_row(n, *(c.work if c else "-" for c in cells))
    note = (
        f"long-lived={long_lived}%; ktree series on k-disordered input "
        f"(k-ordered-percentage {DEFAULT_PERCENTAGE}); seeds={seeds}; "
        f"O(n²) series capped at {cap} tuples"
    )
    time_report.add_note(note)
    work_report.add_note(note)
    return [time_report, work_report]


def figure7(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Time on ordered relations, no long-lived tuples (Figure 7)."""
    return _ordered_figure(
        0, "Figure 7 — ordered relations, 0% long-lived", sizes, seeds
    )


def figure8(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Time on ordered relations, 80 % long-lived tuples (Figure 8)."""
    return _ordered_figure(
        80, "Figure 8 — ordered relations, 80% long-lived", sizes, seeds
    )


def figure7_percentage_sweep(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """The Table 3 k-ordered-percentage grid (Section 6.1's claim that
    the percentage's effect is outweighed by k's)."""
    from repro.workload.generator import PAPER_K_ORDERED_PERCENTAGES

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    n = sizes[-1]

    columns = ["k"] + [f"p={p}" for p in PAPER_K_ORDERED_PERCENTAGES]
    report = Report(
        f"Figure 7 companion — ktree abstract work across "
        f"k-ordered-percentages (n={n})",
        columns,
    )
    raw = [_triples(n, 0, seed) for seed in seeds]
    ordered = [_sorted_triples(w) for w in raw]
    for k in KTREE_KS:
        cells = []
        for percentage in PAPER_K_ORDERED_PERCENTAGES:
            samples = []
            for w, seed in zip(ordered, seeds):
                effective_k = min(k, max(0, len(w) - 1))
                permutation = k_disorder(len(w), effective_k, percentage, seed=seed)
                disordered = [w[i] for i in permutation]
                samples.append(
                    measure_strategy("kordered_tree", disordered, "count", k=k)
                )
            cells.append(mean_measurement(samples).work)
        report.add_row(k, *cells)
    report.add_note(
        "Section 6.1: within a row the percentage moves work mildly "
        "(more randomness = slightly faster); across rows k dominates"
    )
    return [report]


# ---------------------------------------------------------------------------
# Figure 9 — memory
# ---------------------------------------------------------------------------

def _memory_figure(long_lived: int, title: str, sizes, seeds) -> List[Report]:
    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()

    columns = (
        ["tuples", "linked list", "aggregation tree"]
        + [f"ktree k={k}" for k in KTREE_KS]
        + ["ktree sorted k=1"]
    )
    report = Report(f"{title} — peak bytes (16 B/node + state)", columns)
    for n in sizes:
        raw = [_triples(n, long_lived, seed) for seed in seeds]
        ordered = [_sorted_triples(w) for w in raw]
        cells = [
            # Node counts of the list and the tree depend only on the
            # timestamps present, not on input order, so the cheap
            # random-order run measures the same structures.
            _mean("linked_list", raw),
            _mean("aggregation_tree", raw),
        ]
        for k in KTREE_KS:
            disordered = [
                _disordered(w, k, seed) for w, seed in zip(raw, seeds)
            ]
            cells.append(_mean("kordered_tree", disordered, k=k))
        cells.append(_mean("kordered_tree", ordered, k=1))
        report.add_row(n, *(c.peak_bytes for c in cells))
    report.add_note(
        f"long-lived={long_lived}%; node model: 16 bytes + 4 (COUNT state); "
        f"list/tree measured on random order (their node counts are "
        f"order-insensitive); seeds={seeds}"
    )
    return [report]


def figure9(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Peak memory, no long-lived tuples (Figure 9)."""
    return _memory_figure(0, "Figure 9 — memory, 0% long-lived", sizes, seeds)


def figure9_long_lived(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Peak memory with 80 % long-lived tuples (Section 6.2's text:
    'much worse for the k-ordered tree algorithms; the linked list and
    aggregation tree are totally unaffected')."""
    return _memory_figure(
        80, "Figure 9b — memory, 80% long-lived (Section 6.2 text)", sizes, seeds
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1(**_ignored) -> List[Report]:
    """``SELECT COUNT(Name) FROM Employed`` (Table 1), via every algorithm."""
    from repro.core.engine import STRATEGIES, temporal_aggregate

    employed = employed_relation()
    report = Report(
        "Table 1 — COUNT over the Employed relation",
        ["start", "end", "count", "matches paper"],
    )
    results: Dict[str, TemporalAggregateResult] = {}
    for strategy in sorted(STRATEGIES):
        k = 400 if strategy == "kordered_tree" else None
        results[strategy] = temporal_aggregate(
            employed, "count", strategy=strategy, k=k
        )
    agreed = all(r.rows == TABLE_1_EXPECTED for r in results.values())
    for row in TABLE_1_EXPECTED:
        end = "forever" if row.end >= FOREVER else row.end
        report.add_row(row.start, end, row.value, "yes" if agreed else "CHECK")
    report.add_note(
        f"all {len(results)} algorithms agree with the re-derived Table 1: "
        f"{'yes' if agreed else 'NO'}"
    )
    # Tuma's baseline needs two scans where the new algorithms need one.
    employed.scan_count = 0
    TwoPassEvaluator("count").evaluate_relation(employed)
    report.add_note(f"two-pass baseline scans of the relation: {employed.scan_count}")
    return [report]


def table2(**_ignored) -> List[Report]:
    """k-ordered-percentage examples, n=10000, k=100 (Table 2)."""
    n, k = 10_000, 100
    report = Report(
        "Table 2 — k-ordered-percentages (n=10000, k=100)",
        ["configuration", "measured", "paper"],
    )

    sorted_keys = list(range(n))
    report.add_row(
        "the tuples are sorted", k_ordered_percentage(sorted_keys, k), 0.0
    )

    two_swapped = swap_pairs(n, 100, 1, seed=1)
    report.add_row(
        "2 tuples 100 places apart are swapped",
        k_ordered_percentage(two_swapped, k),
        0.0002,
    )

    twenty = swap_pairs(n, 100, 10, seed=2)
    report.add_row(
        "20 tuples are 100 places from being sorted",
        k_ordered_percentage(twenty, k),
        0.002,
    )

    one_each = percentage_from_histogram({i: 1 for i in range(1, 101)}, k, n)
    report.add_row(
        "one tuple i places out of order for each i in 1..100", one_each, 0.00505
    )

    ten_each = percentage_from_histogram({i: 10 for i in range(1, 101)}, k, n)
    report.add_row(
        "10 tuples 1 place out, 10 are 2, ..., 10 are 100 out", ten_each, 0.0505
    )
    report.add_note(
        "rows 4-5 are evaluated from the displacement histogram; the others "
        "from constructed permutations (see EXPERIMENTS.md on the garbled "
        "source rows)"
    )
    return [report]


def table3(**_ignored) -> List[Report]:
    """The test-parameter grid (Table 3), as configured for this machine."""
    from repro.workload.generator import (
        PAPER_K_ORDERED_PERCENTAGES,
        PAPER_LONG_LIVED_PERCENTS,
        PAPER_SIZES,
    )

    report = Report("Table 3 — test parameters", ["parameter", "paper", "this run"])
    report.add_row(
        "k-ordered-percentage", PAPER_K_ORDERED_PERCENTAGES, [DEFAULT_PERCENTAGE]
    )
    report.add_row("long-lived tuples (%)", PAPER_LONG_LIVED_PERCENTS, [0, 40, 80])
    report.add_row("relation sizes (tuples)", PAPER_SIZES, bench_sizes())
    report.add_row(
        "relation sizes (bytes, 128 B/tuple)",
        [n * 128 for n in PAPER_SIZES],
        [n * 128 for n in bench_sizes()],
    )
    return [report]


def ablations(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """One summary row per Section 7 future-work ablation, measured.

    The pytest benches under ``benchmarks/test_ablation_*.py`` assert
    these shapes; this driver prints the underlying numbers at the
    configured scale in one table.
    """
    from repro.core.paged_tree import PagedAggregationTreeEvaluator
    from repro.relation.relation import TemporalRelation
    from repro.relation.schema import EMPLOYED_SCHEMA
    from repro.storage.external_sort import external_sort
    from repro.storage.heapfile import HeapFile
    from repro.storage.randomized_scan import randomized_scan_triples

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    n = sizes[-1]
    seed = seeds[0]

    random_triples = _triples(n, 0, seed)
    ordered_triples = _sorted_triples(random_triples)

    report = Report(
        f"Section 7 ablations (n={n}, seed={seed})",
        ["ablation", "baseline", "variant", "metric"],
    )

    # Balanced tree vs degenerate tree on sorted input.
    plain = measure_strategy("aggregation_tree", ordered_triples)
    balanced = measure_strategy("balanced_tree", ordered_triples)
    report.add_row(
        "balanced tree (sorted input)", plain.work, balanced.work,
        "abstract work",
    )

    # Sweep vs the same degenerate tree.
    swept = measure_strategy("sweep", ordered_triples)
    report.add_row(
        "endpoint sweep (sorted input)", plain.work, swept.work,
        "abstract work",
    )

    # Randomized page scan on a sorted heap file.
    relation = TemporalRelation(EMPLOYED_SCHEMA, name="ablation")
    for start, end, _v in ordered_triples:
        relation.insert(("T", 1), start, end)
    heap = HeapFile.from_relation(relation)
    from repro.core.engine import make_evaluator

    plain_tree = make_evaluator("aggregation_tree", "count")
    plain_tree.evaluate(heap.scan_triples())
    shuffled_tree = make_evaluator("aggregation_tree", "count")
    shuffled_tree.evaluate(randomized_scan_triples(heap, group_pages=8, seed=seed))
    report.add_row(
        "randomized page scan (sorted file)",
        plain_tree.counters.total_work,
        shuffled_tree.counters.total_work,
        "abstract work",
    )

    # Paged tree vs plain tree on random input (peak memory).
    plain_random = measure_strategy("aggregation_tree", random_triples)
    paged = PagedAggregationTreeEvaluator("count", node_budget=1024)
    paged.evaluate(list(random_triples))
    report.add_row(
        "paged tree, budget=1024 (random input)",
        plain_random.peak_nodes,
        paged.space.peak_nodes,
        "peak nodes",
    )

    # Sort + ktree k=1 pipeline vs linked list (work).
    sorted_heap = external_sort(heap, run_pages=16)
    pipeline = make_evaluator("kordered_tree", "count", k=1)
    pipeline.evaluate(sorted_heap.scan_triples())
    naive = measure_strategy("linked_list", random_triples)
    report.add_row(
        "sort + ktree k=1 vs linked list",
        naive.work,
        pipeline.counters.total_work,
        "abstract work",
    )
    report.add_note(
        "baseline = the paper's default under that regime; variant = the "
        "Section 7 proposal; see benchmarks/test_ablation_*.py for the "
        "asserted shape checks"
    )
    return [report]


def parallel(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Columnar and time-sharded sweeps vs the object sweep (post-paper).

    COUNT over randomly ordered relations — the regime the planner's
    parallel rule targets.  Three reports: wall-clock seconds, abstract
    work (identical across the three sweeps by construction — the check
    that the columnar layout changes constants, not the algorithm), and
    the speedup ratios the acceptance criteria quote.  The process pool
    only engages at ``POOL_MIN_TUPLES`` tuples and with >1 CPU; below
    that ``parallel_sweep`` runs its shards in-process.
    """
    import os

    from repro.core.parallel import POOL_MIN_TUPLES

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    shard_counts = (1, 2, 4)

    columns = ["tuples", "sweep", "columnar_sweep"] + [
        f"parallel P={p}" for p in shard_counts
    ]
    time_report = Report("Parallel — time (s), COUNT, unordered relations", columns)
    work_report = Report("Parallel — abstract work, COUNT, unordered relations", columns)
    speed_report = Report(
        "Parallel — speedup over the object sweep (higher is better)",
        ["tuples", "columnar_sweep"] + [f"parallel P={p}" for p in shard_counts],
    )
    def best(strategy, loads, shards=None):
        # One run is dominated by GC pauses triggered by whatever the
        # previous cell allocated; best-of-3 per seed isolates the cell.
        samples = []
        for w in loads:
            runs = [
                measure_strategy(strategy, w, "count", shards=shards)
                for _ in range(3)
            ]
            samples.append(min(runs, key=lambda m: m.seconds))
        return mean_measurement(samples)

    for n in sizes:
        loads = [_triples(n, 0, seed) for seed in seeds]
        cells = [best("sweep", loads), best("columnar_sweep", loads)]
        for p in shard_counts:
            cells.append(best("parallel_sweep", loads, shards=p))
        time_report.add_row(n, *(round(c.seconds, 5) for c in cells))
        work_report.add_row(n, *(c.work for c in cells))
        base = cells[0].seconds
        speed_report.add_row(
            n, *(round(base / c.seconds, 2) for c in cells[1:])
        )
    note = (
        f"os.cpu_count()={os.cpu_count()}; seeds={seeds}; seconds are "
        f"best-of-3 per seed; process pool engages at n>={POOL_MIN_TUPLES} "
        f"with >1 shard (in-process below); on a single-CPU host sharding "
        f"adds clipping overhead and cannot win"
    )
    for report in (time_report, work_report, speed_report):
        report.add_note(note)
    return [time_report, work_report, speed_report]


#: Per-cell detail of the last ``columnar()`` run, keyed by
#: ``(aggregate, tuples)`` — the JSON writer emits it alongside the
#: rendered reports so the acceptance numbers (speedups, zero
#: materializations, batch counts) are machine-checkable.
COLUMNAR_DETAIL: Dict[str, object] = {}


def columnar(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """The page-to-row columnar pipeline vs the object path, end to end.

    Both series start from the same heap file *pages* and end at emitted
    rows, so the comparison covers what a query actually pays: the
    object path decodes every record into a ``TemporalTuple``, re-packs
    it as a triple, and builds two event tuples per triple inside the
    sweep; the columnar path batch-unpacks each page into flat
    ``array('q')`` columns and runs the specialized kernels with zero
    per-row or per-event tuples (``tuple_materializations`` proves it).
    Three columnar riders are timed — the serial columnar sweep, the
    time-sharded parallel plan, and a cold shard-result-cache pass —
    each against the object sweep fed from the same storage.
    """
    import os
    from time import perf_counter

    from repro.cache.evaluator import evaluate_cached
    from repro.cache.store import ShardResultCache
    from repro.core.columnar_sweep import ColumnarSweepEvaluator
    from repro.core.parallel import ParallelSweepEvaluator
    from repro.core.sweep import SweepEvaluator
    from repro.metrics.counters import OperationCounters
    from repro.relation.relation import TemporalRelation
    from repro.relation.schema import EMPLOYED_SCHEMA
    from repro.relation.tuples import TemporalTuple
    from repro.storage.heapfile import HeapFile

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    aggregates = (("count", None), ("sum", "salary"))

    def built(n: int, seed: int):
        params = WorkloadParameters(tuples=n, seed=seed)
        rows = [
            TemporalTuple((f"e{i % 997}", salary), start, end)
            for i, (start, end, salary) in enumerate(generate_triples(params))
        ]
        relation = TemporalRelation(EMPLOYED_SCHEMA, rows, name=f"col{n}")
        return HeapFile.from_relation(relation), relation

    def best_of_3(run) -> float:
        return min(min(run() for _ in range(3)), float("inf"))

    time_reports: List[Report] = []
    speed_reports: List[Report] = []
    shape = Report(
        "Columnar — shape proof (per-row/per-event tuples built, page batches)",
        [
            "tuples",
            "aggregate",
            "object tuple builds",
            "columnar tuple builds",
            "column batches",
        ],
    )
    COLUMNAR_DETAIL.clear()
    COLUMNAR_DETAIL["cells"] = []
    for name, attribute in aggregates:
        label = name if attribute is None else f"{name}({attribute})"
        columns = [
            "tuples",
            "object sweep",
            "columnar_sweep",
            "parallel_sweep",
            "cached cold",
        ]
        time_report = Report(
            f"Columnar — end-to-end time (s) from heap pages, {label}", columns
        )
        speed_report = Report(
            f"Columnar — speedup over the object path, {label}",
            ["tuples", "columnar_sweep", "parallel_sweep", "cached cold"],
        )
        for n in sizes:
            per_seed = {key: [] for key in ("object", "columnar", "parallel", "cached")}
            mats = {"object": 0, "columnar": 0, "batches": 0}
            for seed in seeds:
                heap, relation = built(n, seed)

                def run_object() -> float:
                    started = perf_counter()
                    SweepEvaluator(name).evaluate(heap.scan_triples(attribute))
                    return perf_counter() - started

                def run_columnar() -> float:
                    evaluator = ColumnarSweepEvaluator(name)
                    started = perf_counter()
                    evaluator.evaluate_columns(heap.scan_columns(attribute))
                    return perf_counter() - started

                def run_parallel() -> float:
                    evaluator = ParallelSweepEvaluator(name)
                    started = perf_counter()
                    evaluator.evaluate_columns(heap.scan_columns(attribute))
                    return perf_counter() - started

                def run_cached() -> float:
                    relation._columns_cache.clear()
                    store = ShardResultCache()
                    started = perf_counter()
                    evaluate_cached(relation, name, attribute, cache=store)
                    return perf_counter() - started

                per_seed["object"].append(best_of_3(run_object))
                per_seed["columnar"].append(best_of_3(run_columnar))
                per_seed["parallel"].append(best_of_3(run_parallel))
                per_seed["cached"].append(best_of_3(run_cached))

                object_counters = OperationCounters()
                SweepEvaluator(name, counters=object_counters).evaluate(
                    heap.scan_triples(attribute)
                )
                columnar_counters = OperationCounters()
                ColumnarSweepEvaluator(
                    name, counters=columnar_counters
                ).evaluate_columns(heap.scan_columns(attribute))
                mats["object"] += object_counters.tuple_materializations
                mats["columnar"] += columnar_counters.tuple_materializations
                mats["batches"] += columnar_counters.column_batches

            means = {
                key: sum(times) / len(times) for key, times in per_seed.items()
            }
            base = means["object"]
            time_report.add_row(
                n,
                *(round(means[k], 5) for k in ("object", "columnar", "parallel", "cached")),
            )
            speedups = {
                k: round(base / means[k], 2) if means[k] else float("inf")
                for k in ("columnar", "parallel", "cached")
            }
            speed_report.add_row(
                n, speedups["columnar"], speedups["parallel"], speedups["cached"]
            )
            shape.add_row(
                n, label, mats["object"], mats["columnar"], mats["batches"]
            )
            COLUMNAR_DETAIL["cells"].append(
                {
                    "aggregate": label,
                    "tuples": n,
                    "seconds": {k: round(v, 6) for k, v in means.items()},
                    "speedup": speedups,
                    "object_tuple_materializations": mats["object"],
                    "columnar_tuple_materializations": mats["columnar"],
                    "column_batches": mats["batches"],
                }
            )
        time_reports.append(time_report)
        speed_reports.append(speed_report)

    note = (
        f"os.cpu_count()={os.cpu_count()}; seeds={seeds}; seconds are "
        "best-of-3 per seed and include the page decode (object path: "
        "per-record unpack into TemporalTuple; columnar path: one "
        "struct.unpack per page); on a single-CPU host parallel_sweep "
        "collapses to one shard and matches the serial columnar time"
    )
    for report in time_reports + speed_reports + [shape]:
        report.add_note(note)
    COLUMNAR_DETAIL["note"] = note
    return time_reports + speed_reports + [shape]


def cache(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """The shard-result cache on repeated and append-heavy workloads.

    COUNT over randomly ordered relations (post-paper; see
    :mod:`repro.cache`).  Repeat scenario: the same relation queried
    against a fresh cache — the cold call populates it, the warm calls
    are pure hits off the stitched rows (best-of-3).  Append scenario:
    after warming, 1 % new short tuples confined to the start of the
    timeline are inserted and the query re-runs — the delta path
    re-sweeps only the shards the appends overlap, never the clean
    ones, and the dirty/total shard columns prove it.
    """
    from time import perf_counter

    from repro.cache.evaluator import evaluate_cached
    from repro.cache.store import CacheKey, ShardResultCache
    from repro.metrics.counters import OperationCounters
    from repro.workload.generator import generate_relation

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    shards = 4

    report = Report(
        "Cache — COUNT, repeated then append-heavy (4 shards requested)",
        [
            "tuples",
            "cold (s)",
            "warm hit (s)",
            "warm speedup",
            "append refresh (s)",
            "dirty shards",
            "total shards",
            "hit rate",
        ],
    )
    for n in sizes:
        cold_times, warm_times, append_times = [], [], []
        dirty_counts, window_counts, hit_rates = [], [], []
        for seed in seeds:
            relation = generate_relation(WorkloadParameters(tuples=n, seed=seed))
            store = ShardResultCache()
            started = perf_counter()
            cold_rows = evaluate_cached(
                relation, "count", shards=shards, cache=store
            ).rows
            cold_times.append(perf_counter() - started)
            warm_runs = []
            for _ in range(3):
                started = perf_counter()
                warm_rows = evaluate_cached(
                    relation, "count", shards=shards, cache=store
                ).rows
                warm_runs.append(perf_counter() - started)
                assert warm_rows == cold_rows
            warm_times.append(min(warm_runs))
            key = CacheKey(relation.uid, "count", None, shards)
            window_counts.append(len(store.lookup(key).windows))
            for index in range(max(1, n // 100)):
                relation.insert(("Nick", 50_000), index, index + 10)
            counters = OperationCounters()
            started = perf_counter()
            evaluate_cached(
                relation, "count", shards=shards, cache=store, counters=counters
            )
            append_times.append(perf_counter() - started)
            dirty_counts.append(counters.cache_dirty_shards)
            tallies = store.counters
            hit_rates.append(
                tallies.cache_hits
                / max(1, tallies.cache_hits + tallies.cache_misses)
            )
        cold = sum(cold_times) / len(cold_times)
        warm = sum(warm_times) / len(warm_times)
        report.add_row(
            n,
            round(cold, 5),
            round(warm, 6),
            round(cold / warm, 1) if warm else "-",
            round(sum(append_times) / len(append_times), 5),
            round(sum(dirty_counts) / len(dirty_counts), 2),
            round(sum(window_counts) / len(window_counts), 2),
            round(sum(hit_rates) / len(hit_rates), 3),
        )
    report.add_note(
        f"seeds={seeds}; warm = best-of-3 pure hits; append = 1% new short "
        "tuples confined to the timeline start, then one delta refresh "
        "(re-sweeps dirty shards only); hit rate counts the refresh as a "
        "hit (it reuses every clean shard)"
    )
    return [report]


def durability(
    sizes: Optional[Sequence[int]] = None, seeds: Optional[Sequence[int]] = None
) -> List[Report]:
    """Write-ahead journal overhead and crash-recovery cost.

    Two reports.  Append throughput: the same rows appended to a plain
    heap file and to a journaled one (:meth:`HeapFile.durable`, default
    ``commit`` fsync policy), each run ending in one ``flush()`` — the
    acceptance bar is journaled within 2x of plain at 64K.  Recovery:
    a journaled file is committed and then *abandoned* with its dirty
    pages unwritten (a process-death stand-in), and the re-open replays
    the whole journal — time grows with journal length, not with data
    already durable.
    """
    import os
    import tempfile
    from time import perf_counter

    from repro.relation.schema import Attribute, Schema
    from repro.relation.tuples import TemporalTuple
    from repro.storage.heapfile import HeapFile

    sizes = list(sizes) if sizes is not None else bench_sizes()
    seeds = list(seeds) if seeds is not None else bench_seeds()
    schema = Schema((Attribute("salary", "int"),))

    throughput = Report(
        "Durability — append throughput, plain vs journaled heap file",
        [
            "tuples",
            "plain (s)",
            "plain rows/s",
            "journaled (s)",
            "journaled rows/s",
            "overhead x",
        ],
    )
    recovery = Report(
        "Durability — crash recovery time vs journal length",
        [
            "journal appends",
            "recover (s)",
            "rows restored",
            "journal records",
            "rows/s replayed",
        ],
    )

    for n in sizes:
        plain_times, journal_times, recover_times = [], [], []
        restored = scanned = 0
        for seed in seeds:
            rows = [
                TemporalTuple((salary,), start, end)
                for start, end, salary in generate_triples(
                    WorkloadParameters(tuples=n, seed=seed)
                )
            ]
            with tempfile.TemporaryDirectory() as scratch:
                plain = HeapFile(schema, os.path.join(scratch, "plain.dat"))
                started = perf_counter()
                plain.append_all(rows)
                plain.flush()
                plain_times.append(perf_counter() - started)
                plain.close()

                path = os.path.join(scratch, "durable.dat")
                heap = HeapFile.durable(schema, path)
                started = perf_counter()
                heap.append_all(rows)
                heap.flush()
                journal_times.append(perf_counter() - started)
                heap.close()

                # Crash scenario: every append journaled and committed,
                # no data page written back — recovery replays it all.
                crash_path = os.path.join(scratch, "crash.dat")
                heap = HeapFile.durable(schema, crash_path)
                heap.append_all(rows)
                heap.commit()
                heap.abandon()
                started = perf_counter()
                recovered = HeapFile.durable(schema, crash_path)
                recover_times.append(perf_counter() - started)
                report = recovered.last_recovery
                restored = len(recovered)
                scanned = report.records_scanned if report else 0
                assert restored == len(rows)
                recovered.close()
        plain_s = sum(plain_times) / len(plain_times)
        journal_s = sum(journal_times) / len(journal_times)
        recover_s = sum(recover_times) / len(recover_times)
        throughput.add_row(
            n,
            round(plain_s, 4),
            int(n / plain_s) if plain_s else "-",
            round(journal_s, 4),
            int(n / journal_s) if journal_s else "-",
            round(journal_s / plain_s, 2) if plain_s else "-",
        )
        recovery.add_row(
            n,
            round(recover_s, 4),
            restored,
            scanned,
            int(restored / recover_s) if recover_s else "-",
        )
    throughput.add_note(
        f"seeds={seeds}; both series end in one flush(); journaled = "
        "write-ahead record per append + COMMIT fsync + rotation "
        "(REPRO_JOURNAL_FSYNC=commit)"
    )
    recovery.add_note(
        "crash = commit + abandon with zero data pages written back, so "
        "recovery rebuilds every row from the journal (worst case)"
    )
    return [throughput, recovery]


from repro.bench.pool import pool  # noqa: E402  (registry import)
from repro.bench.replication import replication  # noqa: E402  (registry import)
from repro.bench.serving import serving  # noqa: E402  (registry import)

#: Driver registry for the CLI.
DRIVERS: Dict[str, Callable[..., List[Report]]] = {
    "fig6": figure6,
    "fig7": figure7,
    "fig7b": figure7_percentage_sweep,
    "fig8": figure8,
    "fig9": figure9,
    "fig9b": figure9_long_lived,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "ablations": ablations,
    "parallel": parallel,
    "columnar": columnar,
    "cache": cache,
    "durability": durability,
    "serving": serving,
    "pool": pool,
    "replication": replication,
}
