"""Timeslices: snapshot views of a temporal relation.

The defining property of temporal aggregation grouped by instant is
that its answer at instant ``t`` equals the *snapshot* aggregate over
the timeslice of the relation at ``t`` — the conventional relation
containing exactly the tuples valid at ``t``.  This module provides
that operator, both for correctness cross-checks (see
``tests/snapshot``) and as the natural way to answer "as of" queries:

>>> snapshot = timeslice(employed, 19)
>>> scalar_aggregate((r.values[1] for r in snapshot), "max")[0]
45000
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.base import coerce_aggregate
from repro.relation.relation import TemporalRelation
from repro.relation.tuples import TemporalTuple
from repro.snapshot.epstein import grouped_aggregate, scalar_aggregate

__all__ = ["timeslice", "snapshot_aggregate", "snapshot_grouped_aggregate"]


def timeslice(relation: TemporalRelation, instant: int) -> List[TemporalTuple]:
    """The tuples of ``relation`` valid at ``instant`` (one scan)."""
    if instant < 0:
        raise ValueError("instants precede the origin")
    return [row for row in relation.scan() if row.start <= instant <= row.end]


def snapshot_aggregate(
    relation: TemporalRelation,
    aggregate,
    attribute: Optional[str],
    instant: int,
) -> Any:
    """Snapshot (Epstein) aggregate of the timeslice at ``instant``.

    By the semantics of temporal grouping, this must equal
    ``temporal_aggregate(relation, aggregate, attribute).value_at(instant)``
    — the property the snapshot test-suite checks for every algorithm.
    """
    aggregate = coerce_aggregate(aggregate)
    extract = relation.value_extractor(attribute)
    values = (extract(row) for row in timeslice(relation, instant))
    result, _count = scalar_aggregate(values, aggregate)
    return result


def snapshot_grouped_aggregate(
    relation: TemporalRelation,
    aggregate,
    group_attribute: str,
    value_attribute: Optional[str],
    instant: int,
):
    """Per-group snapshot aggregate of the timeslice at ``instant``."""
    aggregate = coerce_aggregate(aggregate)
    group_position = relation.schema.position_of(group_attribute)
    extract = relation.value_extractor(value_attribute)
    return grouped_aggregate(
        timeslice(relation, instant),
        aggregate,
        group_key=lambda row: row.values[group_position],
        value_of=extract,
    )
