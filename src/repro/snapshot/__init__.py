"""Snapshot (conventional) aggregate computation — paper Section 3.

Epstein's result-tuple algorithm for scalar and grouped aggregates,
plus the timeslice operator that connects snapshot and temporal
semantics: a temporal aggregate at instant ``t`` equals the snapshot
aggregate over the timeslice at ``t``.
"""

from repro.snapshot.epstein import (
    ResultTuple,
    grouped_aggregate,
    scalar_aggregate,
)
from repro.snapshot.timeslice import (
    snapshot_aggregate,
    snapshot_grouped_aggregate,
    timeslice,
)

__all__ = [
    "ResultTuple",
    "scalar_aggregate",
    "grouped_aggregate",
    "timeslice",
    "snapshot_aggregate",
    "snapshot_grouped_aggregate",
]
