"""Snapshot aggregate computation (paper Section 3).

Conventional (snapshot) databases evaluate aggregates with Epstein's
two-step algorithm [Epstein 1979], which the paper recounts as the
baseline that temporal aggregation generalises:

1. *"Allocate a tuple to hold the result.  This tuple contains two
   attributes, a counter (initialized to zero) used to count the
   number of tuples that satisfy this aggregate's qualification, and a
   result attribute."*
2. *"For each tuple that qualifies, update the counter and the
   aggregate result."*

The counter serves COUNT/AVG directly and lets MIN/MAX/SUM "recognize
the first tuple".  Aggregate functions (with a GROUP BY) extend the
scheme with one such result tuple per group in a temporary relation,
and scalar aggregates "may be computed and then replaced by their value
in their query" — which is how :mod:`repro.snapshot.timeslice` lets a
temporal relation answer snapshot queries at one instant.

This module implements that machinery over plain value rows, so the
temporal evaluators' results can be cross-checked against the
snapshot-at-every-instant semantics they must by definition equal.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Tuple

from repro.core.aggregates import Aggregate
from repro.core.base import coerce_aggregate

__all__ = ["ResultTuple", "scalar_aggregate", "grouped_aggregate"]


class ResultTuple:
    """Epstein's result tuple: a qualification counter plus state.

    The ``count`` attribute is the paper's explicit counter; ``state``
    is the aggregate's partial result.  ``absorb`` is step 2 of the
    algorithm.
    """

    __slots__ = ("aggregate", "count", "state")

    def __init__(self, aggregate: Aggregate) -> None:
        self.aggregate = aggregate
        self.count = 0
        self.state = aggregate.identity()

    @property
    def is_first(self) -> bool:
        """True before any qualifying tuple arrived (the paper's
        first-tuple recognition for MIN/MAX)."""
        return self.count == 0

    def absorb(self, value: Any) -> None:
        self.count += 1
        self.state = self.aggregate.absorb(self.state, value)

    def result(self) -> Any:
        return self.aggregate.finalize(self.state)


def scalar_aggregate(
    values: Iterable[Any],
    aggregate: "Aggregate | str",
    qualification: Optional[Callable[[Any], bool]] = None,
) -> Tuple[Any, int]:
    """Epstein's scalar aggregate: one pass, one result tuple.

    Returns ``(result, qualifying_count)`` — the count is exposed
    because the algorithm materialises it anyway and callers (like
    AVG or the executor's empty-group handling) rely on it.
    """
    aggregate = coerce_aggregate(aggregate)
    holder = ResultTuple(aggregate)
    for value in values:
        if qualification is not None and not qualification(value):
            continue
        holder.absorb(value)
    return holder.result(), holder.count


def grouped_aggregate(
    rows: Iterable[Any],
    aggregate: "Aggregate | str",
    group_key: Callable[[Any], Hashable],
    value_of: Callable[[Any], Any],
    qualification: Optional[Callable[[Any], bool]] = None,
) -> Dict[Hashable, Any]:
    """Aggregate function with GROUP BY: a temporary relation of result
    tuples keyed by the grouping value (Section 3's extension)."""
    aggregate = coerce_aggregate(aggregate)
    temporary: Dict[Hashable, ResultTuple] = {}
    for row in rows:
        if qualification is not None and not qualification(row):
            continue
        key = group_key(row)
        holder = temporary.get(key)
        if holder is None:
            holder = ResultTuple(aggregate)
            temporary[key] = holder
        holder.absorb(value_of(row))
    return {key: holder.result() for key, holder in temporary.items()}
