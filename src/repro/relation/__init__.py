"""Temporal relation substrate: schemas, tuples, in-memory relations."""

from repro.relation.bitemporal import (
    BitemporalRelation,
    BitemporalVersion,
    TransactionOrderError,
)
from repro.relation.coalesce import coalesce_rows, coalesce_relation
from repro.relation.io import (
    RelationIOError,
    from_csv_text,
    read_csv,
    to_csv_text,
    write_csv,
)
from repro.relation.relation import RelationStatistics, TemporalRelation
from repro.relation.schema import (
    EMPLOYED_SCHEMA,
    Attribute,
    Schema,
    SchemaError,
)
from repro.relation.tuples import TemporalTuple, timestamp_sort_key

__all__ = [
    "Attribute",
    "Schema",
    "SchemaError",
    "EMPLOYED_SCHEMA",
    "TemporalTuple",
    "timestamp_sort_key",
    "TemporalRelation",
    "RelationStatistics",
    "coalesce_rows",
    "coalesce_relation",
    "read_csv",
    "write_csv",
    "to_csv_text",
    "from_csv_text",
    "RelationIOError",
    "BitemporalRelation",
    "BitemporalVersion",
    "TransactionOrderError",
]
