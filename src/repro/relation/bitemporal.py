"""Bitemporal relations: transaction time on top of valid time.

The paper's introduction distinguishes the two temporal dimensions:
"when the tuple was written to disk (known as transaction time), or
when the tuple was known to be valid (known as valid time)" — and
TSQL2, the language the paper targets, supports both.  The aggregation
algorithms operate on the *valid-time* dimension; this module supplies
the transaction-time substrate that turns an append-only history into
the valid-time relations they consume:

* a :class:`BitemporalRelation` is an append-only log of *versions*;
  each version carries explicit attribute values, a valid-time
  interval, and the transaction-time interval during which the
  database believed it (``[recorded_at, logically deleted)``);
* :meth:`BitemporalRelation.record` appends facts;
  :meth:`BitemporalRelation.rescind` closes a version's transaction
  time (nothing is ever physically deleted);
* :meth:`BitemporalRelation.as_of` reconstructs the valid-time
  :class:`~repro.relation.relation.TemporalRelation` the database
  contained at any past transaction instant — so "what did we think
  the headcount history was, as of last Tuesday" is simply a temporal
  aggregate over ``history.as_of(last_tuesday)``.

Transaction timestamps must be non-decreasing (the database writes in
commit order), which also means every ``as_of`` view is retroactively
bounded in the paper's Section 5.2 sense whenever the source feed is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence

from repro.core.interval import FOREVER
from repro.relation.relation import TemporalRelation
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple

__all__ = ["BitemporalVersion", "BitemporalRelation", "TransactionOrderError"]


class TransactionOrderError(ValueError):
    """Transaction timestamps must never go backwards."""


@dataclass(frozen=True)
class BitemporalVersion:
    """One immutable version in the append-only history."""

    values: tuple
    valid_start: int
    valid_end: int
    recorded_at: int  # transaction-time start (inclusive)
    rescinded_at: int  # transaction-time end (exclusive); FOREVER = live

    @property
    def is_current(self) -> bool:
        return self.rescinded_at >= FOREVER

    def known_at(self, transaction_instant: int) -> bool:
        """Did the database believe this version at that instant?"""
        return self.recorded_at <= transaction_instant < self.rescinded_at

    def to_tuple(self) -> TemporalTuple:
        return TemporalTuple(self.values, self.valid_start, self.valid_end)


class BitemporalRelation:
    """An append-only bitemporal store over one schema."""

    def __init__(self, schema: Schema, name: str = "bitemporal") -> None:
        self.schema = schema
        self.name = name
        self._versions: List[BitemporalVersion] = []
        self._clock = 0  # latest transaction timestamp seen

    # ------------------------------------------------------------------
    # Writing (transaction time only ever moves forward)
    # ------------------------------------------------------------------

    def _advance_clock(self, transaction_time: int) -> None:
        if transaction_time < self._clock:
            raise TransactionOrderError(
                f"transaction time {transaction_time} precedes the current "
                f"clock {self._clock}; commits are ordered"
            )
        self._clock = transaction_time

    def record(
        self,
        values: Sequence[Any],
        valid_start: int,
        valid_end: int,
        transaction_time: int,
    ) -> BitemporalVersion:
        """Append one fact, believed from ``transaction_time`` on."""
        if transaction_time < 0:
            raise TransactionOrderError("transaction time precedes the origin")
        self._advance_clock(transaction_time)
        checked = self.schema.validate_values(values)
        # Reuse valid-time validation from the in-memory relation path.
        probe = TemporalRelation(self.schema)
        probe.insert(checked, valid_start, valid_end)
        version = BitemporalVersion(
            values=checked,
            valid_start=valid_start,
            valid_end=valid_end,
            recorded_at=transaction_time,
            rescinded_at=FOREVER,
        )
        self._versions.append(version)
        return version

    def rescind(self, version: BitemporalVersion, transaction_time: int) -> BitemporalVersion:
        """Logically delete a version: close its transaction time.

        Returns the replacement (closed) version; the history keeps
        both — nothing is physically removed.
        """
        self._advance_clock(transaction_time)
        try:
            position = self._versions.index(version)
        except ValueError:
            raise KeyError("version is not part of this relation") from None
        if not version.is_current:
            raise TransactionOrderError("version was already rescinded")
        if transaction_time < version.recorded_at:
            raise TransactionOrderError(
                "cannot rescind a version before it was recorded"
            )
        closed = BitemporalVersion(
            values=version.values,
            valid_start=version.valid_start,
            valid_end=version.valid_end,
            recorded_at=version.recorded_at,
            rescinded_at=transaction_time,
        )
        self._versions[position] = closed
        return closed

    def correct(
        self,
        version: BitemporalVersion,
        transaction_time: int,
        *,
        values: Optional[Sequence[Any]] = None,
        valid_start: Optional[int] = None,
        valid_end: Optional[int] = None,
    ) -> BitemporalVersion:
        """A correction: rescind the old belief and record the new one
        in the same transaction instant."""
        self.rescind(version, transaction_time)
        return self.record(
            values if values is not None else version.values,
            valid_start if valid_start is not None else version.valid_start,
            valid_end if valid_end is not None else version.valid_end,
            transaction_time,
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[BitemporalVersion]:
        return iter(self._versions)

    @property
    def transaction_clock(self) -> int:
        return self._clock

    def current_versions(self) -> List[BitemporalVersion]:
        return [v for v in self._versions if v.is_current]

    def as_of(self, transaction_instant: int, name: Optional[str] = None) -> TemporalRelation:
        """The valid-time relation believed at ``transaction_instant``.

        Versions appear in recording order, so bounded-delay feeds give
        retroactively bounded (k-ordered) views — ready for the
        k-ordered aggregation tree without sorting (Section 6.3).
        """
        if transaction_instant < 0:
            raise TransactionOrderError("transaction time precedes the origin")
        rows = [
            version.to_tuple()
            for version in self._versions
            if version.known_at(transaction_instant)
        ]
        return TemporalRelation(
            self.schema,
            rows,
            name=name or f"{self.name}@{transaction_instant}",
        )

    def current(self, name: Optional[str] = None) -> TemporalRelation:
        """The presently-believed valid-time relation."""
        return self.as_of(self._clock, name=name or f"{self.name}@current")

    def __repr__(self) -> str:
        live = sum(1 for v in self._versions if v.is_current)
        return (
            f"BitemporalRelation({self.name!r}, {len(self._versions)} versions, "
            f"{live} current, clock={self._clock})"
        )
