"""Valid-time coalescing of temporal relations.

TSQL2 results are *coalesced* by valid time (paper Section 5.1): tuples
with identical explicit attribute values whose valid-time intervals
overlap or meet are merged into one tuple stamped with the union
interval.  The aggregation algorithms do not require coalesced input —
constant intervals are induced by whatever timestamps are present — but
coalescing changes COUNT semantics (duplicate periods collapse), so it
is offered as an explicit preprocessing step, mirroring the paper's
Section 7 note that duplicate elimination is best done before
aggregation.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.relation.relation import TemporalRelation
from repro.relation.tuples import TemporalTuple

__all__ = ["coalesce_rows", "coalesce_relation"]


def coalesce_rows(rows: Iterable[TemporalTuple]) -> List[TemporalTuple]:
    """Merge value-equivalent rows whose intervals overlap or meet.

    The result is sorted by (values, start) internally and returned in
    time order (start, end, values) for determinism.
    """
    by_values = {}
    for row in rows:
        by_values.setdefault(row.values, []).append(row)

    merged: List[TemporalTuple] = []
    for values, group in by_values.items():
        group.sort(key=lambda r: (r.start, r.end))
        current_start, current_end = group[0].start, group[0].end
        for row in group[1:]:
            if row.start <= current_end + 1:
                # Overlapping or adjacent: extend the running interval.
                current_end = max(current_end, row.end)
            else:
                merged.append(TemporalTuple(values, current_start, current_end))
                current_start, current_end = row.start, row.end
        merged.append(TemporalTuple(values, current_start, current_end))

    merged.sort(key=lambda r: (r.start, r.end, repr(r.values)))
    return merged


def coalesce_relation(relation: TemporalRelation) -> TemporalRelation:
    """A new relation with value-equivalent overlapping tuples merged."""
    return TemporalRelation(
        relation.schema,
        coalesce_rows(relation),
        name=f"{relation.name}_coalesced",
    )
