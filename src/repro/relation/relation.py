"""In-memory temporal relations.

A :class:`TemporalRelation` is the substrate every algorithm in this
package consumes: an ordered bag of :class:`TemporalTuple` rows sharing
a :class:`~repro.relation.schema.Schema`, each stamped with a closed
valid-time interval.

Two design points mirror the paper:

* **Scan accounting.**  All of the paper's algorithms read the relation
  exactly once; Tuma's earlier implementation read it twice (Section 4.1
  / Section 6).  :meth:`TemporalRelation.scan` counts the number of full
  scans so tests and benches can assert the 1-scan/2-scan distinction.
* **Order statistics.**  The choice of algorithm depends on whether the
  relation is sorted and, if nearly sorted, on its k-orderedness
  (Sections 5.2, 6.3).  :meth:`TemporalRelation.statistics` computes the
  numbers the query optimizer needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from hashlib import blake2b
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.columns import ColumnSet

from repro.core.interval import FOREVER, Interval, InvalidIntervalError
from repro.core.ordering import k_ordered_percentage, k_orderedness
from repro.exec.errors import InvalidInput
from repro.relation.schema import Schema
from repro.relation.tuples import TemporalTuple, timestamp_sort_key

__all__ = [
    "TemporalRelation",
    "RelationStatistics",
    "next_relation_uid",
    "fold_fingerprint",
    "fingerprint_rows",
]

#: Process-wide uid source shared by every cacheable relation container
#: (in-memory relations and heap files draw from the same sequence, so
#: a cache keyed by uid can never confuse the two).
_UID_COUNTER = itertools.count(1)

#: Mask keeping the chained fingerprint in one unsigned machine word.
_FINGERPRINT_MASK = (1 << 64) - 1


def next_relation_uid() -> int:
    """The next process-unique relation identifier."""
    return next(_UID_COUNTER)


def _stable_value_repr(value: Any) -> str:
    """One value's repr, with address-bearing default object reprs
    replaced by a type-only placeholder.

    ``str``/``bytes`` reprs are always value-determined, so a string
    that merely *contains* ``" at 0x"`` keeps its full contribution;
    anything else whose repr carries the substring (a default object
    repr, or a container holding one) is not stable across processes
    and degrades to its type name.
    """
    payload = repr(value)
    if " at 0x" in payload and not isinstance(value, (str, bytes)):
        return f"<{type(value).__name__}>"
    return payload


def fold_fingerprint(fingerprint: int, row: TemporalTuple) -> int:
    """Fold one appended row into a chained content fingerprint.

    The chain is order-sensitive (hash mixing, not XOR), so the same
    rows appended in a different order fingerprint differently —
    exactly the property an append-only cache validity check needs.
    The fingerprint is a cheap guard on top of (uid, version), not a
    cryptographic identity.

    The contribution must be **process-stable**: journal recovery
    verifies a chain written by a *previous* interpreter, and
    replication compares chains across *different* machines — so the
    per-process salt of built-in ``str`` hashing (PYTHONHASHSEED) is
    unusable here.  A short BLAKE2 digest over the row's canonical
    repr gives the same 64-bit contribution in every process.
    Individual values whose repr is not value-determined (default
    object reprs embed addresses) degrade to a type-only placeholder;
    the timestamps and every other value still contribute, and string
    values are never degraded (their reprs are value-determined even
    when they contain an address-like substring).
    """
    try:
        payload = repr((row.start, row.end, row.values))
    except Exception:  # pragma: no cover - pathological __repr__
        payload = repr((row.start, row.end))
    else:
        if " at 0x" in payload:
            # Rebuild per value so only the address-bearing elements
            # lose their contribution.  The "!canon" prefix keeps this
            # payload shape disjoint from the tuple-repr fast path.
            values = ", ".join(_stable_value_repr(v) for v in row.values)
            payload = f"!canon({row.start!r}, {row.end!r}, [{values}])"
    contribution = int.from_bytes(
        blake2b(payload.encode("utf-8"), digest_size=8).digest(), "big"
    )
    return ((fingerprint * 1_000_003) ^ contribution) & _FINGERPRINT_MASK


def fingerprint_rows(rows: Iterable[TemporalTuple]) -> int:
    """The chained fingerprint of an entire row sequence from scratch.

    Crash recovery's end-to-end check: the journal's COMMIT records
    carry the writer's incremental chain, and
    :func:`repro.storage.recovery.recover` recomputes it with this over
    a full scan of the restored file — the two agree only if the exact
    acknowledged rows were restored in the exact acknowledged order.
    """
    fingerprint = 0
    for row in rows:
        fingerprint = fold_fingerprint(fingerprint, row)
    return fingerprint


@dataclass(frozen=True)
class RelationStatistics:
    """Optimizer-facing summary of a relation (Sections 5.2 and 6.3)."""

    tuple_count: int
    unique_timestamps: int
    long_lived_count: int
    lifespan: Optional[Interval]
    is_totally_ordered: bool
    k: int
    k_ordered_percentage: float

    @property
    def long_lived_fraction(self) -> float:
        if self.tuple_count == 0:
            return 0.0
        return self.long_lived_count / self.tuple_count


class TemporalRelation:
    """An ordered, in-memory bag of temporal tuples over one schema."""

    #: Relations carry the version/fingerprint protocol the shard-result
    #: cache (:mod:`repro.cache`) keys its entries by.
    supports_result_cache = True

    def __init__(
        self,
        schema: Schema,
        rows: Optional[Iterable[TemporalTuple]] = None,
        name: str = "relation",
    ) -> None:
        self.schema = schema
        self.name = name
        self._rows: List[TemporalTuple] = list(rows) if rows is not None else []
        self.scan_count = 0
        self.uid = next_relation_uid()
        #: Monotonically increasing mutation counter; every insert,
        #: extend, and in-place reorder bumps it, so anything derived
        #: from the rows (statistics, cached results) can key on it.
        self.version = 0
        self._reorder_version = 0
        self._fingerprint = 0
        for row in self._rows:
            self._fingerprint = fold_fingerprint(self._fingerprint, row)
        self._statistics_cache: Optional[Tuple[int, RelationStatistics]] = None
        #: Version-keyed flat-column snapshots per attribute (None =
        #: timestamps only); served until the next mutation bumps
        #: :attr:`version`.
        self._columns_cache: dict = {}
        #: Set by ``read_csv(on_error="quarantine")`` to the load's
        #: :class:`~repro.relation.io.QuarantineReport`; None otherwise.
        self.quarantine: Optional[Any] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Tuple[Sequence[Any], int, int]],
        name: str = "relation",
    ) -> "TemporalRelation":
        """Build a relation from ``(values, start, end)`` triples,
        validating every row against the schema."""
        relation = cls(schema, name=name)
        for values, start, end in rows:
            relation.insert(values, start, end)
        return relation

    def insert(self, values: Sequence[Any], start: int, end: int) -> TemporalTuple:
        """Validate and append one tuple; returns the stored row.

        Endpoints must be plain integers (a float or bool endpoint
        silently corrupts sweep ordering downstream) and NaN attribute
        values are rejected — both raise
        :class:`~repro.exec.errors.InvalidInput`, which remains an
        ``InvalidIntervalError``/``ValueError`` for older callers.
        """
        row = self._validated_row(values, start, end)
        self._rows.append(row)
        self._note_appended([row])
        return row

    def _validated_row(
        self, values: Sequence[Any], start: int, end: int
    ) -> TemporalTuple:
        """Validate one ``(values, start, end)`` row without storing it."""
        if type(start) is not int or type(end) is not int:
            raise InvalidInput(
                f"valid-time endpoints must be plain integers, got "
                f"({start!r}, {end!r})"
            )
        if start < 0 or end < start:
            raise InvalidIntervalError(
                f"invalid valid-time bounds [{start}, {end}]"
            )
        if end > FOREVER:
            raise InvalidIntervalError(
                f"valid-time end {end} exceeds FOREVER"
            )
        for value in values:
            if isinstance(value, float) and value != value:
                raise InvalidInput(
                    f"NaN attribute value in tuple valid at [{start}, {end}]; "
                    "NaN does not order and would corrupt aggregate results"
                )
        return TemporalTuple(self.schema.validate_values(values), start, end)

    def append_batch(
        self, rows: Iterable[Tuple[Sequence[Any], int, int]]
    ) -> int:
        """Validate and append a batch of ``(values, start, end)`` rows
        as **one** mutation: a single version bump covers the whole
        batch, whatever its size.

        This is the serving layer's append unit — one client append
        operation maps to exactly one relation version, so a reader's
        pinned version identifies an exact prefix of append batches.
        Validation runs for *every* row before any row is stored; a
        malformed row rejects the whole batch, leaving the relation
        untouched.  Returns the number of rows appended (an empty batch
        appends nothing and does not bump the version).
        """
        validated = [
            self._validated_row(values, start, end)
            for values, start, end in rows
        ]
        if not validated:
            return 0
        self._rows.extend(validated)
        self._note_appended(validated)
        return len(validated)

    def extend(self, rows: Iterable[TemporalTuple]) -> None:
        """Append already-validated rows (e.g. from another relation)."""
        added = list(rows)
        if not added:
            return
        self._rows.extend(added)
        self._note_appended(added)

    def _note_appended(self, rows: Sequence[TemporalTuple]) -> None:
        """Account one append batch: version bump + fingerprint fold."""
        fingerprint = self._fingerprint
        for row in rows:
            fingerprint = fold_fingerprint(fingerprint, row)
        self._fingerprint = fingerprint
        self.version += 1
        self._statistics_cache = None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TemporalTuple]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> TemporalTuple:
        return self._rows[index]

    def rows(self) -> List[TemporalTuple]:
        """A copy of the row list (mutating it does not affect the relation)."""
        return list(self._rows)

    def iter_prefix(self, count: int) -> Iterator[TemporalTuple]:
        """Yield the first ``count`` rows without copying the row list.

        The serving layer's snapshot views read a pinned prefix of a
        relation other sessions keep appending to.  Appends only ever
        grow the underlying list (rows are immutable and never move),
        so iterating the first ``count`` positions is consistent even
        while concurrent appends land past them.
        """
        return itertools.islice(self._rows, count)

    def scan(self) -> Iterator[TemporalTuple]:
        """One sequential scan of the relation, counted for accounting.

        The paper's algorithms all make a single segmented scan of the
        input (Section 6); Tuma's baseline makes two.  Tests assert on
        :attr:`scan_count` to verify that property.
        """
        self.scan_count += 1
        return iter(self._rows)

    def scan_triples(
        self, attribute: Optional[str] = None
    ) -> Iterator[Tuple[int, int, Any]]:
        """One counted scan yielding ``(start, end, value)`` triples.

        ``attribute`` selects which explicit attribute feeds the
        aggregate; ``None`` yields ``value=None`` (sufficient for
        COUNT, which ignores values).
        """
        if attribute is None:
            extractor: Callable[[TemporalTuple], Any] = lambda row: None
        else:
            position = self.schema.position_of(attribute)
            extractor = lambda row: row.values[position]
        self.scan_count += 1
        for row in self._rows:
            yield (row.start, row.end, extractor(row))

    def value_extractor(self, attribute: Optional[str]) -> Callable[[TemporalTuple], Any]:
        """A fast accessor for one attribute (None for value-less COUNT)."""
        if attribute is None:
            return lambda row: None
        position = self.schema.position_of(attribute)
        return lambda row: row.values[position]

    def columns(self, attribute: Optional[str] = None) -> "ColumnSet":
        """A version-keyed flat-column snapshot of the relation.

        The columnar evaluators' feed: parallel ``array('q')``
        start/end columns plus the selected attribute's value column
        (``None`` keeps the snapshot timestamps-only for COUNT).
        Building the snapshot counts as one scan; repeat queries at the
        same version share it without rescanning — the column-layout
        analogue of the cached :meth:`statistics`.  Callers must treat
        the snapshot as read-only.
        """
        from array import array

        from repro.core.columns import ColumnSet

        cached = self._columns_cache.get(attribute)
        if cached is not None and cached[0] == self.version:
            snapshot: ColumnSet = cached[1]
            return snapshot
        self.scan_count += 1
        starts = array("q")
        ends = array("q")
        append_start = starts.append
        append_end = ends.append
        values: Optional[List[Any]]
        if attribute is None:
            for row in self._rows:
                append_start(row.start)
                append_end(row.end)
            values = None
        else:
            position = self.schema.position_of(attribute)
            values = []
            append_value = values.append
            for row in self._rows:
                append_start(row.start)
                append_end(row.end)
                append_value(row.values[position])
        snapshot = ColumnSet(
            starts,
            ends,
            values,
            batches=1,
            uid=self.uid,
            version=self.version,
            column_key=attribute or "",
        )
        self._columns_cache[attribute] = (self.version, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------

    @property
    def is_totally_ordered(self) -> bool:
        """True when rows are sorted by (start, end) — Section 5.2."""
        rows = self._rows
        return all(
            timestamp_sort_key(rows[i]) <= timestamp_sort_key(rows[i + 1])
            for i in range(len(rows) - 1)
        )

    def sorted_by_time(self, name: Optional[str] = None) -> "TemporalRelation":
        """A new relation with rows totally ordered by time.

        Sorting is the paper's recommended preprocessing step before the
        k-ordered tree with k=1 (Section 7).
        """
        ordered = sorted(self._rows, key=timestamp_sort_key)
        return TemporalRelation(
            self.schema, ordered, name=name or f"{self.name}_sorted"
        )

    def sort_in_place(self) -> None:
        """Sort this relation's rows by (start, end).

        An in-place reorder is *not* an append: the fingerprint is
        rebuilt from scratch and the append watermark advances, so
        cached results computed against the old row order can neither
        pure-hit nor delta-refresh — they must recompute.
        """
        self._rows.sort(key=timestamp_sort_key)
        fingerprint = 0
        for row in self._rows:
            fingerprint = fold_fingerprint(fingerprint, row)
        self._fingerprint = fingerprint
        self.version += 1
        self._reorder_version = self.version
        self._statistics_cache = None

    # ------------------------------------------------------------------
    # Result-cache protocol
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> int:
        """Chained content fingerprint over the rows, in row order."""
        return self._fingerprint

    @property
    def append_watermark(self) -> int:
        """Version of the last non-append mutation (in-place reorder).

        A cached result whose version is at least this watermark saw
        every row it covers in the current order; anything between its
        version and :attr:`version` is purely appended rows, which the
        cache can fold in incrementally.
        """
        return self._reorder_version

    def triples_since(
        self, index: int, attribute: Optional[str] = None
    ) -> List[Tuple[int, int, Any]]:
        """``(start, end, value)`` triples of rows appended after
        position ``index`` (uncounted: this is delta maintenance, not
        one of the paper's relation scans)."""
        extractor = self.value_extractor(attribute)
        return [
            (row.start, row.end, extractor(row)) for row in self._rows[index:]
        ]

    def verify_append_chain(self, row_count: int, fingerprint: int) -> bool:
        """Is the current content ``fingerprint`` reachable by appending
        rows ``row_count:`` onto a prefix fingerprinting ``fingerprint``?

        The cache's delta path trusts (uid, version, watermark) for the
        fast decision and calls this as the content-level guard: a
        relation whose prefix was edited in place behind the version
        counter's back fails the chain and falls back to a full
        recompute instead of serving stale rows.
        """
        if row_count > len(self._rows):
            return False
        for row in self._rows[row_count:]:
            fingerprint = fold_fingerprint(fingerprint, row)
        return fingerprint == self._fingerprint

    def reordered(
        self, permutation: Sequence[int], name: Optional[str] = None
    ) -> "TemporalRelation":
        """A new relation with rows permuted by ``permutation``."""
        if sorted(permutation) != list(range(len(self._rows))):
            raise ValueError("not a permutation of the row positions")
        rows = [self._rows[i] for i in permutation]
        return TemporalRelation(
            self.schema, rows, name=name or f"{self.name}_permuted"
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def lifespan(self) -> Optional[Interval]:
        """Hull of all valid-time intervals; None for an empty relation."""
        if not self._rows:
            return None
        start = min(row.start for row in self._rows)
        end = max(row.end for row in self._rows)
        return Interval(start, end)

    def unique_timestamps(self) -> int:
        """Distinct finite start/end instants (the paper's Figure 2 count:
        Employed has 6 unique timestamps; FOREVER is not a timestamp)."""
        stamps = set()
        for row in self._rows:
            stamps.add(row.start)
            stamps.add(row.end)
        stamps.discard(FOREVER)
        return len(stamps)

    def constant_interval_count(self) -> int:
        """Exact number of constant intervals this relation induces.

        A start ``s > ORIGIN`` begins a new interval at ``s``; an end
        ``e < FOREVER`` begins one at ``e + 1``; plus the initial
        interval (Figure 2: 6 unique timestamps -> 7 intervals).
        """
        boundaries = set()
        for row in self._rows:
            if row.start > 0:
                boundaries.add(row.start)
            if row.end < FOREVER:
                boundaries.add(row.end + 1)
        return len(boundaries) + 1

    def statistics(self) -> RelationStatistics:
        """Summary statistics used by the query planner (Section 6.3).

        Computing these double-scans the relation, and every
        ``strategy="auto"`` evaluation asks for them, so the (frozen)
        result is cached keyed by :attr:`version` — any mutation
        (insert, extend, or in-place reorder) moves the version and
        invalidates, even if a future mutation path forgets to clear
        the cache explicitly.
        """
        if (
            self._statistics_cache is not None
            and self._statistics_cache[0] == self.version
        ):
            return self._statistics_cache[1]
        span = self.lifespan
        span_length = span.duration if span is not None else 0
        long_lived = sum(
            1 for row in self._rows if span_length and row.is_long_lived(span_length)
        )
        starts = [timestamp_sort_key(row) for row in self._rows]
        k = k_orderedness(starts)
        statistics = RelationStatistics(
            tuple_count=len(self._rows),
            unique_timestamps=self.unique_timestamps(),
            long_lived_count=long_lived,
            lifespan=span,
            is_totally_ordered=(k == 0),
            k=k,
            k_ordered_percentage=k_ordered_percentage(starts, k) if k else 0.0,
        )
        self._statistics_cache = (self.version, statistics)
        return statistics

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"TemporalRelation({self.name!r}, {len(self._rows)} tuples, "
            f"schema={self.schema.names()})"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        header = " | ".join(self.schema.names()) + " | valid"
        lines = [header, "-" * len(header)]
        for row in self._rows[:limit]:
            rendered = " | ".join(str(v) for v in row.values)
            lines.append(f"{rendered} | {row.interval}")
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more)")
        return "\n".join(lines)
