"""CSV import/export for temporal relations.

Temporal relations travel as ordinary CSV with two extra trailing
columns, ``valid_start`` and ``valid_end`` (the closed valid-time
bounds; ``forever`` spells the open end):

.. code-block:: text

    name,salary,valid_start,valid_end
    Richard,40000,18,forever
    Karen,45000,8,20

:func:`read_csv` can work against a declared
:class:`~repro.relation.schema.Schema` (values are validated) or infer
one from the data: a column whose every value parses as int becomes
``int``, else ``float``, else ``str``.

Malformed *rows* need not abort the load: with
``on_error="quarantine"`` each bad row is set aside in a
:class:`QuarantineReport` — with its file/line context and the reason
it was refused — and the well-formed rows still load.  The report's
bounded capacity keeps a systematically broken file from being silently
swallowed: past the cap the load aborts after all.  Header problems
always abort; without a valid header there is no schema to quarantine
against.
"""

from __future__ import annotations

import csv
import io
from typing import Any, List, Optional, TextIO, Tuple, Union

from repro.core.interval import format_instant, parse_instant
from repro.relation.relation import TemporalRelation
from repro.relation.schema import Attribute, Schema, SchemaError

__all__ = [
    "read_csv",
    "write_csv",
    "to_csv_text",
    "from_csv_text",
    "RelationIOError",
    "QuarantinedRow",
    "QuarantineReport",
]

_TIME_COLUMNS = ("valid_start", "valid_end")

#: Quarantined rows kept before the load aborts anyway.
DEFAULT_QUARANTINE_CAP = 100


class RelationIOError(ValueError):
    """Raised for malformed temporal CSV files."""


class QuarantinedRow:
    """One refused CSV row with enough context to fix it at the source."""

    __slots__ = ("source", "line", "fields", "reason")

    def __init__(
        self, source: str, line: int, fields: List[str], reason: str
    ) -> None:
        self.source = source
        self.line = line
        self.fields = fields
        self.reason = reason

    def __repr__(self) -> str:
        return f"{self.source}:{self.line}: {self.reason}"


class QuarantineReport:
    """Where ``read_csv(on_error="quarantine")`` records refused rows."""

    __slots__ = ("cap", "rows", "loaded", "capped")

    def __init__(self, cap: int = DEFAULT_QUARANTINE_CAP) -> None:
        if cap < 1:
            raise ValueError("quarantine cap must be at least 1")
        self.cap = cap
        self.rows: List[QuarantinedRow] = []
        #: Well-formed rows that made it into the relation.
        self.loaded = 0
        #: Set when the cap was hit (the load then aborts).
        self.capped = False

    def __len__(self) -> int:
        return len(self.rows)

    def add(self, row: QuarantinedRow) -> bool:
        """Record one refusal; returns False once the cap is exceeded."""
        if len(self.rows) >= self.cap:
            self.capped = True
            return False
        self.rows.append(row)
        return True

    def summary(self) -> str:
        """One line per refusal plus a totals line, for logs and shells."""
        lines = [repr(row) for row in self.rows]
        lines.append(
            f"{self.loaded} row(s) loaded, {len(self.rows)} quarantined"
            + (" (cap reached)" if self.capped else "")
        )
        return "\n".join(lines)


def _open_for_read(source: Union[str, TextIO]) -> "tuple[TextIO, bool]":
    if isinstance(source, str):
        return open(source, "r", newline=""), True
    return source, False


def _open_for_write(target: Union[str, TextIO]) -> "tuple[TextIO, bool]":
    if isinstance(target, str):
        return open(target, "w", newline=""), True
    return target, False


def write_csv(relation: TemporalRelation, target: Union[str, TextIO]) -> None:
    """Write ``relation`` as temporal CSV (path or open text file)."""
    handle, owned = _open_for_write(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(list(relation.schema.names()) + list(_TIME_COLUMNS))
        for row in relation:
            writer.writerow(
                [str(value) for value in row.values]
                + [format_instant(row.start), format_instant(row.end)]
            )
    finally:
        if owned:
            handle.close()


def _infer_schema(names: List[str], columns: List[List[str]]) -> Schema:
    attributes = []
    for name, values in zip(names, columns):
        kind = "int"
        for value in values:
            try:
                int(value)
            except ValueError:
                kind = "float"
                break
        if kind == "float":
            for value in values:
                try:
                    float(value)
                except ValueError:
                    kind = "str"
                    break
        width = 0
        if kind == "str":
            longest = max((len(v.encode("utf-8")) for v in values), default=1)
            width = max(8, longest)
        attributes.append(Attribute(name, kind, width))
    return Schema(tuple(attributes))


def _parse_row(schema: Schema, record: List[str]) -> Tuple[List[Any], int, int]:
    """One raw CSV record -> (values, start, end); raises on bad cells."""
    values: List[Any] = []
    for attribute, cell in zip(schema.attributes, record):
        cell = cell.strip()
        if attribute.type == "int":
            try:
                values.append(int(cell))
            except ValueError:
                raise RelationIOError(
                    f"value {cell!r} is not an int for attribute "
                    f"{attribute.name!r}"
                ) from None
        elif attribute.type == "float":
            try:
                values.append(float(cell))
            except ValueError:
                raise RelationIOError(
                    f"value {cell!r} is not a float for attribute "
                    f"{attribute.name!r}"
                ) from None
        else:
            values.append(cell)
    start = parse_instant(record[-2])
    end = parse_instant(record[-1])
    return values, start, end


def read_csv(
    source: Union[str, TextIO],
    schema: Optional[Schema] = None,
    name: str = "from_csv",
    *,
    on_error: str = "raise",
    report: Optional[QuarantineReport] = None,
) -> TemporalRelation:
    """Read a temporal CSV into a relation.

    The last two columns must be ``valid_start`` and ``valid_end``.
    With ``schema=None`` the explicit-attribute types are inferred from
    the data; otherwise the header must match the schema's attribute
    names (case-insensitively) and every value is validated.

    ``on_error`` selects the malformed-*row* policy: ``"raise"`` (the
    default) aborts on the first bad row; ``"quarantine"`` records each
    bad row — wrong field count, unparseable value, bad interval — in
    ``report`` (one is created if not given; read it back via the
    relation's ``quarantine`` attribute) and keeps loading.  When the
    report's cap is exceeded the load aborts with
    :class:`RelationIOError` after all: a file that is mostly garbage
    should fail loudly, not load quietly.  Header errors always abort.
    """
    if on_error not in ("raise", "quarantine"):
        raise ValueError(
            f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
        )
    quarantine = on_error == "quarantine"
    if quarantine and report is None:
        report = QuarantineReport()
    source_name = source if isinstance(source, str) else "<stream>"
    handle, owned = _open_for_read(source)
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RelationIOError("empty CSV: no header row") from None
        if len(header) < 3:
            raise RelationIOError(
                "temporal CSV needs at least one attribute plus "
                "valid_start, valid_end"
            )
        if tuple(h.strip().lower() for h in header[-2:]) != _TIME_COLUMNS:
            raise RelationIOError(
                f"last two columns must be {_TIME_COLUMNS}, got {header[-2:]}"
            )
        attribute_names = [h.strip() for h in header[:-2]]

        raw_rows: List[Tuple[int, List[str]]] = []
        for line_number, record in enumerate(reader, start=2):
            if not record or all(not cell.strip() for cell in record):
                continue
            if len(record) != len(header):
                reason = (
                    f"expected {len(header)} fields, got {len(record)}"
                )
                if not quarantine:
                    raise RelationIOError(f"line {line_number}: {reason}")
                assert report is not None
                if not report.add(
                    QuarantinedRow(source_name, line_number, record, reason)
                ):
                    raise RelationIOError(
                        f"more than {report.cap} malformed rows in "
                        f"{source_name}; aborting the load"
                    )
                continue
            raw_rows.append((line_number, record))

        if schema is None:
            columns = [
                [record[i] for _line, record in raw_rows]
                for i in range(len(attribute_names))
            ]
            schema = _infer_schema(attribute_names, columns)
        else:
            declared = [a.name.lower() for a in schema.attributes]
            seen = [n.lower() for n in attribute_names]
            if declared != seen:
                raise RelationIOError(
                    f"header {attribute_names} does not match schema "
                    f"attributes {schema.names()}"
                )

        relation = TemporalRelation(schema, name=name)
        for line_number, record in raw_rows:
            try:
                values, start, end = _parse_row(schema, record)
                relation.insert(values, start, end)
            except (ValueError, SchemaError) as exc:
                if not quarantine:
                    raise RelationIOError(
                        f"row {line_number}: {exc}"
                    ) from exc
                assert report is not None
                if not report.add(
                    QuarantinedRow(source_name, line_number, record, str(exc))
                ):
                    raise RelationIOError(
                        f"more than {report.cap} malformed rows in "
                        f"{source_name}; aborting the load"
                    ) from exc
                continue
            if report is not None:
                report.loaded += 1
        if report is not None:
            relation.quarantine = report
        return relation
    finally:
        if owned:
            handle.close()


def to_csv_text(relation: TemporalRelation) -> str:
    """The relation as a CSV string (convenience for small relations)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_text(
    text: str,
    schema: Optional[Schema] = None,
    name: str = "from_csv",
    *,
    on_error: str = "raise",
    report: Optional[QuarantineReport] = None,
) -> TemporalRelation:
    """Parse a CSV string (convenience counterpart of :func:`to_csv_text`)."""
    return read_csv(
        io.StringIO(text),
        schema=schema,
        name=name,
        on_error=on_error,
        report=report,
    )
