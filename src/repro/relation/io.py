"""CSV import/export for temporal relations.

Temporal relations travel as ordinary CSV with two extra trailing
columns, ``valid_start`` and ``valid_end`` (the closed valid-time
bounds; ``forever`` spells the open end):

.. code-block:: text

    name,salary,valid_start,valid_end
    Richard,40000,18,forever
    Karen,45000,8,20

:func:`read_csv` can work against a declared
:class:`~repro.relation.schema.Schema` (values are validated) or infer
one from the data: a column whose every value parses as int becomes
``int``, else ``float``, else ``str``.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, TextIO, Union

from repro.core.interval import format_instant, parse_instant
from repro.relation.relation import TemporalRelation
from repro.relation.schema import Attribute, Schema, SchemaError

__all__ = [
    "read_csv",
    "write_csv",
    "to_csv_text",
    "from_csv_text",
    "RelationIOError",
]

_TIME_COLUMNS = ("valid_start", "valid_end")


class RelationIOError(ValueError):
    """Raised for malformed temporal CSV files."""


def _open_for_read(source: Union[str, TextIO]) -> "tuple[TextIO, bool]":
    if isinstance(source, str):
        return open(source, "r", newline=""), True
    return source, False


def _open_for_write(target: Union[str, TextIO]) -> "tuple[TextIO, bool]":
    if isinstance(target, str):
        return open(target, "w", newline=""), True
    return target, False


def write_csv(relation: TemporalRelation, target: Union[str, TextIO]) -> None:
    """Write ``relation`` as temporal CSV (path or open text file)."""
    handle, owned = _open_for_write(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(list(relation.schema.names()) + list(_TIME_COLUMNS))
        for row in relation:
            writer.writerow(
                [str(value) for value in row.values]
                + [format_instant(row.start), format_instant(row.end)]
            )
    finally:
        if owned:
            handle.close()


def _infer_schema(names: List[str], columns: List[List[str]]) -> Schema:
    attributes = []
    for name, values in zip(names, columns):
        kind = "int"
        for value in values:
            try:
                int(value)
            except ValueError:
                kind = "float"
                break
        if kind == "float":
            for value in values:
                try:
                    float(value)
                except ValueError:
                    kind = "str"
                    break
        width = 0
        if kind == "str":
            longest = max((len(v.encode("utf-8")) for v in values), default=1)
            width = max(8, longest)
        attributes.append(Attribute(name, kind, width))
    return Schema(tuple(attributes))


def read_csv(
    source: Union[str, TextIO],
    schema: Optional[Schema] = None,
    name: str = "from_csv",
) -> TemporalRelation:
    """Read a temporal CSV into a relation.

    The last two columns must be ``valid_start`` and ``valid_end``.
    With ``schema=None`` the explicit-attribute types are inferred from
    the data; otherwise the header must match the schema's attribute
    names (case-insensitively) and every value is validated.
    """
    handle, owned = _open_for_read(source)
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RelationIOError("empty CSV: no header row") from None
        if len(header) < 3:
            raise RelationIOError(
                "temporal CSV needs at least one attribute plus "
                "valid_start, valid_end"
            )
        if tuple(h.strip().lower() for h in header[-2:]) != _TIME_COLUMNS:
            raise RelationIOError(
                f"last two columns must be {_TIME_COLUMNS}, got {header[-2:]}"
            )
        attribute_names = [h.strip() for h in header[:-2]]

        raw_rows: List[List[str]] = []
        for line_number, record in enumerate(reader, start=2):
            if not record or all(not cell.strip() for cell in record):
                continue
            if len(record) != len(header):
                raise RelationIOError(
                    f"line {line_number}: expected {len(header)} fields, "
                    f"got {len(record)}"
                )
            raw_rows.append(record)

        if schema is None:
            columns = [
                [record[i] for record in raw_rows]
                for i in range(len(attribute_names))
            ]
            schema = _infer_schema(attribute_names, columns)
        else:
            declared = [a.name.lower() for a in schema.attributes]
            seen = [n.lower() for n in attribute_names]
            if declared != seen:
                raise RelationIOError(
                    f"header {attribute_names} does not match schema "
                    f"attributes {schema.names()}"
                )

        relation = TemporalRelation(schema, name=name)
        for line_offset, record in enumerate(raw_rows):
            values = []
            for attribute, cell in zip(schema.attributes, record):
                cell = cell.strip()
                if attribute.type == "int":
                    try:
                        values.append(int(cell))
                    except ValueError:
                        raise RelationIOError(
                            f"value {cell!r} is not an int for attribute "
                            f"{attribute.name!r}"
                        ) from None
                elif attribute.type == "float":
                    try:
                        values.append(float(cell))
                    except ValueError:
                        raise RelationIOError(
                            f"value {cell!r} is not a float for attribute "
                            f"{attribute.name!r}"
                        ) from None
                else:
                    values.append(cell)
            try:
                start = parse_instant(record[-2])
                end = parse_instant(record[-1])
                relation.insert(values, start, end)
            except (ValueError, SchemaError) as exc:
                raise RelationIOError(
                    f"row {line_offset + 2}: {exc}"
                ) from exc
        return relation
    finally:
        if owned:
            handle.close()


def to_csv_text(relation: TemporalRelation) -> str:
    """The relation as a CSV string (convenience for small relations)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_text(
    text: str, schema: Optional[Schema] = None, name: str = "from_csv"
) -> TemporalRelation:
    """Parse a CSV string (convenience counterpart of :func:`to_csv_text`)."""
    return read_csv(io.StringIO(text), schema=schema, name=name)
