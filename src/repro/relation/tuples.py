"""Temporal tuples: explicit attribute values plus a valid-time interval.

A :class:`TemporalTuple` is deliberately tiny — a NamedTuple of
``(values, start, end)`` — because the aggregation algorithms touch
millions of them in the benchmarks.  The valid-time interval is stored
as two plain ints (``start``, ``end``, closed on both ends) rather than
an :class:`~repro.core.interval.Interval` object so hot loops avoid an
attribute indirection; :attr:`TemporalTuple.interval` materialises the
object form on demand.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Tuple

from repro.core.interval import Interval, format_instant

__all__ = ["TemporalTuple", "timestamp_sort_key"]


class TemporalTuple(NamedTuple):
    """One row of a temporal relation.

    ``values`` holds the explicit attributes in schema order; ``start``
    and ``end`` are the closed valid-time bounds.
    """

    values: Tuple[Any, ...]
    start: int
    end: int

    @property
    def interval(self) -> Interval:
        """The valid-time interval as an :class:`Interval` object."""
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        """Number of instants this tuple is valid for."""
        return self.end - self.start + 1

    def value(self, position: int) -> Any:
        """The explicit attribute at ``position`` (schema order)."""
        return self.values[position]

    def overlaps_instant(self, instant: int) -> bool:
        return self.start <= instant <= self.end

    def is_long_lived(self, lifespan: int) -> bool:
        """Paper definition: duration at least 20% of the relation lifespan."""
        return self.duration >= 0.2 * lifespan

    def pretty(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return (
            f"({rendered}) @ [{format_instant(self.start)}, "
            f"{format_instant(self.end)}]"
        )


def timestamp_sort_key(row: TemporalTuple) -> Tuple[int, int]:
    """Sort key for *totally ordered by time* (Section 5.2).

    Tuples sort by start time, with ties broken by end time.
    """
    return (row.start, row.end)
