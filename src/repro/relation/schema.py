"""Relation schemas for temporal relations.

The paper's test relation (Section 6) has four germane attributes —
``name`` (6 bytes), ``salary`` (4 bytes), ``start`` (4 bytes) and
``stop`` (4 bytes) — plus 110 bytes of payload the aggregate never
examines, for a 128-byte tuple.  A :class:`Schema` describes the
*explicit* (non-timestamp) attributes; the valid-time interval is
carried separately on every tuple, mirroring TSQL2's implicit
timestamp.

Schemas serve two masters:

* the in-memory :class:`~repro.relation.relation.TemporalRelation`,
  which uses them for attribute lookup and value validation, and
* the fixed-width storage codec in :mod:`repro.storage.codec`, which
  uses the declared byte widths to lay tuples out on 128-byte records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Tuple

__all__ = [
    "AttributeType",
    "Attribute",
    "Schema",
    "SchemaError",
    "EMPLOYED_SCHEMA",
]


class SchemaError(ValueError):
    """Raised for malformed schemas or values that do not fit them."""


#: The attribute types the fixed-width codec knows how to serialise.
AttributeType = str
_VALID_TYPES = {"str", "int", "float"}

#: Default byte widths per type for on-disk layout (paper: 4-byte ints).
_DEFAULT_WIDTHS = {"str": 16, "int": 4, "float": 8}


@dataclass(frozen=True, slots=True)
class Attribute:
    """One named, typed column of a temporal relation."""

    name: str
    type: AttributeType = "str"
    width: int = 0  # on-disk bytes; 0 means "use the type default"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.type not in _VALID_TYPES:
            raise SchemaError(
                f"attribute {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {sorted(_VALID_TYPES)}"
            )
        if self.width < 0:
            raise SchemaError(f"attribute {self.name!r} has negative width")
        if self.width == 0:
            object.__setattr__(self, "width", _DEFAULT_WIDTHS[self.type])

    def validate(self, value: Any) -> Any:
        """Coerce-and-check one value for this attribute.

        Integers are accepted for float columns (widening); everything
        else must already have the declared type.
        """
        if self.type == "str":
            if not isinstance(value, str):
                raise SchemaError(
                    f"attribute {self.name!r} expects str, got {value!r}"
                )
            return value
        if self.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"attribute {self.name!r} expects int, got {value!r}"
                )
            return value
        # float column: accept ints, coerce to float
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(
                f"attribute {self.name!r} expects float, got {value!r}"
            )
        return float(value)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with by-name lookup.

    The valid-time interval is *not* an attribute: every
    :class:`~repro.relation.tuples.TemporalTuple` carries it implicitly,
    following TSQL2.

    ``padding`` declares extra per-tuple bytes the aggregate never
    reads; the paper pads its tuples to 128 bytes this way and the
    storage codec honours it.
    """

    attributes: Tuple[Attribute, ...]
    padding: int = 0
    _index: Dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")
        index: Dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            key = attribute.name.lower()
            if key in index:
                raise SchemaError(f"duplicate attribute name: {attribute.name!r}")
            index[key] = position
        if self.padding < 0:
            raise SchemaError("padding must be non-negative")
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, *specs: "str | Attribute", padding: int = 0) -> "Schema":
        """Build a schema from compact ``"name:type[:width]"`` specs.

        >>> Schema.of("name:str:6", "salary:int")
        """
        attributes = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attributes.append(spec)
                continue
            parts = spec.split(":")
            if len(parts) == 1:
                attributes.append(Attribute(parts[0]))
            elif len(parts) == 2:
                attributes.append(Attribute(parts[0], parts[1]))
            elif len(parts) == 3:
                attributes.append(Attribute(parts[0], parts[1], int(parts[2])))
            else:
                raise SchemaError(f"bad attribute spec: {spec!r}")
        return cls(tuple(attributes), padding=padding)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def position_of(self, name: str) -> int:
        """Index of the attribute called ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            known = ", ".join(a.name for a in self.attributes)
            raise SchemaError(
                f"no attribute {name!r} in schema ({known})"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """The attribute called ``name`` (case-insensitive)."""
        return self.attributes[self.position_of(name)]

    def has_attribute(self, name: str) -> bool:
        return name.lower() in self._index

    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def validate_values(self, values: Iterable[Any]) -> Tuple[Any, ...]:
        """Validate one tuple's worth of attribute values."""
        values = tuple(values)
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"expected {len(self.attributes)} values, got {len(values)}"
            )
        return tuple(
            attribute.validate(value)
            for attribute, value in zip(self.attributes, values)
        )

    @property
    def record_bytes(self) -> int:
        """On-disk bytes per tuple: attributes + two timestamps + padding.

        Timestamps are 4 bytes each, as in the paper (Section 6).
        """
        return sum(a.width for a in self.attributes) + 8 + self.padding


#: The paper's Employed relation schema, kept at its 128-byte tuple
#: size: name, 4-byte salary, two 4-byte timestamps, and payload bytes
#: the aggregate never reads.  (The paper quotes a 6-byte name field,
#: which cannot actually hold "Richard"; we widen it to 8 bytes and
#: shrink the padding so the record stays 128 bytes.)
EMPLOYED_SCHEMA = Schema.of("name:str:8", "salary:int:4", padding=108)
