"""Streaming aggregation of a retroactively bounded event log.

Section 5.2 of the paper: "if a programmer was hired on Tuesday, we
probably write her new salary information to the database on Tuesday or
Wednesday" — real feeds are *retroactively bounded*, arriving at most a
bounded delay after the facts they record, which makes them k-ordered.
The k-ordered aggregation tree then streams results with a bounded
working set, no sort required (Section 6.3).

This example simulates a fleet of sensors reporting "session" intervals
to a collector.  Reports arrive roughly in start order but each can be
delayed by up to MAX_DELAY positions.  We compare:

* the aggregation tree — correct, but holds every constant interval
  until the end;
* the k-ordered tree with k = MAX_DELAY — same answer, tiny peak
  memory, and results emitted while the stream is still running;
* the k-ordered tree with an understated k — which *detects* the
  ordering violation instead of silently computing garbage.

Run:  python examples/retroactive_log.py
"""

import random

from repro.core import (
    AggregationTreeEvaluator,
    KOrderedTreeEvaluator,
    KOrderViolationError,
    k_orderedness,
)

STREAM_LENGTH = 5000
MAX_DELAY = 25  # positions a report may arrive late
SESSION_MAX = 40  # instants a session lasts at most


def simulate_stream(seed: int = 42):
    """Sessions in true start order, then shuffled by bounded delays."""
    rng = random.Random(seed)
    clock = 0
    sessions = []
    for _ in range(STREAM_LENGTH):
        clock += rng.randint(0, 3)
        sessions.append((clock, clock + rng.randint(1, SESSION_MAX), None))
    # Bounded-delay arrival: a random, at-most-MAX_DELAY-position shuffle.
    arrived = sessions[:]
    for index in range(len(arrived) - 1, 0, -1):
        other = max(0, index - rng.randint(0, MAX_DELAY // 2))
        arrived[index], arrived[other] = arrived[other], arrived[index]
    return arrived


def main() -> None:
    stream = simulate_stream()
    keys = [(s, e) for s, e, _v in stream]
    actual_k = k_orderedness(keys)
    print(f"simulated stream: {len(stream)} session reports, "
          f"measured k-orderedness = {actual_k} (bounded delay)")
    print()

    # Full aggregation tree: needs the whole structure in memory.
    tree = AggregationTreeEvaluator("count")
    tree_result = tree.evaluate(list(stream))
    print(f"aggregation tree : {len(tree_result)} constant intervals, "
          f"peak nodes {tree.space.peak_nodes} "
          f"({tree.space.peak_bytes:,} modeled bytes)")

    # k-ordered tree with an honest k: identical answer, bounded state.
    ktree = KOrderedTreeEvaluator("count", k=actual_k)
    ktree_result = ktree.evaluate(list(stream))
    assert ktree_result.rows == tree_result.rows
    ratio = tree.space.peak_nodes / max(1, ktree.space.peak_nodes)
    print(f"k-ordered tree   : same result, peak nodes "
          f"{ktree.space.peak_nodes} ({ktree.space.peak_bytes:,} modeled "
          f"bytes) — {ratio:.0f}x smaller working set")
    print()

    # Busiest moment of the day, straight off the stream.
    busiest = max(
        (row for row in ktree_result), key=lambda row: row.value
    )
    print(f"busiest period: {busiest.value} concurrent sessions during "
          f"[{busiest.start}, {busiest.end}]")
    print()

    # Understate k and the evaluator refuses to produce silent garbage.
    understated = max(0, actual_k // 8)
    try:
        KOrderedTreeEvaluator("count", k=understated).evaluate(list(stream))
    except KOrderViolationError as error:
        print(f"with understated k={understated}: correctly rejected ->")
        print(f"  KOrderViolationError: {error}")
    else:
        print(f"with understated k={understated}: stream happened to satisfy "
              "the tighter bound (no violation encountered)")


if __name__ == "__main__":
    main()
