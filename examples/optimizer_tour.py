"""A tour of the Section 6.3 query-optimizer rules, storage included.

The paper closes its evaluation with guidance for a query analyzer:
which algorithm to run given the relation's sortedness, size and
long-lived-tuple mix, and whether memory is cheaper than the disk I/O
of a sort.  This example walks the planner through four differently
shaped relations — checking its choice against an actual measurement —
and then runs the "sort, then k-ordered tree with k = 1" strategy over
the paged storage substrate, counting real page I/O.

Run:  python examples/optimizer_tour.py
"""

import time

from repro import TemporalRelation, choose_strategy, temporal_aggregate
from repro.bench import measure_strategy
from repro.storage import HeapFile, SortStatistics, external_sort
from repro.workload import (
    WorkloadParameters,
    disorder_relation,
    generate_relation,
)

N = 4096


def relation_zoo():
    """Four relations exercising the planner's four regimes."""
    base = generate_relation(WorkloadParameters(tuples=N, seed=11))
    unordered = base  # generation order is random
    ordered = base.sorted_by_time("ordered")
    nearly = disorder_relation(base, k=8, percentage=0.10, seed=3, name="nearly")

    # Coarse granularity: every timestamp on one of ~12 "semester end"
    # days (the paper's student-records example) -> few constant
    # intervals -> linked list is adequate.
    coarse = TemporalRelation(base.schema, name="coarse")
    for index, row in enumerate(base):
        day = (index % 12) * 1000
        coarse.insert(row.values, day, day + 999)
    return [unordered, ordered, nearly, coarse]


def main() -> None:
    print("Planner decisions (and a measurement sanity check)\n")
    for relation in relation_zoo():
        stats = relation.statistics()
        decision = choose_strategy(stats)
        print(f"relation {relation.name!r}: n={stats.tuple_count}, "
              f"unique timestamps={stats.unique_timestamps}, "
              f"k={stats.k}, sorted={stats.is_totally_ordered}")
        print(f"  -> {decision.describe()}")
        print(f"     estimated structure: {decision.estimated_bytes:,} bytes")

        started = time.perf_counter()
        result = temporal_aggregate(relation, "count")
        elapsed = time.perf_counter() - started
        print(f"     ran in {elapsed:.3f}s producing {len(result)} "
              f"constant intervals")

        # Compare against the always-works baseline on the same input.
        triples = list(relation.scan_triples())
        baseline = measure_strategy("aggregation_tree", triples)
        print(f"     (plain aggregation tree on the same input: "
              f"{baseline.seconds:.3f}s, peak {baseline.peak_bytes:,} bytes)")
        print()

    # ------------------------------------------------------------------
    # The paper's "simplest strategy", storage-backed and I/O-counted:
    # sort the relation externally, then k-ordered tree with k = 1.
    # ------------------------------------------------------------------
    print('The "sort, then ktree k=1" strategy over paged storage\n')
    relation = generate_relation(
        WorkloadParameters(tuples=N, long_lived_percent=40, seed=23)
    )
    heap = HeapFile.from_relation(relation)
    print(f"heap file: {len(heap)} tuples on {heap.page_count} pages "
          f"({heap.size_bytes:,} bytes, {heap.records_per_page} records/page)")

    sort_stats = SortStatistics()
    sorted_heap = external_sort(heap, run_pages=8, statistics=sort_stats)
    print(f"external sort: {sort_stats.runs} runs, "
          f"{sort_stats.total_page_io} pages of run/output I/O")

    started = time.perf_counter()
    evaluator_result = measure_strategy(
        "kordered_tree", list(sorted_heap.scan_triples()), k=1
    )
    elapsed = time.perf_counter() - started
    print(f"ktree k=1 over the sorted heap: {elapsed:.3f}s, "
          f"peak {evaluator_result.peak_bytes:,} modeled bytes, "
          f"{evaluator_result.result_rows} constant intervals")
    print(f"scan I/O: {sorted_heap.buffer.stats}")


if __name__ == "__main__":
    main()
