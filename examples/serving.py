"""Serving: many clients, one engine, exact answers under contention.

Starts a live query server on the paper's Employed relation (Figure 1)
and walks the three serving guarantees end to end over a real loopback
socket:

1. snapshot pinning — a reader's reply names the relation version it
   ran against, and concurrent appends never tear it;
2. admission control — connections past ``max_sessions`` get a *typed*
   ``ServerOverloaded`` with a retry-after hint, not a hang;
3. observability — the ``stats`` frame shows sessions, the load
   ladder, and the shared result cache.

Run:  python examples/serving.py
"""

import threading

from repro.serve import (
    QueryClient,
    QueryServer,
    ServerConfig,
    ServerOverloaded,
    ServerRunner,
)
from repro.workload import employed_relation

QUERY = "SELECT COUNT(name), MAX(salary) FROM employed"


def main() -> None:
    server = QueryServer(ServerConfig(max_sessions=3, workers=2))
    server.register(employed_relation(), name="employed")
    runner = ServerRunner(server)
    runner.start()
    try:
        # ------------------------------------------------------------
        # 1. Concurrent readers and a writer: every reply is pinned.
        # ------------------------------------------------------------
        replies = []

        def reader() -> None:
            with QueryClient(runner.host, runner.port) as client:
                replies.append(client.query(QUERY))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        with QueryClient(runner.host, runner.port) as writer:
            version, row_count = writer.append(
                "employed", [["Nick", 50_000, 10, 15]]
            )
            print(f"append acknowledged at version {version} "
                  f"({row_count} rows)")
        for thread in threads:
            thread.join()
        for reply in replies:
            print(f"reader pinned v{reply.pinned_version} "
                  f"({reply.pinned_row_count} rows): "
                  f"{len(reply.rows)} constant intervals")

        # A fresh reader sees the appended row, exactly once.
        with QueryClient(runner.host, runner.port) as client:
            after = client.query(QUERY)
            print(f"post-append read pinned v{after.pinned_version} "
                  f"({after.pinned_row_count} rows)")
        print()

        # ------------------------------------------------------------
        # 2. Admission control: the 4th session is refused, typed.
        # ------------------------------------------------------------
        holders = [QueryClient(runner.host, runner.port) for _ in range(3)]
        try:
            QueryClient(runner.host, runner.port)
        except ServerOverloaded as refused:
            print(f"4th connection refused: reason={refused.reason!r}, "
                  f"retry after {refused.retry_after_ms} ms")
        finally:
            for holder in holders:
                holder.close()
        print()

        # ------------------------------------------------------------
        # 3. The stats frame: admission, scheduler, cache, tables.
        # ------------------------------------------------------------
        with QueryClient(runner.host, runner.port) as client:
            stats = client.stats()
        admission = stats["admission"]
        print("server stats:")
        print(f"  sessions admitted/rejected: "
              f"{admission['sessions_admitted']}/"
              f"{admission['sessions_rejected']}")
        print(f"  statements admitted:        "
              f"{admission['statements_admitted']}")
        print(f"  load ladder level:          {admission['level']}")
        print(f"  employed rows:              "
              f"{stats['tables']['employed']['rows']}")
    finally:
        runner.stop()


if __name__ == "__main__":
    main()
