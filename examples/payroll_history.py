"""Payroll history: department-level temporal aggregates.

The scenario motivating the paper's introduction — "the average salary
of employees grouped by department … a time-varying value" (Section 2).
We build a small payroll history with hires, raises (a raise ends one
tuple and starts another) and departures, then ask:

* the headcount of the whole company over time,
* the average salary per department over time (GROUP BY + instant
  grouping),
* quarterly payroll cost (GROUP BY SPAN — the Section 7 extension),
* who earned the top salary over time (MAX).

Run:  python examples/payroll_history.py
"""

from repro import Schema, TemporalRelation, temporal_aggregate
from repro.core import grouped_temporal_aggregate
from repro.tsql2 import Database

#: Instants are days since the company was founded.
QUARTER = 90

PAYROLL_SCHEMA = Schema.of("name:str:12", "dept:str:12", "salary:int")

#: (name, dept, salary) valid over [start, end]: each row is one salary
#: period; a raise closes the old period and opens a new one.
HISTORY = [
    (("Ada", "Engineering", 90_000), 0, 179),
    (("Ada", "Engineering", 105_000), 180, 599),  # raise on day 180
    (("Grace", "Engineering", 98_000), 30, 599),
    (("Edsger", "Research", 88_000), 0, 359),  # leaves after day 359
    (("Barbara", "Research", 92_000), 60, 599),
    (("Alan", "Research", 85_000), 120, 299),
    (("Alan", "Research", 95_000), 300, 599),  # raise on day 300
    (("Tony", "Sales", 70_000), 90, 449),
    (("Margaret", "Sales", 77_000), 200, 599),
]


def build_payroll() -> TemporalRelation:
    return TemporalRelation.from_rows(PAYROLL_SCHEMA, HISTORY, name="Payroll")


def main() -> None:
    payroll = build_payroll()
    print(f"Payroll history: {len(payroll)} salary periods, "
          f"lifespan {payroll.lifespan}")
    print()

    # ------------------------------------------------------------------
    # Company headcount over time (COUNT by instant).
    # ------------------------------------------------------------------
    headcount = temporal_aggregate(payroll, "count").restrict(payroll.lifespan)
    print("Company headcount over time:")
    print(headcount.coalesce_values().pretty())
    print()

    # ------------------------------------------------------------------
    # Average salary per department over time (the paper's motivating
    # query: GROUP BY Dept composed with instant grouping).
    # ------------------------------------------------------------------
    by_dept = grouped_temporal_aggregate(
        payroll, "avg", group_attribute="dept", value_attribute="salary"
    )
    print("Average salary per department over time:")
    for dept, series in by_dept.items():
        print(f"  -- {dept} --")
        visible = series.restrict(payroll.lifespan).drop_value(None)
        for row in visible:
            print(f"    [{row.start:>3}, {row.end:>3}]  {row.value:>10,.0f}")
    print()

    # ------------------------------------------------------------------
    # The same through TSQL2-lite, plus quarterly spans and MAX.
    # ------------------------------------------------------------------
    db = Database()
    db.register(payroll)

    print("TSQL2: SELECT dept, COUNT(name), AVG(salary) FROM Payroll GROUP BY dept")
    result = db.execute(
        "SELECT dept, COUNT(name), AVG(salary) FROM Payroll GROUP BY dept",
        keep_empty=False,
    )
    print(result.pretty(limit=30))
    print()

    print(f"TSQL2: SELECT SUM(salary) FROM Payroll GROUP BY SPAN {QUARTER} [0, 599]")
    quarterly = db.execute(
        f"SELECT SUM(salary) FROM Payroll GROUP BY SPAN {QUARTER} [0, 599]"
    )
    print(quarterly.pretty())
    print("(each row folds every salary period overlapping that quarter)")
    print()

    print("TSQL2: SELECT MAX(salary) FROM Payroll WHERE VALID OVERLAPS [180, 420]")
    print(
        db.execute(
            "SELECT MAX(salary) FROM Payroll WHERE VALID OVERLAPS [180, 420]",
            keep_empty=False,
        ).pretty()
    )
    print()

    # ------------------------------------------------------------------
    # Salary spread, but only while the company is big enough (HAVING),
    # and the planner's reasoning for the query (EXPLAIN).
    # ------------------------------------------------------------------
    print("TSQL2: SELECT MAX(salary) - MIN(salary), COUNT(name) FROM Payroll")
    print("       HAVING COUNT(name) >= 5")
    print(
        db.execute(
            "SELECT MAX(salary) - MIN(salary), COUNT(name) FROM Payroll "
            "HAVING COUNT(name) >= 5"
        ).pretty()
    )
    print()

    print("TSQL2: EXPLAIN SELECT AVG(salary) FROM Payroll")
    print(db.execute("EXPLAIN SELECT AVG(salary) FROM Payroll").pretty())


if __name__ == "__main__":
    main()
