"""Incident monitoring: events, moving windows and calendar reports.

A service fleet emits *incident* events (instant-stamped alerts) and
*outage* intervals.  This example exercises the library's extension
layer on top of the paper's core machinery:

* event aggregation by instant (simultaneous-incident multiplicity),
* trailing-window aggregates ("incidents in the last 30 days" — a
  TSQL2 moving-window aggregate, reduced to instant grouping),
* calendar span grouping (incidents per civil month, with February
  being short and all),
* duplicate elimination (the same outage reported by two monitors),
* the live index answering point probes as events keep streaming in.

Instants are days since 1995-01-01, matching the default Calendar.

Run:  python examples/incident_monitoring.py
"""

import random
from datetime import date

from repro.core import (
    Calendar,
    Interval,
    calendar_span_aggregate,
    event_instant_aggregate,
    event_window_aggregate,
    value_coalesced_triples,
    evaluate_triples,
)
from repro.core.index import TemporalAggregateIndex

YEAR_DAYS = 365
WINDOW = 30  # "in the last 30 days"


def simulate(seed: int = 1995):
    """A year of incidents (events) and outages (intervals)."""
    rng = random.Random(seed)
    incidents = []  # (day, severity)
    day = 0
    while day < YEAR_DAYS:
        day += rng.randint(1, 9)
        if day < YEAR_DAYS:
            incidents.append((day, rng.randint(1, 5)))
    # Outages: some are double-reported by a second monitor with
    # slightly different boundaries -> duplicates to eliminate.
    outages = []
    for _ in range(8):
        start = rng.randrange(YEAR_DAYS - 10)
        end = start + rng.randint(0, 6)
        outages.append((start, end, "fleet"))
        if rng.random() < 0.5:
            outages.append((max(0, start - 1), end, "fleet"))  # overlap dup
    return incidents, outages


def main() -> None:
    calendar = Calendar("day", epoch=date(1995, 1, 1))
    incidents, outages = simulate()
    print(f"simulated {len(incidents)} incidents and {len(outages)} outage "
          f"reports over {YEAR_DAYS} days\n")

    # ------------------------------------------------------------------
    # Worst simultaneous burst (instant grouping over events).
    # ------------------------------------------------------------------
    profile = event_instant_aggregate(incidents, "count")
    worst = max(profile, key=lambda row: row.value)
    print(f"most simultaneous incidents: {worst.value} on "
          f"{calendar.format_instant(worst.start)}")

    # ------------------------------------------------------------------
    # "Incidents in the last 30 days", continuously over the year.
    # ------------------------------------------------------------------
    rolling = event_window_aggregate(incidents, "count", window=WINDOW)
    peak = max(
        (row for row in rolling if row.end < YEAR_DAYS),
        key=lambda row: row.value,
    )
    print(f"busiest 30-day window: {peak.value} incidents, entered on "
          f"{calendar.format_instant(peak.start)}")

    quiet = [
        row for row in rolling.restrict(Interval(WINDOW, YEAR_DAYS - 1))
        if row.value == 0
    ]
    quiet_days = sum(row.end - row.start + 1 for row in quiet)
    print(f"days with a fully quiet trailing month: {quiet_days}\n")

    # ------------------------------------------------------------------
    # Incidents per civil month (calendar spans: uneven bucket lengths).
    # ------------------------------------------------------------------
    monthly = calendar_span_aggregate(
        [(d, d, sev) for d, sev in incidents],
        "count",
        Interval(0, YEAR_DAYS - 1),
        "month",
        calendar,
    )
    print("incidents per month:")
    for row in monthly:
        month = calendar.date_of(row.start).strftime("%b")
        print(f"  {month}: {'#' * row.value} ({row.value})")
    print()

    # ------------------------------------------------------------------
    # Outage concurrency, with and without duplicate elimination.
    # ------------------------------------------------------------------
    raw = evaluate_triples(list(outages), "count", "aggregation_tree")
    deduped_triples = value_coalesced_triples(outages)
    cooked = evaluate_triples(deduped_triples, "count", "kordered_tree", k=1)
    raw_peak = max(row.value for row in raw)
    cooked_peak = max(row.value for row in cooked)
    print(f"peak concurrent outage reports: raw={raw_peak}, after "
          f"duplicate elimination={cooked_peak} "
          f"({len(outages)} reports -> {len(deduped_triples)} outages)\n")

    # ------------------------------------------------------------------
    # A live index: probe while the stream is still arriving.
    # ------------------------------------------------------------------
    index = TemporalAggregateIndex("max")
    for day, severity in incidents[: len(incidents) // 2]:
        index.insert(day, day + 2, severity)  # sev applies ~3 days
    mid_answer = index.value_at(90)
    for day, severity in incidents[len(incidents) // 2 :]:
        index.insert(day, day + 2, severity)
    print(f"max severity around day 90, probed mid-stream: {mid_answer}")
    q = index.query(Interval(80, 100))
    print(f"severity profile for days 80-100 ({len(q)} constant intervals):")
    for row in q.coalesce_values():
        print(f"  [{row.start:>3}, {row.end:>3}]  {row.value}")


if __name__ == "__main__":
    main()
