"""Quickstart: the paper's running example, end to end.

Reproduces Section 5.1 of Kline & Snodgrass 1995: the Employed relation
(Figure 1), the constant intervals it induces (Figure 2), and the
temporal COUNT query of Table 1 — first through the Python API, then
through the TSQL2-lite front end, and finally with the query planner
explaining its choice of algorithm.

Run:  python examples/quickstart.py
"""

from repro import temporal_aggregate
from repro.core import STRATEGIES, k_orderedness
from repro.tsql2 import Database
from repro.workload import employed_relation


def main() -> None:
    employed = employed_relation()

    print("The Employed relation (paper Figure 1):")
    print(employed.pretty())
    print()

    # ------------------------------------------------------------------
    # 1. The Python API: one call computes the temporal aggregate.
    # ------------------------------------------------------------------
    result = temporal_aggregate(employed, "count")
    print("COUNT grouped by instant — the constant intervals of Table 1:")
    print(result.pretty())
    print()

    # Every algorithm of the paper computes the same answer.
    for strategy in sorted(STRATEGIES):
        k = 400 if strategy == "kordered_tree" else None
        alt = temporal_aggregate(employed, "count", strategy=strategy, k=k)
        marker = "ok" if alt.rows == result.rows else "MISMATCH"
        print(f"  {strategy:<18} -> {len(alt)} constant intervals [{marker}]")
    print()

    # ------------------------------------------------------------------
    # 2. The same query in TSQL2-lite, exactly as the paper writes it.
    # ------------------------------------------------------------------
    db = Database()
    db.register(employed)
    print("TSQL2:  SELECT COUNT(Name) FROM Employed E")
    print(db.execute("SELECT COUNT(Name) FROM Employed E").pretty())
    print()

    print("A time-varying maximum salary, restricted by a qualification:")
    print("TSQL2:  SELECT MAX(Salary) FROM Employed WHERE Name <> 'Karen'")
    print(
        db.execute(
            "SELECT MAX(Salary) FROM Employed WHERE Name <> 'Karen'"
        ).pretty()
    )
    print()

    # ------------------------------------------------------------------
    # 3. Let the Section 6.3 planner explain itself.
    # ------------------------------------------------------------------
    result, decision = temporal_aggregate(employed, "count", explain=True)
    stats = employed.statistics()
    print(f"Relation statistics: {stats.tuple_count} tuples, "
          f"{stats.unique_timestamps} unique timestamps, "
          f"k-orderedness {k_orderedness([(r.start, r.end) for r in employed])}")
    print(f"Planner decision:   {decision.describe()}")


if __name__ == "__main__":
    main()
